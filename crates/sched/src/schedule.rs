//! The division scheduler (paper Sec. 4.3, Listing 3) and instruction
//! emission.
//!
//! Given a placement, the required communication is fully determined: a
//! remote input block is fetched **once per consuming device** (not once per
//! computation block), and a partial output is returned **once per producing
//! device** — exactly the `s_e * (lambda_e - 1)` accounting of the
//! hypergraph objective.
//!
//! The scheduler groups each device's computation blocks into `T` divisions:
//! division 0 holds the blocks needing no communication, divisions
//! `1..T-1` are filled greedily (starting from the least-loaded device)
//! subject to a per-division cap of `1/T` of the device's total incoming
//! volume per source, and the final division takes everything left. Each
//! division's communication is launched while the previous division
//! computes, which is what overlaps transfer and attention time.
//!
//! Timing assumption encoded in the emitted streams: *input* fetches (Q, KV,
//! dO) carry model input data that exists from the start of the phase, so
//! only the receiver's `CommLaunch` gates them; *output* partials
//! (O/dQ/dKV) are produced data, so the producer launches them after its
//! last division and the owner waits before its final reduction.

use std::collections::{HashMap, HashSet};

use dcp_blocks::{BatchLayout, CompBlockId};
use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

use crate::buffer::compute_stats;
use crate::placement::Placement;
use crate::plan::{
    CommId, CommOp, DeviceStream, ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan,
    ReduceItem, Transfer,
};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Number of divisions `T` (the paper fixes 4).
    pub divisions: u32,
    /// Launch each output-partial transfer right after the last division
    /// that contributes to it, overlapping the return path with later
    /// divisions. The paper's Listing 3 defers all output transfers to the
    /// end of the schedule; set `false` for that behavior (the
    /// `ablations` harness measures the difference).
    pub early_output: bool,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            divisions: 4,
            early_output: true,
        }
    }
}

/// Ratio of backward to forward FLOPs, as a (num, den) rational so FLOPs
/// stay integral (matches [`dcp_types::AttnSpec::BWD_FLOPS_RATIO`]).
const BWD_RATIO: (u64, u64) = (5, 2);

/// Builds the full execution plan (forward + backward) for `layout` under
/// `placement`.
///
/// # Errors
///
/// Returns an error if the placement does not match the layout or
/// `cfg.divisions == 0`.
pub fn build_plan(
    layout: &BatchLayout,
    placement: &Placement,
    cfg: &ScheduleConfig,
) -> DcpResult<ExecutionPlan> {
    placement.validate(layout)?;
    if cfg.divisions == 0 {
        return Err(DcpError::invalid_argument("divisions must be > 0"));
    }
    let fwd = schedule_phase(layout, placement, cfg, false);
    let bwd = schedule_phase(layout, placement, cfg, true);
    Ok(ExecutionPlan {
        num_devices: placement.num_devices,
        fwd,
        bwd,
    })
}

/// Remote input payloads of `comp` on its executing device.
fn remote_inputs(
    layout: &BatchLayout,
    placement: &Placement,
    comp: CompBlockId,
    backward: bool,
) -> Vec<(Payload, u32, u64)> {
    let cb = &layout.comp_blocks[comp.0 as usize];
    let dev = placement.comp_dev(comp);
    let q_owner = placement.token_dev(cb.q_block);
    let kv_owner = placement.token_dev(cb.kv_block);
    let qb = &layout.token_blocks[cb.q_block.0 as usize];
    let kvb = &layout.token_blocks[cb.kv_block.0 as usize];
    let mut v = Vec::new();
    if q_owner != dev {
        v.push((Payload::Q(cb.q_block), q_owner, qb.q_bytes));
        if backward {
            v.push((Payload::DO(cb.q_block), q_owner, qb.o_bytes));
        }
    }
    if kv_owner != dev {
        v.push((Payload::Kv(cb.kv_block), kv_owner, kvb.kv_bytes));
    }
    v
}

fn schedule_phase(
    layout: &BatchLayout,
    placement: &Placement,
    cfg: &ScheduleConfig,
    backward: bool,
) -> PhasePlan {
    let n = placement.num_devices as usize;
    let t = cfg.divisions as usize;

    // Per-device computation blocks, in id order (deterministic).
    let mut dev_comps: Vec<Vec<CompBlockId>> = vec![Vec::new(); n];
    for i in 0..layout.comp_blocks.len() {
        let c = CompBlockId(i as u32);
        dev_comps[placement.comp_dev(c) as usize].push(c);
    }

    // Total deduplicated incoming volume per (device, source).
    let mut total_req: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
    {
        let mut seen: Vec<HashSet<Payload>> = vec![HashSet::new(); n];
        for d in 0..n {
            for &c in &dev_comps[d] {
                for (payload, src, bytes) in remote_inputs(layout, placement, c, backward) {
                    if seen[d].insert(payload) {
                        *total_req[d].entry(src).or_insert(0) += bytes;
                    }
                }
            }
        }
    }
    let limit =
        |d: usize, src: u32| -> u64 { total_req[d].get(&src).map_or(0, |&b| b.div_ceil(t as u64)) };

    // Division construction.
    // divisions[i][d] = (comp blocks, new transfers)
    let mut divisions: Vec<Vec<(Vec<CompBlockId>, Vec<Transfer>)>> =
        vec![vec![(Vec::new(), Vec::new()); n]; t];
    let mut remaining: Vec<Vec<CompBlockId>> = vec![Vec::new(); n];
    let mut fetched: Vec<HashSet<Payload>> = vec![HashSet::new(); n];
    let mut comp_load = vec![0u64; n];
    // Division index of every computation block (for early output launch).
    let mut div_of_comp = vec![0usize; layout.comp_blocks.len()];

    // Division 0: blocks with no remote inputs at all.
    for d in 0..n {
        for &c in &dev_comps[d] {
            if remote_inputs(layout, placement, c, backward).is_empty() {
                divisions[0][d].0.push(c);
                div_of_comp[c.0 as usize] = 0;
                comp_load[d] += layout.comp_blocks[c.0 as usize].flops;
            } else {
                remaining[d].push(c);
            }
        }
    }

    // Middle divisions 1..t-1, least-loaded device first. `i` indexes both
    // `divisions` and `div_of_comp`, so an iterator form would not be clearer.
    #[allow(clippy::needless_range_loop)]
    for i in 1..t.saturating_sub(1) {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&d| comp_load[d]);
        for &d in &order {
            let mut div_comm: HashMap<u32, u64> = HashMap::new();
            let mut kept = Vec::new();
            let blocks = std::mem::take(&mut remaining[d]);
            for c in blocks {
                let new: Vec<(Payload, u32, u64)> = remote_inputs(layout, placement, c, backward)
                    .into_iter()
                    .filter(|(p, _, _)| !fetched[d].contains(p))
                    .collect();
                // Projected per-source volume must stay under the cap.
                let mut projected: HashMap<u32, u64> = div_comm.clone();
                for (_, src, bytes) in &new {
                    *projected.entry(*src).or_insert(0) += bytes;
                }
                let fits = projected.iter().all(|(&src, &b)| b <= limit(d, src));
                if fits {
                    for (payload, src, bytes) in new {
                        fetched[d].insert(payload);
                        *div_comm.entry(src).or_insert(0) += bytes;
                        divisions[i][d].1.push(Transfer {
                            from: src,
                            to: d as u32,
                            payload,
                            bytes,
                        });
                    }
                    divisions[i][d].0.push(c);
                    div_of_comp[c.0 as usize] = i;
                    comp_load[d] += layout.comp_blocks[c.0 as usize].flops;
                } else {
                    kept.push(c);
                }
            }
            remaining[d] = kept;
        }
    }

    // Final division: everything left.
    let last = t - 1;
    for d in 0..n {
        for c in std::mem::take(&mut remaining[d]) {
            let new: Vec<(Payload, u32, u64)> = remote_inputs(layout, placement, c, backward)
                .into_iter()
                .filter(|(p, _, _)| !fetched[d].contains(p))
                .collect();
            for (payload, src, bytes) in new {
                fetched[d].insert(payload);
                divisions[last][d].1.push(Transfer {
                    from: src,
                    to: d as u32,
                    payload,
                    bytes,
                });
            }
            divisions[last][d].0.push(c);
            div_of_comp[c.0 as usize] = last;
        }
    }

    // Output transfers, grouped by (producing device, launch division).
    // For forward: PartialO(qb, producer) -> owner; for backward:
    // PartialDq(qb, producer) and PartialDkv(kb, producer). With
    // `early_output`, a partial launches right after the last division on
    // the producer that contributes to it; otherwise everything launches
    // after the final division (the paper's Listing 3).
    let mut out_ops: Vec<Vec<Vec<Transfer>>> = vec![vec![Vec::new(); t]; n];
    let mut reduce_items: Vec<HashMap<(dcp_blocks::TokenBlockId, PayloadKind), Vec<u32>>> =
        vec![HashMap::new(); n];
    {
        // Last division on each device contributing to each output target.
        let mut last_div: HashMap<(u32, dcp_blocks::TokenBlockId, PayloadKind), usize> =
            HashMap::new();
        for (i, cb) in layout.comp_blocks.iter().enumerate() {
            let d = placement.comp_dev(CompBlockId(i as u32));
            let div = if cfg.early_output {
                div_of_comp[i]
            } else {
                t - 1
            };
            let mut touch = |tb, kind| {
                let e = last_div.entry((d, tb, kind)).or_insert(div);
                *e = (*e).max(div);
            };
            if !backward {
                touch(cb.q_block, PayloadKind::PartialO);
            } else {
                touch(cb.q_block, PayloadKind::PartialDq);
                touch(cb.kv_block, PayloadKind::PartialDkv);
            }
        }
        let mut emitted: HashSet<(u32, dcp_blocks::TokenBlockId, PayloadKind)> = HashSet::new();
        for (i, cb) in layout.comp_blocks.iter().enumerate() {
            let c = CompBlockId(i as u32);
            let d = placement.comp_dev(c);
            let q_owner = placement.token_dev(cb.q_block);
            let kv_owner = placement.token_dev(cb.kv_block);
            let qb = &layout.token_blocks[cb.q_block.0 as usize];
            let kvb = &layout.token_blocks[cb.kv_block.0 as usize];
            let mut emit = |tb, kind, to: u32, payload, bytes| {
                if emitted.insert((d, tb, kind)) {
                    let div = last_div[&(d, tb, kind)];
                    out_ops[d as usize][div].push(Transfer {
                        from: d,
                        to,
                        payload,
                        bytes,
                    });
                    reduce_items[to as usize]
                        .entry((tb, kind))
                        .or_default()
                        .push(d);
                }
            };
            if !backward {
                if q_owner != d {
                    emit(
                        cb.q_block,
                        PayloadKind::PartialO,
                        q_owner,
                        Payload::PartialO(cb.q_block, d),
                        qb.o_bytes,
                    );
                }
            } else {
                if q_owner != d {
                    emit(
                        cb.q_block,
                        PayloadKind::PartialDq,
                        q_owner,
                        Payload::PartialDq(cb.q_block, d),
                        qb.q_bytes,
                    );
                }
                if kv_owner != d {
                    emit(
                        cb.kv_block,
                        PayloadKind::PartialDkv,
                        kv_owner,
                        Payload::PartialDkv(cb.kv_block, d),
                        kvb.kv_bytes,
                    );
                }
            }
        }
    }

    // Assemble comm ops and instruction streams.
    let mut comms: Vec<CommOp> = Vec::new();
    // comm id of division i on device d (if any).
    let mut div_comm_id: Vec<Vec<Option<CommId>>> = vec![vec![None; n]; t];
    for (i, divs) in divisions.iter().enumerate() {
        for (d, (_, transfers)) in divs.iter().enumerate() {
            if !transfers.is_empty() {
                div_comm_id[i][d] = Some(CommId(comms.len() as u32));
                comms.push(CommOp {
                    transfers: transfers.clone(),
                });
            }
        }
    }
    let mut out_comm_id: Vec<Vec<Option<CommId>>> = vec![vec![None; t]; n];
    for d in 0..n {
        for i in 0..t {
            if !out_ops[d][i].is_empty() {
                out_comm_id[d][i] = Some(CommId(comms.len() as u32));
                comms.push(CommOp {
                    transfers: out_ops[d][i].clone(),
                });
            }
        }
    }

    let mut devices = Vec::with_capacity(n);
    for d in 0..n {
        let mut instrs: Vec<Instr> = Vec::new();
        for i in 0..t {
            if let Some(cid) = div_comm_id[i][d] {
                // Division 0 normally has no communication; when it does
                // (T == 1 collapses everything into one division), launch
                // right before waiting.
                if i == 0 {
                    instrs.push(Instr::CommLaunch(cid));
                }
                instrs.push(Instr::CommWait(cid));
            }
            if i + 1 < t {
                if let Some(cid) = div_comm_id[i + 1][d] {
                    instrs.push(Instr::CommLaunch(cid));
                }
            }
            let (blocks, _) = &divisions[i][d];
            if !blocks.is_empty() {
                let flops: u64 = blocks
                    .iter()
                    .map(|&c| {
                        let f = layout.comp_blocks[c.0 as usize].flops;
                        if backward {
                            f * BWD_RATIO.0 / BWD_RATIO.1
                        } else {
                            f
                        }
                    })
                    .sum();
                if backward {
                    instrs.push(Instr::AttnBwd {
                        items: blocks.clone(),
                        flops,
                    });
                } else {
                    instrs.push(Instr::Attn {
                        items: blocks.clone(),
                        flops,
                    });
                }
            }
            // Launch output partials completed by this division, so the
            // return path overlaps later divisions.
            if let Some(cid) = out_comm_id[d][i] {
                instrs.push(Instr::CommLaunch(cid));
            }
        }
        // Output phase: wait for every op delivering partials to this
        // device (any producer, any division).
        let mut incoming: Vec<CommId> = Vec::new();
        for (s, per_div) in out_comm_id.iter().enumerate() {
            if s == d {
                continue;
            }
            for cid in per_div.iter().flatten() {
                if comms[cid.0 as usize]
                    .transfers
                    .iter()
                    .any(|tr| tr.to == d as u32)
                {
                    incoming.push(*cid);
                }
            }
        }
        for cid in incoming {
            instrs.push(Instr::CommWait(cid));
        }
        if !reduce_items[d].is_empty() {
            let mut items: Vec<ReduceItem> = reduce_items[d]
                .iter()
                .map(|(&(target, kind), sources)| {
                    let mut sources = sources.clone();
                    sources.sort_unstable();
                    ReduceItem {
                        target,
                        sources,
                        kind,
                    }
                })
                .collect();
            items.sort_by_key(|it| (it.target, it.kind));
            let bytes: u64 = items
                .iter()
                .map(|it| {
                    let tb = &layout.token_blocks[it.target.0 as usize];
                    let unit = match it.kind {
                        PayloadKind::PartialO => tb.o_bytes,
                        PayloadKind::PartialDq => tb.q_bytes,
                        PayloadKind::PartialDkv => tb.kv_bytes,
                        _ => 0,
                    };
                    // Read every partial plus the resident accumulator, write
                    // the accumulator.
                    unit * (it.sources.len() as u64 + 2)
                })
                .sum();
            instrs.push(Instr::Reduce { items, bytes });
        }

        let owned: Vec<u32> = (0..layout.token_blocks.len() as u32)
            .filter(|&tb| placement.token_to_dev[tb as usize] == d as u32)
            .collect();
        let buffer = compute_stats(layout, &comms, d as u32, &instrs, &owned);
        devices.push(DeviceStream {
            device: d as u32,
            instrs,
            buffer,
        });
    }

    PhasePlan { comms, devices }
}

/// Checks plan structural invariants against the layout and placement:
/// every computation block appears in exactly one attention instruction on
/// its assigned device, every `CommWait` has a matching prior `CommLaunch`
/// *or* waits for eagerly-sent input data, transfers reference the correct
/// owners, and division 0 carries no communication.
///
/// # Errors
///
/// Returns [`DcpError::InvalidPlan`] describing the first violated
/// invariant.
pub fn validate_plan(
    layout: &BatchLayout,
    placement: &Placement,
    plan: &ExecutionPlan,
) -> DcpResult<()> {
    for (phase, backward) in [(&plan.fwd, false), (&plan.bwd, true)] {
        let mut seen = vec![false; layout.comp_blocks.len()];
        for stream in &phase.devices {
            let mut launched: HashSet<CommId> = HashSet::new();
            for ins in &stream.instrs {
                match ins {
                    Instr::CommLaunch(cid) => {
                        if cid.0 as usize >= phase.comms.len() {
                            return Err(DcpError::invalid_plan("comm id out of range"));
                        }
                        launched.insert(*cid);
                    }
                    Instr::CommWait(cid) => {
                        let op = &phase.comms[cid.0 as usize];
                        let receives = op.transfers.iter().any(|t| t.to == stream.device);
                        let input_only = op.transfers.iter().all(|t| {
                            matches!(
                                t.payload.kind(),
                                PayloadKind::Q | PayloadKind::Kv | PayloadKind::DO
                            )
                        });
                        if !receives {
                            return Err(DcpError::invalid_plan(format!(
                                "device {} waits on op {:?} that sends it nothing",
                                stream.device, cid
                            )));
                        }
                        // Input fetches are receiver-launched; partials are
                        // producer-launched, so the receiver legitimately
                        // waits without launching.
                        if input_only && !launched.contains(cid) {
                            return Err(DcpError::invalid_plan(format!(
                                "device {} waits on input op {:?} before launching it",
                                stream.device, cid
                            )));
                        }
                    }
                    Instr::Attn { items, .. } | Instr::AttnBwd { items, .. } => {
                        let want_bwd = matches!(ins, Instr::AttnBwd { .. });
                        if want_bwd != backward {
                            return Err(DcpError::invalid_plan(
                                "attention direction does not match phase",
                            ));
                        }
                        for &c in items {
                            if placement.comp_dev(c) != stream.device {
                                return Err(DcpError::invalid_plan(format!(
                                    "comp block {:?} executed on wrong device",
                                    c
                                )));
                            }
                            if seen[c.0 as usize] {
                                return Err(DcpError::invalid_plan(format!(
                                    "comp block {:?} scheduled twice",
                                    c
                                )));
                            }
                            seen[c.0 as usize] = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(DcpError::invalid_plan(format!(
                "comp block {missing} never scheduled"
            )));
        }
        // Transfers reference correct owners/producers.
        for op in &phase.comms {
            for tr in &op.transfers {
                let tb = tr.payload.token_block();
                let owner = placement.token_to_dev[tb.0 as usize];
                let ok = match tr.payload {
                    Payload::Q(_) | Payload::Kv(_) | Payload::DO(_) => tr.from == owner,
                    Payload::PartialO(_, p)
                    | Payload::PartialDq(_, p)
                    | Payload::PartialDkv(_, p) => tr.from == p && tr.to == owner,
                };
                if !ok {
                    return Err(DcpError::invalid_plan(format!(
                        "transfer {:?} inconsistent with ownership",
                        tr
                    )));
                }
                if tr.from == tr.to {
                    return Err(DcpError::invalid_plan("self transfer"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_blocks::BlockConfig;
    use dcp_mask::MaskSpec;
    use dcp_types::AttnSpec;

    fn layout(seqs: &[(u32, MaskSpec)], bs: u32) -> BatchLayout {
        BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: bs,
                head_blocks: 1,
            },
            seqs,
        )
        .unwrap()
    }

    /// Ring-like placement: token block i of a single sequence to device
    /// i % n; comp with its q block.
    fn ring_placement(l: &BatchLayout, n: u32) -> Placement {
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect();
        Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        }
    }

    #[test]
    fn plan_validates_and_covers_all_blocks() {
        let l = layout(&[(4096, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        validate_plan(&l, &p, &plan).unwrap();
    }

    #[test]
    fn all_local_placement_has_no_comm() {
        let l = layout(&[(2048, MaskSpec::Causal)], 512);
        let p = Placement::all_on_zero(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        validate_plan(&l, &p, &plan).unwrap();
        assert_eq!(plan.total_comm_bytes(), 0);
        assert!(plan.fwd.comms.is_empty());
    }

    #[test]
    fn forward_comm_matches_connectivity_accounting() {
        // Each remote (block, consumer-device) pair is fetched exactly once,
        // and each remote partial returned once: total volume must equal the
        // sum over token blocks of
        //   q_bytes * |remote q-consumer devs| + o_bytes * (same)
        //   + kv_bytes * |remote kv-consumer devs|.
        let l = layout(&[(4096, MaskSpec::Causal), (1024, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let mut expect = 0u64;
        for (t, tb) in l.token_blocks.iter().enumerate() {
            let owner = p.token_to_dev[t];
            let q_devs: HashSet<u32> = l.q_consumers[t]
                .iter()
                .map(|&c| p.comp_dev(c))
                .filter(|&d| d != owner)
                .collect();
            let kv_devs: HashSet<u32> = l.kv_consumers[t]
                .iter()
                .map(|&c| p.comp_dev(c))
                .filter(|&d| d != owner)
                .collect();
            expect += (tb.q_bytes + tb.o_bytes) * q_devs.len() as u64
                + tb.kv_bytes * kv_devs.len() as u64;
        }
        assert_eq!(plan.fwd.total_comm_bytes(), expect);
    }

    #[test]
    fn division_zero_is_local() {
        let l = layout(&[(8192, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        for stream in &plan.fwd.devices {
            // The first attention instruction must come before any CommWait.
            let first_attn = stream
                .instrs
                .iter()
                .position(|i| matches!(i, Instr::Attn { .. }));
            let first_wait = stream
                .instrs
                .iter()
                .position(|i| matches!(i, Instr::CommWait(_)));
            if let (Some(a), Some(w)) = (first_attn, first_wait) {
                assert!(a < w, "division 0 should compute before any wait");
            }
        }
    }

    #[test]
    fn backward_has_gradient_returns() {
        let l = layout(&[(4096, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let has_dkv = plan
            .bwd
            .comms
            .iter()
            .flat_map(|c| c.transfers.iter())
            .any(|t| matches!(t.payload, Payload::PartialDkv(..)));
        assert!(has_dkv, "ring placement must return dKV partials");
        // Backward communicates at least as much as forward (extra dO and
        // gradient returns).
        assert!(plan.bwd.total_comm_bytes() >= plan.fwd.total_comm_bytes());
    }

    #[test]
    fn divisions_bound_comm_per_source() {
        // With T divisions, each middle division's per-source volume must be
        // within the cap (last division is exempt by construction).
        let l = layout(&[(16384, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 2);
        let t = 4u32;
        let plan = build_plan(
            &l,
            &p,
            &ScheduleConfig {
                divisions: t,
                ..Default::default()
            },
        )
        .unwrap();
        // Reconstruct per-op incoming volume; all input ops except possibly
        // one (the last division) must respect ceil(total/T) per source.
        for d in 0..2u32 {
            let mut totals: HashMap<u32, u64> = HashMap::new();
            let mut per_op: Vec<HashMap<u32, u64>> = Vec::new();
            for op in &plan.fwd.comms {
                let mut m: HashMap<u32, u64> = HashMap::new();
                for tr in &op.transfers {
                    if tr.to == d && matches!(tr.payload.kind(), PayloadKind::Q | PayloadKind::Kv) {
                        *m.entry(tr.from).or_insert(0) += tr.bytes;
                        *totals.entry(tr.from).or_insert(0) += tr.bytes;
                    }
                }
                if !m.is_empty() {
                    per_op.push(m);
                }
            }
            let violations = per_op
                .iter()
                .filter(|m| {
                    m.iter()
                        .any(|(&src, &b)| b > totals[&src].div_ceil(t as u64))
                })
                .count();
            assert!(
                violations <= 1,
                "device {d}: {violations} over-cap divisions"
            );
        }
    }

    #[test]
    fn t1_schedules_everything_in_one_division() {
        let l = layout(&[(4096, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 4);
        let plan = build_plan(
            &l,
            &p,
            &ScheduleConfig {
                divisions: 1,
                ..Default::default()
            },
        )
        .unwrap();
        validate_plan(&l, &p, &plan).unwrap();
        for stream in &plan.fwd.devices {
            let attn_count = stream
                .instrs
                .iter()
                .filter(|i| matches!(i, Instr::Attn { .. }))
                .count();
            assert!(attn_count <= 1);
        }
    }

    #[test]
    fn sparse_mask_reduces_comm() {
        let lc = layout(&[(32768, MaskSpec::Causal)], 1024);
        let ll = layout(
            &[(
                32768,
                MaskSpec::Lambda {
                    sink: 64,
                    window: 2048,
                },
            )],
            1024,
        );
        let pc = ring_placement(&lc, 4);
        let pl = ring_placement(&ll, 4);
        let plan_c = build_plan(&lc, &pc, &ScheduleConfig::default()).unwrap();
        let plan_l = build_plan(&ll, &pl, &ScheduleConfig::default()).unwrap();
        assert!(
            plan_l.fwd.total_comm_bytes() < plan_c.fwd.total_comm_bytes(),
            "lambda mask should need fewer KV fetches even under the same placement"
        );
    }

    #[test]
    fn plan_json_roundtrip() {
        let l = layout(&[(2048, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 2);
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let s = plan.to_json().unwrap();
        let back = ExecutionPlan::from_json(&s).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn rejects_bad_inputs() {
        let l = layout(&[(1024, MaskSpec::Causal)], 512);
        let p = ring_placement(&l, 2);
        assert!(build_plan(
            &l,
            &p,
            &ScheduleConfig {
                divisions: 0,
                ..Default::default()
            }
        )
        .is_err());
        let mut bad = p.clone();
        bad.comp_to_dev.pop();
        assert!(build_plan(&l, &bad, &ScheduleConfig::default()).is_err());
    }
}
