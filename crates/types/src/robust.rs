//! Robustness vocabulary: the planner fallback chain.
//!
//! The planner degrades gracefully instead of failing an iteration: when the
//! hierarchical hypergraph partitioner is ε-infeasible or errors, it falls
//! back to a greedy placement, and from there to a static zigzag/ring
//! placement that always succeeds. [`PlanTier`] records which tier actually
//! produced a plan so callers (and benchmarks) can account for degraded
//! iterations.

use serde::{Deserialize, Serialize};

/// Which tier of the planner fallback chain produced a plan.
///
/// Ordered from most to least preferred; `Ord` follows that preference
/// (`Partitioned < Greedy < Static`), so "worst tier seen" is a `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PlanTier {
    /// Hierarchical hypergraph partitioning (the paper's planner).
    Partitioned,
    /// Greedy longest-processing-time placement: balanced compute, no
    /// communication objective.
    Greedy,
    /// Static zigzag/ring placement (baseline-style); always feasible.
    Static,
}

impl PlanTier {
    /// Short display label (used in reports and traces).
    pub fn label(&self) -> &'static str {
        match self {
            PlanTier::Partitioned => "partitioned",
            PlanTier::Greedy => "greedy",
            PlanTier::Static => "static",
        }
    }

    /// All tiers, in fallback order.
    pub fn all() -> [PlanTier; 3] {
        [PlanTier::Partitioned, PlanTier::Greedy, PlanTier::Static]
    }
}

impl std::fmt::Display for PlanTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_by_preference() {
        assert!(PlanTier::Partitioned < PlanTier::Greedy);
        assert!(PlanTier::Greedy < PlanTier::Static);
        assert_eq!(
            PlanTier::all().iter().copied().max(),
            Some(PlanTier::Static)
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PlanTier::Partitioned.to_string(), "partitioned");
        assert_eq!(PlanTier::Greedy.label(), "greedy");
        assert_eq!(PlanTier::Static.label(), "static");
    }
}
