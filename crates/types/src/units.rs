//! Scalar unit aliases and conversion helpers.
//!
//! The stack accounts for data volume in bytes, computation in floating point
//! operations and time in seconds. Plain aliases (rather than newtypes) keep
//! the hot planner loops free of wrapper noise; functions that mix units take
//! named parameters instead.

/// A data volume in bytes.
pub type Bytes = u64;

/// An amount of computation in floating point operations.
pub type Flops = u64;

/// A duration or point in time, in seconds.
pub type Seconds = f64;

/// Number of bytes in one kibibyte.
pub const KIB: Bytes = 1024;
/// Number of bytes in one mebibyte.
pub const MIB: Bytes = 1024 * KIB;
/// Number of bytes in one gibibyte.
pub const GIB: Bytes = 1024 * MIB;

/// Converts a bandwidth expressed in GB/s (decimal) to bytes per second.
#[inline]
pub const fn gbps_to_bytes_per_sec(gb_per_sec: u64) -> f64 {
    (gb_per_sec * 1_000_000_000) as f64
}

/// Converts a network speed expressed in Gbit/s to bytes per second.
#[inline]
pub const fn gbit_to_bytes_per_sec(gbit_per_sec: u64) -> f64 {
    (gbit_per_sec * 1_000_000_000 / 8) as f64
}

/// Converts TFLOP/s to FLOP/s.
#[inline]
pub const fn tflops_to_flops_per_sec(tflops: u64) -> f64 {
    (tflops * 1_000_000_000_000) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_units_scale() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(GIB, 1024 * 1024 * 1024);
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(gbps_to_bytes_per_sec(300), 300e9);
        // 400 Gbit/s == 50 GB/s.
        assert_eq!(gbit_to_bytes_per_sec(400), 50e9);
        assert_eq!(tflops_to_flops_per_sec(312), 312e12);
    }
}
