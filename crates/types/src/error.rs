//! The common error type shared by all DCP crates.

use std::fmt;

use crate::robust::PlanTier;

/// Result alias using [`DcpError`].
pub type DcpResult<T> = Result<T, DcpError>;

/// Errors produced anywhere in the DCP stack.
///
/// The variants are deliberately coarse: each one carries a human readable
/// message describing the precise failure, and the variant selects the
/// subsystem so callers can match on the class of failure without parsing
/// strings.
#[derive(Debug, Clone, PartialEq)]
pub enum DcpError {
    /// An argument violated a documented precondition.
    InvalidArgument(String),
    /// A mask specification is inconsistent with the sequence it is applied
    /// to (e.g. boundaries out of range).
    InvalidMask(String),
    /// The hypergraph partitioner could not produce a feasible partition
    /// under the requested balance constraints.
    Infeasible(String),
    /// An execution plan is malformed (e.g. a `CommWait` without a matching
    /// `CommLaunch`, or a buffer index out of range).
    InvalidPlan(String),
    /// A numerical execution failed an internal consistency check.
    Numerics(String),
    /// Plan (de)serialization failed.
    Serialization(String),
    /// Planning a specific batch failed after exhausting the fallback chain
    /// and all retries (look-ahead worker death/timeout plus synchronous
    /// re-planning). Carries enough structure for callers to account for the
    /// lost batch without parsing strings.
    PlanningFailed {
        /// Index of the batch whose plan could not be produced.
        batch_index: usize,
        /// Total planning attempts made (initial look-ahead + retries).
        attempts: u32,
        /// Human-readable description of the last failure.
        last_error: String,
    },
    /// A [`FailureEvent`](https://docs.rs/dcp-core) names an execution
    /// frontier the failed device never reached: `divisions_done` exceeds
    /// the number of attention divisions scheduled on that device's stream
    /// (summed over any recovery-shard streams it was hosting). Carries the
    /// device and the out-of-range frontier so fault-campaign drivers can
    /// clamp and retry without parsing strings.
    InvalidFailureEvent {
        /// Physical rank named by the failure event.
        device: u32,
        /// The out-of-range `divisions_done` frontier.
        frontier: u32,
    },
    /// A fallback tier produced a plan, but its simulated makespan regressed
    /// past the configured limit relative to the partitioned tier's
    /// estimate — shipping it would silently burn cluster time, so the
    /// planner surfaces the regression instead.
    FallbackRejected {
        /// The fallback tier whose plan was rejected.
        tier: PlanTier,
        /// Measured regression: fallback makespan / partitioned estimate.
        factor: f64,
        /// The configured limit the factor exceeded
        /// (`max_fallback_regression`).
        limit: f64,
    },
}

impl DcpError {
    /// Convenience constructor for [`DcpError::InvalidArgument`].
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        DcpError::InvalidArgument(msg.into())
    }

    /// Convenience constructor for [`DcpError::InvalidPlan`].
    pub fn invalid_plan(msg: impl Into<String>) -> Self {
        DcpError::InvalidPlan(msg.into())
    }

    /// Convenience constructor for [`DcpError::PlanningFailed`].
    pub fn planning_failed(
        batch_index: usize,
        attempts: u32,
        last_error: impl Into<String>,
    ) -> Self {
        DcpError::PlanningFailed {
            batch_index,
            attempts,
            last_error: last_error.into(),
        }
    }

    /// Convenience constructor for [`DcpError::InvalidFailureEvent`].
    pub fn invalid_failure_event(device: u32, frontier: u32) -> Self {
        DcpError::InvalidFailureEvent { device, frontier }
    }

    /// Convenience constructor for [`DcpError::FallbackRejected`].
    pub fn fallback_rejected(tier: PlanTier, factor: f64, limit: f64) -> Self {
        DcpError::FallbackRejected {
            tier,
            factor,
            limit,
        }
    }
}

impl fmt::Display for DcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcpError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            DcpError::InvalidMask(m) => write!(f, "invalid mask: {m}"),
            DcpError::Infeasible(m) => write!(f, "infeasible partition: {m}"),
            DcpError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            DcpError::Numerics(m) => write!(f, "numerical check failed: {m}"),
            DcpError::Serialization(m) => write!(f, "serialization error: {m}"),
            DcpError::PlanningFailed {
                batch_index,
                attempts,
                last_error,
            } => write!(
                f,
                "planning failed for batch {batch_index} after {attempts} attempt(s): \
                 {last_error}"
            ),
            DcpError::InvalidFailureEvent { device, frontier } => write!(
                f,
                "invalid failure event: device {device} has fewer than divisions_done = \
                 {frontier} attention divisions"
            ),
            DcpError::FallbackRejected {
                tier,
                factor,
                limit,
            } => write!(
                f,
                "fallback rejected: {tier} plan regresses simulated makespan {factor:.2}x \
                 vs the partitioned estimate (limit {limit:.2}x)"
            ),
        }
    }
}

impl std::error::Error for DcpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_and_message() {
        let e = DcpError::invalid_argument("block size must be > 0");
        assert_eq!(e.to_string(), "invalid argument: block size must be > 0");
        let e = DcpError::Infeasible("epsilon too tight".into());
        assert!(e.to_string().contains("infeasible"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&DcpError::invalid_plan("x"));
    }

    #[test]
    fn planning_failed_carries_structure() {
        let e = DcpError::planning_failed(7, 3, "worker panicked");
        match &e {
            DcpError::PlanningFailed {
                batch_index,
                attempts,
                last_error,
            } => {
                assert_eq!(*batch_index, 7);
                assert_eq!(*attempts, 3);
                assert_eq!(last_error, "worker panicked");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let s = e.to_string();
        assert!(s.contains("batch 7"), "{s}");
        assert!(s.contains("3 attempt"), "{s}");
    }

    #[test]
    fn invalid_failure_event_carries_structure() {
        let e = DcpError::invalid_failure_event(3, 1000);
        match &e {
            DcpError::InvalidFailureEvent { device, frontier } => {
                assert_eq!(*device, 3);
                assert_eq!(*frontier, 1000);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let s = e.to_string();
        assert!(s.contains("device 3"), "{s}");
        assert!(s.contains("divisions_done = 1000"), "{s}");
    }

    #[test]
    fn fallback_rejected_carries_structure() {
        let e = DcpError::fallback_rejected(PlanTier::Greedy, 3.5, 2.0);
        match &e {
            DcpError::FallbackRejected {
                tier,
                factor,
                limit,
            } => {
                assert_eq!(*tier, PlanTier::Greedy);
                assert_eq!(*factor, 3.5);
                assert_eq!(*limit, 2.0);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let s = e.to_string();
        assert!(s.contains("greedy"), "{s}");
        assert!(s.contains("3.50x"), "{s}");
        assert!(s.contains("2.00x"), "{s}");
    }
}
