//! The common error type shared by all DCP crates.

use std::fmt;

/// Result alias using [`DcpError`].
pub type DcpResult<T> = Result<T, DcpError>;

/// Errors produced anywhere in the DCP stack.
///
/// The variants are deliberately coarse: each one carries a human readable
/// message describing the precise failure, and the variant selects the
/// subsystem so callers can match on the class of failure without parsing
/// strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcpError {
    /// An argument violated a documented precondition.
    InvalidArgument(String),
    /// A mask specification is inconsistent with the sequence it is applied
    /// to (e.g. boundaries out of range).
    InvalidMask(String),
    /// The hypergraph partitioner could not produce a feasible partition
    /// under the requested balance constraints.
    Infeasible(String),
    /// An execution plan is malformed (e.g. a `CommWait` without a matching
    /// `CommLaunch`, or a buffer index out of range).
    InvalidPlan(String),
    /// A numerical execution failed an internal consistency check.
    Numerics(String),
    /// Plan (de)serialization failed.
    Serialization(String),
}

impl DcpError {
    /// Convenience constructor for [`DcpError::InvalidArgument`].
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        DcpError::InvalidArgument(msg.into())
    }

    /// Convenience constructor for [`DcpError::InvalidPlan`].
    pub fn invalid_plan(msg: impl Into<String>) -> Self {
        DcpError::InvalidPlan(msg.into())
    }
}

impl fmt::Display for DcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcpError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            DcpError::InvalidMask(m) => write!(f, "invalid mask: {m}"),
            DcpError::Infeasible(m) => write!(f, "infeasible partition: {m}"),
            DcpError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            DcpError::Numerics(m) => write!(f, "numerical check failed: {m}"),
            DcpError::Serialization(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl std::error::Error for DcpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_and_message() {
        let e = DcpError::invalid_argument("block size must be > 0");
        assert_eq!(e.to_string(), "invalid argument: block size must be > 0");
        let e = DcpError::Infeasible("epsilon too tight".into());
        assert!(e.to_string().contains("infeasible"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&DcpError::invalid_plan("x"));
    }
}
