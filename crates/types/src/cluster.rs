//! Cluster topology description.
//!
//! A [`ClusterSpec`] describes the machines the planner places work onto and
//! the simulator models: a set of nodes, each with a fixed number of devices,
//! intra-node links (NVSwitch-style, per-device), and an inter-node NIC whose
//! bandwidth is shared by all devices on the node.

use serde::{Deserialize, Serialize};

use crate::error::{DcpError, DcpResult};
use crate::units::{gbit_to_bytes_per_sec, gbps_to_bytes_per_sec, tflops_to_flops_per_sec};

/// Identifies one device (GPU) in the cluster by its global rank.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub u32);

/// Identifies one node (machine) in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The hardware topology of a training cluster.
///
/// Bandwidths are stored in bytes/second, throughput in FLOP/s, and latencies
/// in seconds, so the simulator can consume them directly.
///
/// # Examples
///
/// ```
/// use dcp_types::ClusterSpec;
///
/// let cluster = ClusterSpec::p4de(4);
/// assert_eq!(cluster.num_devices(), 32);
/// assert_eq!(cluster.node_of(dcp_types::DeviceId(9)).0, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes (machines).
    pub nodes: u32,
    /// Number of devices (GPUs) per node.
    pub devices_per_node: u32,
    /// Per-device intra-node link bandwidth, each direction, bytes/s.
    pub intra_bw: f64,
    /// Per-node inter-node NIC bandwidth, each direction, bytes/s (shared by
    /// all devices on the node).
    pub inter_bw: f64,
    /// Fixed latency added to every intra-node transfer, seconds.
    pub intra_latency: f64,
    /// Fixed latency added to every inter-node transfer, seconds.
    pub inter_latency: f64,
    /// Peak dense compute throughput per device, FLOP/s.
    pub device_flops: f64,
    /// Fraction of peak the attention kernels achieve (model flops
    /// utilization of the kernel, not of the whole model).
    pub kernel_efficiency: f64,
    /// Fixed overhead charged per fused kernel launch, seconds.
    pub kernel_overhead: f64,
    /// Device memory bandwidth, bytes/s (used for on-device copy/reduction).
    pub mem_bw: f64,
    /// Optional multi-tier switch fabric above the node NICs. `None` is the
    /// flat two-tier (node/device) model and reproduces historical plans and
    /// simulations bitwise.
    #[serde(default)]
    pub topology: Option<TopologySpec>,
}

/// One switch tier above the node NICs, ordered innermost first (leaf, then
/// spine, then core, ...).
///
/// Tier `i` groups `group` units of the tier below it (tier 0 groups nodes
/// into leaves, tier 1 groups leaves into pods, ...). A transfer whose
/// endpoints fall in different tier-`i` groups consumes the uplink of each
/// endpoint's group into the tier above, in the respective direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// How many units of the tier below are grouped under one switch at this
    /// tier (nodes per leaf for tier 0, leaves per pod for tier 1, ...).
    pub group: u32,
    /// Aggregate uplink bandwidth of one group into this tier, each
    /// direction, bytes/s. An oversubscribed tier has
    /// `uplink_bw < group * downlink_bw`.
    pub uplink_bw: f64,
    /// Extra latency added to every transfer that crosses this tier, seconds.
    pub latency: f64,
}

/// Multi-tier network fabric: zero or more switch tiers above the node NICs,
/// plus an optional rail-optimized NIC layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TopologySpec {
    /// Switch tiers above the node, innermost first. Empty means all nodes
    /// hang off one non-blocking switch (the flat model).
    #[serde(default)]
    pub tiers: Vec<TierSpec>,
    /// When true, each device owns a dedicated NIC rail of
    /// `inter_bw / devices_per_node` bytes/s instead of contending for one
    /// shared node NIC of `inter_bw`. Aggregate node bandwidth is unchanged.
    #[serde(default)]
    pub rail_optimized: bool,
}

impl TopologySpec {
    /// A rail-optimized fabric with no extra switch tiers: same aggregate
    /// bandwidth as the flat model, but cross-node flows from different local
    /// ranks never contend for the same NIC.
    pub fn rail_optimized() -> Self {
        TopologySpec {
            tiers: Vec::new(),
            rail_optimized: true,
        }
    }

    /// A two-level leaf/spine fabric where each leaf switch serves
    /// `nodes_per_leaf` nodes and its uplink into the spine is oversubscribed
    /// by `oversub` (uplink = nodes_per_leaf * node_nic_bw / oversub).
    pub fn oversubscribed_spine(
        nodes_per_leaf: u32,
        node_nic_bw: f64,
        oversub: f64,
        leaf_latency: f64,
    ) -> Self {
        TopologySpec {
            tiers: vec![TierSpec {
                group: nodes_per_leaf,
                uplink_bw: node_nic_bw * nodes_per_leaf as f64 / oversub,
                latency: leaf_latency,
            }],
            rail_optimized: false,
        }
    }

    /// Validate against a cluster with `nodes` nodes. Every tier must have a
    /// group fanout of at least one that divides the unit count of the tier
    /// below, positive finite uplink bandwidth, and non-negative latency.
    pub fn validate(&self, nodes: u32) -> DcpResult<()> {
        let mut units = nodes;
        for (i, t) in self.tiers.iter().enumerate() {
            if t.group == 0 {
                return Err(DcpError::invalid_argument(format!(
                    "topology tier {i} has zero group fanout"
                )));
            }
            if !units.is_multiple_of(t.group) {
                return Err(DcpError::invalid_argument(format!(
                    "topology tier {i} group {} does not divide the {units} units below it",
                    t.group
                )));
            }
            if t.uplink_bw <= 0.0 || !t.uplink_bw.is_finite() {
                return Err(DcpError::invalid_argument(format!(
                    "topology tier {i} uplink_bw must be positive and finite, got {}",
                    t.uplink_bw
                )));
            }
            if t.latency < 0.0 || !t.latency.is_finite() {
                return Err(DcpError::invalid_argument(format!(
                    "topology tier {i} latency must be non-negative and finite, got {}",
                    t.latency
                )));
            }
            units /= t.group;
        }
        Ok(())
    }
}

impl ClusterSpec {
    /// A cluster of `nodes` Amazon EC2 `p4de.24xlarge` instances, matching the
    /// paper's testbed: 8x A100-80GB per node, NVSwitch with 600 GB/s
    /// bidirectional bandwidth per GPU (300 GB/s each direction), and 4x100
    /// Gbps EFA NICs per node (50 GB/s each direction).
    pub fn p4de(nodes: u32) -> Self {
        ClusterSpec {
            nodes,
            devices_per_node: 8,
            intra_bw: gbps_to_bytes_per_sec(300),
            inter_bw: gbit_to_bytes_per_sec(400),
            intra_latency: 10e-6,
            inter_latency: 30e-6,
            // A100 BF16 tensor core peak.
            device_flops: tflops_to_flops_per_sec(312),
            kernel_efficiency: 0.55,
            kernel_overhead: 25e-6,
            mem_bw: gbps_to_bytes_per_sec(1600),
            topology: None,
        }
    }

    /// A single-node cluster with `devices` devices, NVSwitch only.
    pub fn single_node(devices: u32) -> Self {
        let mut c = Self::p4de(1);
        c.devices_per_node = devices;
        c
    }

    /// A p4de fleet with rail-optimized NICs: one dedicated
    /// `inter_bw / devices_per_node` rail per device instead of a shared node
    /// NIC.
    pub fn p4de_rail(nodes: u32) -> Self {
        Self::p4de(nodes).with_topology(TopologySpec::rail_optimized())
    }

    /// A p4de fleet behind a leaf/spine fabric: `nodes_per_leaf` nodes per
    /// leaf switch, with the leaf uplink into the spine oversubscribed by
    /// `oversub`.
    pub fn p4de_spine(nodes: u32, nodes_per_leaf: u32, oversub: f64) -> Self {
        let base = Self::p4de(nodes);
        let topo = TopologySpec::oversubscribed_spine(
            nodes_per_leaf,
            base.inter_bw,
            oversub,
            // One extra switch hop for cross-leaf traffic.
            10e-6,
        );
        base.with_topology(topo)
    }

    /// Attach a fabric description to this cluster.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Validate the spec: a zero-sized cluster or a non-positive/non-finite
    /// bandwidth, throughput, or efficiency would otherwise surface as NaN or
    /// div-by-zero deep in the planner or simulator.
    pub fn validate(&self) -> DcpResult<()> {
        if self.nodes == 0 {
            return Err(DcpError::invalid_argument("cluster has zero nodes"));
        }
        if self.devices_per_node == 0 {
            return Err(DcpError::invalid_argument(
                "cluster has zero devices per node",
            ));
        }
        for (name, v) in [
            ("intra_bw", self.intra_bw),
            ("inter_bw", self.inter_bw),
            ("device_flops", self.device_flops),
            ("mem_bw", self.mem_bw),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(DcpError::invalid_argument(format!(
                    "cluster {name} must be positive and finite, got {v}"
                )));
            }
        }
        if self.kernel_efficiency.is_nan()
            || self.kernel_efficiency <= 0.0
            || self.kernel_efficiency > 1.0
        {
            return Err(DcpError::invalid_argument(format!(
                "cluster kernel_efficiency must be in (0, 1], got {}",
                self.kernel_efficiency
            )));
        }
        for (name, v) in [
            ("intra_latency", self.intra_latency),
            ("inter_latency", self.inter_latency),
            ("kernel_overhead", self.kernel_overhead),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(DcpError::invalid_argument(format!(
                    "cluster {name} must be non-negative and finite, got {v}"
                )));
            }
        }
        if let Some(t) = &self.topology {
            t.validate(self.nodes)?;
        }
        Ok(())
    }

    /// Switch tiers above the node, innermost first (empty for the flat
    /// model).
    pub fn tiers(&self) -> &[TierSpec] {
        self.topology.as_ref().map_or(&[], |t| t.tiers.as_slice())
    }

    /// Whether cross-node NIC bandwidth is provisioned as one rail per device.
    pub fn rail_optimized(&self) -> bool {
        self.topology.as_ref().is_some_and(|t| t.rail_optimized)
    }

    /// The tier-`i` group containing `node` (tier 0 groups are leaves).
    pub fn tier_group(&self, tier: usize, node: NodeId) -> u32 {
        let mut span = 1u32;
        for t in &self.tiers()[..=tier] {
            span *= t.group;
        }
        node.0 / span
    }

    /// How far apart two devices are in the fabric: 0 for the same node, 1
    /// for different nodes under the same innermost switch, and +1 for every
    /// additional tier the path crosses. The flat model only ever yields 0
    /// or 1.
    pub fn tier_distance(&self, a: DeviceId, b: DeviceId) -> u32 {
        let (na, nb) = (self.node_of(a), self.node_of(b));
        if na == nb {
            return 0;
        }
        let mut d = 1;
        for i in 0..self.tiers().len() {
            if self.tier_group(i, na) != self.tier_group(i, nb) {
                d += 1;
            }
        }
        d
    }

    /// Number of distinct tier-distance values transfers can have
    /// (`max tier_distance + 1`).
    pub fn num_tier_distances(&self) -> usize {
        self.tiers().len() + 2
    }

    /// Placement hierarchy levels, outermost first, ending at the device
    /// level. The product of all levels is `num_devices()`. The flat model
    /// yields `[nodes, devices_per_node]`; a leaf tier of `g` nodes yields
    /// `[nodes / g, g, devices_per_node]`, and so on.
    pub fn hierarchy(&self) -> Vec<u32> {
        let mut levels = vec![self.devices_per_node];
        let mut units = self.nodes;
        for t in self.tiers() {
            levels.push(t.group);
            units /= t.group;
        }
        levels.push(units);
        levels.reverse();
        levels
    }

    /// Total number of devices in the cluster.
    pub fn num_devices(&self) -> u32 {
        self.nodes * self.devices_per_node
    }

    /// The node hosting device `dev`.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range for this cluster.
    pub fn node_of(&self, dev: DeviceId) -> NodeId {
        assert!(
            dev.0 < self.num_devices(),
            "device {dev} out of range for cluster with {} devices",
            self.num_devices()
        );
        NodeId(dev.0 / self.devices_per_node)
    }

    /// The local index of device `dev` within its node.
    pub fn local_rank(&self, dev: DeviceId) -> u32 {
        dev.0 % self.devices_per_node
    }

    /// The global rank of the `local`-th device on node `node`.
    pub fn device_on(&self, node: NodeId, local: u32) -> DeviceId {
        assert!(node.0 < self.nodes && local < self.devices_per_node);
        DeviceId(node.0 * self.devices_per_node + local)
    }

    /// Whether two devices are on the same node.
    pub fn same_node(&self, a: DeviceId, b: DeviceId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// All device ids, in rank order.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.num_devices()).map(DeviceId)
    }

    /// Point-to-point latency between two devices: intra- or inter-node base
    /// latency plus the latency of every switch tier the path crosses.
    pub fn latency(&self, a: DeviceId, b: DeviceId) -> f64 {
        let (na, nb) = (self.node_of(a), self.node_of(b));
        if na == nb {
            return self.intra_latency;
        }
        let mut l = self.inter_latency;
        for (i, t) in self.tiers().iter().enumerate() {
            if self.tier_group(i, na) != self.tier_group(i, nb) {
                l += t.latency;
            }
        }
        l
    }

    /// Effective attention-kernel throughput per device, FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.device_flops * self.kernel_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4de_topology() {
        let c = ClusterSpec::p4de(4);
        assert_eq!(c.num_devices(), 32);
        assert_eq!(c.node_of(DeviceId(0)), NodeId(0));
        assert_eq!(c.node_of(DeviceId(7)), NodeId(0));
        assert_eq!(c.node_of(DeviceId(8)), NodeId(1));
        assert_eq!(c.node_of(DeviceId(31)), NodeId(3));
        assert_eq!(c.local_rank(DeviceId(13)), 5);
        assert_eq!(c.device_on(NodeId(2), 3), DeviceId(19));
    }

    #[test]
    fn same_node_and_latency() {
        let c = ClusterSpec::p4de(2);
        assert!(c.same_node(DeviceId(0), DeviceId(7)));
        assert!(!c.same_node(DeviceId(7), DeviceId(8)));
        assert!(c.latency(DeviceId(0), DeviceId(1)) < c.latency(DeviceId(0), DeviceId(9)));
    }

    #[test]
    fn devices_iterates_in_rank_order() {
        let c = ClusterSpec::single_node(4);
        let ids: Vec<u32> = c.devices().map(|d| d.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_rejects_out_of_range() {
        let c = ClusterSpec::single_node(2);
        let _ = c.node_of(DeviceId(2));
    }

    #[test]
    fn serde_roundtrip() {
        let c = ClusterSpec::p4de(8);
        let s = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn topology_defaults_on_legacy_json() {
        // A serialized spec from before the topology field existed must still
        // deserialize, to the flat model.
        let s = serde_json::to_string(&ClusterSpec::p4de(2)).unwrap();
        let legacy = s.replace(",\"topology\":null", "");
        assert_ne!(s, legacy, "expected a topology key to strip");
        let back: ClusterSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, ClusterSpec::p4de(2));
        assert!(back.topology.is_none());
        assert_eq!(back.hierarchy(), vec![2, 8]);
    }

    #[test]
    fn spine_hierarchy_and_tier_distance() {
        let c = ClusterSpec::p4de_spine(8, 4, 4.0);
        assert_eq!(c.hierarchy(), vec![2, 4, 8]);
        assert_eq!(c.num_tier_distances(), 3);
        // Same node.
        assert_eq!(c.tier_distance(DeviceId(0), DeviceId(7)), 0);
        // Different node, same leaf (nodes 0 and 3 are both under leaf 0).
        assert_eq!(c.tier_distance(DeviceId(0), DeviceId(3 * 8)), 1);
        // Different leaf (node 0 under leaf 0, node 4 under leaf 1).
        assert_eq!(c.tier_distance(DeviceId(0), DeviceId(4 * 8)), 2);
        // Cross-leaf latency includes the leaf hop.
        assert!(c.latency(DeviceId(0), DeviceId(4 * 8)) > c.latency(DeviceId(0), DeviceId(3 * 8)));
        // Leaf uplink is oversubscribed 4x: 4 nodes share one node's worth.
        let t = &c.tiers()[0];
        assert!((t.uplink_bw - c.inter_bw).abs() < 1.0);
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        assert!(ClusterSpec::p4de(2).validate().is_ok());
        assert!(ClusterSpec::p4de_rail(2).validate().is_ok());
        assert!(ClusterSpec::p4de_spine(8, 4, 4.0).validate().is_ok());

        let mut c = ClusterSpec::p4de(2);
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterSpec::p4de(2);
        c.devices_per_node = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterSpec::p4de(2);
        c.inter_bw = 0.0;
        assert!(c.validate().is_err());

        let mut c = ClusterSpec::p4de(2);
        c.device_flops = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = ClusterSpec::p4de(2);
        c.kernel_efficiency = 0.0;
        assert!(c.validate().is_err());

        // Tier group must divide the node count.
        let c = ClusterSpec::p4de_spine(6, 4, 4.0);
        assert!(c.validate().is_err());

        // Zero fanout and non-positive uplink are rejected.
        let mut c = ClusterSpec::p4de_spine(8, 4, 4.0);
        c.topology.as_mut().unwrap().tiers[0].group = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterSpec::p4de_spine(8, 4, 4.0);
        c.topology.as_mut().unwrap().tiers[0].uplink_bw = -1.0;
        assert!(c.validate().is_err());
    }
}
