//! Cluster topology description.
//!
//! A [`ClusterSpec`] describes the machines the planner places work onto and
//! the simulator models: a set of nodes, each with a fixed number of devices,
//! intra-node links (NVSwitch-style, per-device), and an inter-node NIC whose
//! bandwidth is shared by all devices on the node.

use serde::{Deserialize, Serialize};

use crate::units::{gbit_to_bytes_per_sec, gbps_to_bytes_per_sec, tflops_to_flops_per_sec};

/// Identifies one device (GPU) in the cluster by its global rank.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub u32);

/// Identifies one node (machine) in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The hardware topology of a training cluster.
///
/// Bandwidths are stored in bytes/second, throughput in FLOP/s, and latencies
/// in seconds, so the simulator can consume them directly.
///
/// # Examples
///
/// ```
/// use dcp_types::ClusterSpec;
///
/// let cluster = ClusterSpec::p4de(4);
/// assert_eq!(cluster.num_devices(), 32);
/// assert_eq!(cluster.node_of(dcp_types::DeviceId(9)).0, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes (machines).
    pub nodes: u32,
    /// Number of devices (GPUs) per node.
    pub devices_per_node: u32,
    /// Per-device intra-node link bandwidth, each direction, bytes/s.
    pub intra_bw: f64,
    /// Per-node inter-node NIC bandwidth, each direction, bytes/s (shared by
    /// all devices on the node).
    pub inter_bw: f64,
    /// Fixed latency added to every intra-node transfer, seconds.
    pub intra_latency: f64,
    /// Fixed latency added to every inter-node transfer, seconds.
    pub inter_latency: f64,
    /// Peak dense compute throughput per device, FLOP/s.
    pub device_flops: f64,
    /// Fraction of peak the attention kernels achieve (model flops
    /// utilization of the kernel, not of the whole model).
    pub kernel_efficiency: f64,
    /// Fixed overhead charged per fused kernel launch, seconds.
    pub kernel_overhead: f64,
    /// Device memory bandwidth, bytes/s (used for on-device copy/reduction).
    pub mem_bw: f64,
}

impl ClusterSpec {
    /// A cluster of `nodes` Amazon EC2 `p4de.24xlarge` instances, matching the
    /// paper's testbed: 8x A100-80GB per node, NVSwitch with 600 GB/s
    /// bidirectional bandwidth per GPU (300 GB/s each direction), and 4x100
    /// Gbps EFA NICs per node (50 GB/s each direction).
    pub fn p4de(nodes: u32) -> Self {
        ClusterSpec {
            nodes,
            devices_per_node: 8,
            intra_bw: gbps_to_bytes_per_sec(300),
            inter_bw: gbit_to_bytes_per_sec(400),
            intra_latency: 10e-6,
            inter_latency: 30e-6,
            // A100 BF16 tensor core peak.
            device_flops: tflops_to_flops_per_sec(312),
            kernel_efficiency: 0.55,
            kernel_overhead: 25e-6,
            mem_bw: gbps_to_bytes_per_sec(1600),
        }
    }

    /// A single-node cluster with `devices` devices, NVSwitch only.
    pub fn single_node(devices: u32) -> Self {
        let mut c = Self::p4de(1);
        c.devices_per_node = devices;
        c
    }

    /// Total number of devices in the cluster.
    pub fn num_devices(&self) -> u32 {
        self.nodes * self.devices_per_node
    }

    /// The node hosting device `dev`.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range for this cluster.
    pub fn node_of(&self, dev: DeviceId) -> NodeId {
        assert!(
            dev.0 < self.num_devices(),
            "device {dev} out of range for cluster with {} devices",
            self.num_devices()
        );
        NodeId(dev.0 / self.devices_per_node)
    }

    /// The local index of device `dev` within its node.
    pub fn local_rank(&self, dev: DeviceId) -> u32 {
        dev.0 % self.devices_per_node
    }

    /// The global rank of the `local`-th device on node `node`.
    pub fn device_on(&self, node: NodeId, local: u32) -> DeviceId {
        assert!(node.0 < self.nodes && local < self.devices_per_node);
        DeviceId(node.0 * self.devices_per_node + local)
    }

    /// Whether two devices are on the same node.
    pub fn same_node(&self, a: DeviceId, b: DeviceId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// All device ids, in rank order.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.num_devices()).map(DeviceId)
    }

    /// Point-to-point latency between two devices.
    pub fn latency(&self, a: DeviceId, b: DeviceId) -> f64 {
        if self.same_node(a, b) {
            self.intra_latency
        } else {
            self.inter_latency
        }
    }

    /// Effective attention-kernel throughput per device, FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.device_flops * self.kernel_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4de_topology() {
        let c = ClusterSpec::p4de(4);
        assert_eq!(c.num_devices(), 32);
        assert_eq!(c.node_of(DeviceId(0)), NodeId(0));
        assert_eq!(c.node_of(DeviceId(7)), NodeId(0));
        assert_eq!(c.node_of(DeviceId(8)), NodeId(1));
        assert_eq!(c.node_of(DeviceId(31)), NodeId(3));
        assert_eq!(c.local_rank(DeviceId(13)), 5);
        assert_eq!(c.device_on(NodeId(2), 3), DeviceId(19));
    }

    #[test]
    fn same_node_and_latency() {
        let c = ClusterSpec::p4de(2);
        assert!(c.same_node(DeviceId(0), DeviceId(7)));
        assert!(!c.same_node(DeviceId(7), DeviceId(8)));
        assert!(c.latency(DeviceId(0), DeviceId(1)) < c.latency(DeviceId(0), DeviceId(9)));
    }

    #[test]
    fn devices_iterates_in_rank_order() {
        let c = ClusterSpec::single_node(4);
        let ids: Vec<u32> = c.devices().map(|d| d.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_rejects_out_of_range() {
        let c = ClusterSpec::single_node(2);
        let _ = c.node_of(DeviceId(2));
    }

    #[test]
    fn serde_roundtrip() {
        let c = ClusterSpec::p4de(8);
        let s = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
