//! Shared vocabulary types for the DCP (Dynamic Context Parallelism) stack.
//!
//! This crate defines the basic identifiers, hardware descriptions and model
//! shapes that every other crate in the workspace builds on:
//!
//! - [`DeviceId`] / [`NodeId`]: logical addresses inside a training cluster.
//! - [`ClusterSpec`]: the machine topology (devices per node, link bandwidths,
//!   compute throughput) used by the planner and the simulator.
//! - [`AttnSpec`]: the shape of one attention operator (GQA-aware).
//! - [`ModelSpec`]: the shape of a whole transformer used by the end-to-end
//!   iteration model.
//! - [`DcpError`]: the common error type.
//!
//! The default constants mirror the paper's testbed: Amazon EC2
//! `p4de.24xlarge` instances with 8 NVIDIA A100-80GB GPUs per node, NVSwitch
//! (600 GB/s bidirectional per GPU) inside a node and 4x100 Gbps EFA NICs
//! between nodes.

pub mod cluster;
pub mod error;
pub mod model;
pub mod robust;
pub mod units;

pub use cluster::{ClusterSpec, DeviceId, NodeId, TierSpec, TopologySpec};
pub use error::{DcpError, DcpResult};
pub use model::{AttnSpec, ModelSpec};
pub use robust::PlanTier;
pub use units::{Bytes, Flops, Seconds};
