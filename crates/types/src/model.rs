//! Attention operator and transformer model shapes.

use serde::{Deserialize, Serialize};

use crate::units::{Bytes, Flops};

/// The shape of one attention operator, GQA-aware.
///
/// `q_heads` query heads share `kv_heads` key/value heads (`q_heads` must be
/// a multiple of `kv_heads`). When combined with tensor parallelism, these
/// are the *per-TP-rank* head counts (the paper divides the head dimension by
/// the TP degree, Sec. 6.2).
///
/// # Examples
///
/// ```
/// use dcp_types::AttnSpec;
///
/// // The paper's micro-benchmark operator: 8 Q heads, 2 KV groups, d=128,
/// // bf16 (a 32-head/8-group op under 4-way tensor parallelism).
/// let spec = AttnSpec::paper_micro();
/// assert_eq!(spec.q_heads_per_group(), 4);
/// assert_eq!(spec.q_block_bytes(512), 512 * 4 * 128 * 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttnSpec {
    /// Number of query heads.
    pub q_heads: u32,
    /// Number of key/value heads (GQA groups).
    pub kv_heads: u32,
    /// Head dimension.
    pub head_dim: u32,
    /// Bytes per element of the activation dtype (2 for bf16/fp16).
    pub dtype_bytes: u32,
}

impl AttnSpec {
    /// Creates a new spec, validating the GQA grouping.
    ///
    /// # Panics
    ///
    /// Panics if `q_heads` is not a positive multiple of `kv_heads` or if any
    /// dimension is zero.
    pub fn new(q_heads: u32, kv_heads: u32, head_dim: u32, dtype_bytes: u32) -> Self {
        assert!(q_heads > 0 && kv_heads > 0 && head_dim > 0 && dtype_bytes > 0);
        assert!(
            q_heads.is_multiple_of(kv_heads),
            "q_heads ({q_heads}) must be a multiple of kv_heads ({kv_heads})"
        );
        AttnSpec {
            q_heads,
            kv_heads,
            head_dim,
            dtype_bytes,
        }
    }

    /// The attention operator used in the paper's micro-benchmarks: GQA with
    /// 8 query heads, 2 KV groups, head dimension 128, bf16.
    pub fn paper_micro() -> Self {
        AttnSpec::new(8, 2, 128, 2)
    }

    /// Query heads per KV group.
    pub fn q_heads_per_group(&self) -> u32 {
        self.q_heads / self.kv_heads
    }

    /// Bytes of the Q slice of one head *group* for `tokens` tokens (all Q
    /// heads of the group).
    pub fn q_block_bytes(&self, tokens: u64) -> Bytes {
        tokens * self.q_heads_per_group() as u64 * self.head_dim as u64 * self.dtype_bytes as u64
    }

    /// Bytes of the K+V slices of one head group for `tokens` tokens.
    pub fn kv_block_bytes(&self, tokens: u64) -> Bytes {
        2 * tokens * self.head_dim as u64 * self.dtype_bytes as u64
    }

    /// Bytes of the output slice of one head group for `tokens` tokens.
    /// Includes the per-token log-sum-exp statistics (one f32 per Q head per
    /// token) carried alongside the output for blockwise reduction.
    pub fn o_block_bytes(&self, tokens: u64) -> Bytes {
        self.q_block_bytes(tokens) + tokens * self.q_heads_per_group() as u64 * 4
    }

    /// Forward FLOPs of attention between `pairs` unmasked (query, key) token
    /// pairs within one head group: two matmuls (`QK^T` and `PV`) of
    /// `2 * head_dim` FLOPs each, for every Q head in the group.
    pub fn pair_flops(&self, pairs: u64) -> Flops {
        pairs * 4 * self.head_dim as u64 * self.q_heads_per_group() as u64
    }

    /// Ratio of backward to forward attention FLOPs. FlashAttention's
    /// backward recomputes the forward products and computes dQ/dK/dV, about
    /// 2.5x the forward work.
    pub const BWD_FLOPS_RATIO: f64 = 2.5;
}

/// The shape of a full transformer used by the end-to-end iteration model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden size.
    pub hidden: u32,
    /// Total number of query heads (before tensor parallel split).
    pub q_heads: u32,
    /// Total number of KV heads.
    pub kv_heads: u32,
    /// Head dimension.
    pub head_dim: u32,
    /// FFN hidden size (SwiGLU-style, as in Llama 3).
    pub ffn_hidden: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Bytes per parameter/activation element.
    pub dtype_bytes: u32,
}

impl ModelSpec {
    /// The 8B GPT model used in the paper's end-to-end evaluation
    /// (Llama3-8B shape): 32 layers, hidden 4096, 32 heads, 8 KV groups,
    /// head dim 128, FFN hidden 14336.
    pub fn gpt_8b() -> Self {
        ModelSpec {
            layers: 32,
            hidden: 4096,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 128,
            ffn_hidden: 14336,
            vocab: 128_256,
            dtype_bytes: 2,
        }
    }

    /// The attention spec of one layer after applying `tp`-way tensor
    /// parallelism on the head dimension.
    ///
    /// # Panics
    ///
    /// Panics if the head counts are not divisible by `tp`.
    pub fn attn_spec(&self, tp: u32) -> AttnSpec {
        assert!(
            self.q_heads.is_multiple_of(tp) && self.kv_heads.is_multiple_of(tp),
            "TP degree {tp} must divide head counts ({}, {})",
            self.q_heads,
            self.kv_heads
        );
        AttnSpec::new(
            self.q_heads / tp,
            self.kv_heads / tp,
            self.head_dim,
            self.dtype_bytes,
        )
    }

    /// Total parameter count (dense, untied embeddings).
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn_hidden as u64;
        let d = self.head_dim as u64;
        let qh = self.q_heads as u64;
        let kvh = self.kv_heads as u64;
        // Attention: Wq (h x qh*d), Wk, Wv (h x kvh*d each), Wo (qh*d x h).
        let attn = h * qh * d * 2 + h * kvh * d * 2;
        // SwiGLU FFN: gate + up (h x f each) + down (f x h).
        let ffn = 3 * h * f;
        // Norms: 2 per layer + final.
        let norms = 2 * h;
        let per_layer = attn + ffn + norms;
        self.layers as u64 * per_layer + 2 * h * self.vocab as u64 + h
    }

    /// Forward FLOPs of all context-independent (non-attention) ops for
    /// `tokens` tokens: the dense matmuls of every layer plus the LM head.
    pub fn ctx_independent_fwd_flops(&self, tokens: u64) -> Flops {
        let h = self.hidden as u64;
        let f = self.ffn_hidden as u64;
        let d = self.head_dim as u64;
        let qh = self.q_heads as u64;
        let kvh = self.kv_heads as u64;
        let attn_proj = 2 * tokens * (h * qh * d * 2 + h * kvh * d * 2);
        let ffn = 2 * tokens * 3 * h * f;
        self.layers as u64 * (attn_proj + ffn) + 2 * tokens * h * self.vocab as u64
    }

    /// Gradient bytes exchanged per data-parallel rank in one all-reduce
    /// (ring all-reduce moves `2 * (R-1)/R * bytes`; the caller applies the
    /// ring factor).
    pub fn grad_bytes(&self, tp: u32) -> Bytes {
        self.param_count() / tp as u64 * self.dtype_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gqa_grouping() {
        let s = AttnSpec::paper_micro();
        assert_eq!(s.q_heads, 8);
        assert_eq!(s.kv_heads, 2);
        assert_eq!(s.q_heads_per_group(), 4);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_bad_grouping() {
        let _ = AttnSpec::new(8, 3, 128, 2);
    }

    #[test]
    fn block_byte_accounting() {
        let s = AttnSpec::paper_micro();
        // Q: tokens * 4 heads * 128 dim * 2 bytes.
        assert_eq!(s.q_block_bytes(1024), 1024 * 4 * 128 * 2);
        // KV: 2 tensors * tokens * 128 * 2 (one KV head per group).
        assert_eq!(s.kv_block_bytes(1024), 2 * 1024 * 128 * 2);
        // O adds 4 bytes of LSE per Q head per token.
        assert_eq!(s.o_block_bytes(1024), s.q_block_bytes(1024) + 1024 * 4 * 4);
    }

    #[test]
    fn pair_flops_counts_two_matmuls() {
        let s = AttnSpec::paper_micro();
        // 4 heads * 4 * 128 per pair.
        assert_eq!(s.pair_flops(1), 4 * 128 * 4);
    }

    #[test]
    fn model_8b_params_near_8b() {
        let m = ModelSpec::gpt_8b();
        let p = m.param_count();
        // Llama3-8B has ~8.0B params; our dense accounting should land close.
        assert!(p > 7_000_000_000 && p < 9_000_000_000, "params = {p}");
    }

    #[test]
    fn attn_spec_from_model_with_tp() {
        let m = ModelSpec::gpt_8b();
        let s = m.attn_spec(4);
        assert_eq!(s.q_heads, 8);
        assert_eq!(s.kv_heads, 2);
        assert_eq!(s, AttnSpec::paper_micro());
    }

    #[test]
    fn ctx_independent_flops_scale_linearly_in_tokens() {
        let m = ModelSpec::gpt_8b();
        let f1 = m.ctx_independent_fwd_flops(1000);
        let f2 = m.ctx_independent_fwd_flops(2000);
        assert_eq!(f2, 2 * f1);
    }
}
