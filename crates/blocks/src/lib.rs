//! Fine-grained data and computation block generation (paper Sec. 4.1).
//!
//! For every sequence in a training batch, DCP partitions the attention
//! inputs (Q, K, V) and output (O) along the *head* and *sequence-length*
//! dimensions into **data blocks**, and decomposes the attention computation
//! into **computation blocks** — one per (Q-block, KV-block) pair whose
//! corresponding attention-mask region is not entirely masked out. Masked
//! pairs simply generate no computation block, which is how DCP skips work
//! under sparse masks.
//!
//! The paper constrains the Q, KV and O blocks covering the *same tokens* to
//! live on the same device (the input batch is partitioned across devices at
//! token granularity). This crate therefore exposes a single placement unit,
//! the [`TokenBlock`]: the Q + K + V + O slices of one token range for one
//! head group. A [`CompBlock`] references the token block providing its
//! queries (and receiving its output) and the token block providing its
//! keys/values.
//!
//! [`BatchLayout`] is the complete block decomposition of a batch and is the
//! input to the hypergraph placement (`dcp-hypergraph` via `dcp-core`) and
//! the scheduler (`dcp-sched`).

use dcp_mask::{Mask, MaskSpec};
use dcp_types::{AttnSpec, Bytes, DcpError, DcpResult, Flops};
use serde::{Deserialize, Serialize};

/// Index of a [`TokenBlock`] within a [`BatchLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TokenBlockId(pub u32);

/// Index of a [`CompBlock`] within a [`BatchLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompBlockId(pub u32);

/// Block-partitioning hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockConfig {
    /// Tokens per block along the sequence dimension (the paper's `B`;
    /// swept over {512, 1024, 2048, 4096} in the evaluation).
    pub block_size: u32,
    /// Number of head groups the head dimension is split into. Each group
    /// holds `q_heads / head_blocks` query heads and `kv_heads / head_blocks`
    /// KV heads. Defaults to the number of KV heads (one KV head per group).
    pub head_blocks: u32,
}

impl BlockConfig {
    /// Config with the given block size and one head group per KV head.
    pub fn with_block_size(attn: &AttnSpec, block_size: u32) -> Self {
        BlockConfig {
            block_size,
            head_blocks: attn.kv_heads,
        }
    }
}

/// The placement unit: Q + K + V + O data blocks of one token range of one
/// sequence, for one head group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenBlock {
    /// Sequence index within the batch.
    pub seq: u32,
    /// Head-group index, `0..head_blocks`.
    pub head_block: u32,
    /// First token of the range, relative to the sequence start.
    pub start: u32,
    /// Number of tokens in the range.
    pub len: u32,
    /// Bytes of the Q slice.
    pub q_bytes: Bytes,
    /// Bytes of the K + V slices.
    pub kv_bytes: Bytes,
    /// Bytes of the O slice (including per-token softmax statistics).
    pub o_bytes: Bytes,
}

impl TokenBlock {
    /// End of the token range (exclusive), relative to the sequence start.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// Total bytes of all data blocks in this placement unit.
    pub fn total_bytes(&self) -> Bytes {
        self.q_bytes + self.kv_bytes + self.o_bytes
    }
}

/// One unit of attention computation: queries from `q_block` against the
/// keys/values of `kv_block`, contributing to the output block colocated
/// with `q_block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompBlock {
    /// Sequence index within the batch.
    pub seq: u32,
    /// Head-group index.
    pub head_block: u32,
    /// Token block providing Q (and receiving O).
    pub q_block: TokenBlockId,
    /// Token block providing K and V.
    pub kv_block: TokenBlockId,
    /// Number of unmasked (query, key) token pairs in this block pair.
    pub pairs: u64,
    /// Forward FLOPs of this block.
    pub flops: Flops,
}

/// The complete block decomposition of one training batch.
///
/// # Examples
///
/// ```
/// use dcp_blocks::{BatchLayout, BlockConfig};
/// use dcp_mask::MaskSpec;
/// use dcp_types::AttnSpec;
///
/// let attn = AttnSpec::paper_micro();
/// let cfg = BlockConfig { block_size: 1024, head_blocks: 2 };
/// let layout = BatchLayout::build(
///     attn,
///     cfg,
///     &[(4096, MaskSpec::Causal), (2048, MaskSpec::Causal)],
/// )
/// .unwrap();
/// // 4 + 2 token blocks per head group, 2 head groups.
/// assert_eq!(layout.token_blocks.len(), 12);
/// // Causal: 4*5/2 + 2*3/2 = 13 block pairs per head group.
/// assert_eq!(layout.comp_blocks.len(), 26);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchLayout {
    /// The attention operator shape.
    pub attn: AttnSpec,
    /// The partitioning configuration used.
    pub config: BlockConfig,
    /// Per-sequence lengths.
    pub seq_lens: Vec<u32>,
    /// Per-sequence materialized masks.
    pub masks: Vec<Mask>,
    /// All token blocks, ordered by (sequence, head group, start).
    pub token_blocks: Vec<TokenBlock>,
    /// All computation blocks, ordered by (sequence, head group, q, kv).
    pub comp_blocks: Vec<CompBlock>,
    /// For each token block, the computation blocks consuming its Q slice
    /// (equivalently, producing into its O slice).
    pub q_consumers: Vec<Vec<CompBlockId>>,
    /// For each token block, the computation blocks consuming its KV slice.
    pub kv_consumers: Vec<Vec<CompBlockId>>,
}

impl BatchLayout {
    /// Generates the block decomposition of a batch.
    ///
    /// Each `(len, mask)` entry describes one sequence. Sequence lengths need
    /// not be multiples of the block size (the last block of a sequence is
    /// short), and sequences shorter than one block produce a single block.
    ///
    /// # Errors
    ///
    /// Returns an error if the config is degenerate (zero block size, head
    /// grouping that does not divide the head counts) or a mask fails to
    /// instantiate.
    pub fn build(attn: AttnSpec, config: BlockConfig, seqs: &[(u32, MaskSpec)]) -> DcpResult<Self> {
        if config.block_size == 0 {
            return Err(DcpError::invalid_argument("block size must be > 0"));
        }
        if config.head_blocks == 0
            || !attn.q_heads.is_multiple_of(config.head_blocks)
            || !attn.kv_heads.is_multiple_of(config.head_blocks)
        {
            return Err(DcpError::invalid_argument(format!(
                "head_blocks ({}) must divide q_heads ({}) and kv_heads ({})",
                config.head_blocks, attn.q_heads, attn.kv_heads
            )));
        }
        let q_heads_per_block = (attn.q_heads / config.head_blocks) as u64;
        let kv_heads_per_block = (attn.kv_heads / config.head_blocks) as u64;
        let d = attn.head_dim as u64;
        let eb = attn.dtype_bytes as u64;

        let mut masks = Vec::with_capacity(seqs.len());
        for (len, spec) in seqs {
            masks.push(spec.instantiate(*len)?);
        }

        let mut token_blocks = Vec::new();
        let mut comp_blocks = Vec::new();
        for (seq_idx, (len, _)) in seqs.iter().enumerate() {
            let mask = &masks[seq_idx];
            let n_seq_blocks = len.div_ceil(config.block_size);
            for hb in 0..config.head_blocks {
                let first_id = token_blocks.len() as u32;
                for bi in 0..n_seq_blocks {
                    let start = bi * config.block_size;
                    let blen = (config.block_size).min(len - start);
                    let t = blen as u64;
                    token_blocks.push(TokenBlock {
                        seq: seq_idx as u32,
                        head_block: hb,
                        start,
                        len: blen,
                        q_bytes: t * q_heads_per_block * d * eb,
                        kv_bytes: 2 * t * kv_heads_per_block * d * eb,
                        o_bytes: t * q_heads_per_block * d * eb + t * q_heads_per_block * 4,
                    });
                }
                // Computation blocks for this (sequence, head group).
                //
                // Per Q block, scatter every token's allowed ranges into
                // per-KV-block pair counts with two difference arrays: point
                // contributions for the (at most two) partially covered edge
                // blocks, and a range-add of `block_size` for fully covered
                // middle blocks. O(tokens + kv_blocks) per Q block — exactly
                // equal to summing `mask.pair_count_block` per pair, but
                // ~two orders of magnitude cheaper at long context (verified
                // by the property test below).
                let bs = config.block_size as u64;
                let nb = n_seq_blocks as usize;
                let mut point = vec![0u64; nb];
                let mut covered = vec![0i64; nb + 1];
                for qi in 0..n_seq_blocks {
                    let q_id = TokenBlockId(first_id + qi);
                    let (q_lo, q_hi) = {
                        let b = &token_blocks[q_id.0 as usize];
                        (b.start, b.end())
                    };
                    point.iter_mut().for_each(|x| *x = 0);
                    covered.iter_mut().for_each(|x| *x = 0);
                    for t in q_lo..q_hi {
                        let rp = mask.allowed(t);
                        let mut scatter = |s: u32, e: u32| {
                            if s >= e {
                                return;
                            }
                            let (s, e) = (s as u64, e as u64);
                            let js = (s / bs) as usize;
                            let je = ((e - 1) / bs) as usize;
                            if js == je {
                                point[js] += e - s;
                            } else {
                                point[js] += (js as u64 + 1) * bs - s;
                                point[je] += e - je as u64 * bs;
                                if je > js + 1 {
                                    covered[js + 1] += 1;
                                    covered[je] -= 1;
                                }
                            }
                        };
                        scatter(rp.a.0, rp.a.1);
                        if let Some((b0, b1)) = rp.b {
                            scatter(b0, b1);
                        }
                    }
                    let mut full = 0i64;
                    for ki in 0..n_seq_blocks {
                        full += covered[ki as usize];
                        let pairs = point[ki as usize] + full as u64 * bs;
                        if pairs == 0 {
                            continue;
                        }
                        comp_blocks.push(CompBlock {
                            seq: seq_idx as u32,
                            head_block: hb,
                            q_block: q_id,
                            kv_block: TokenBlockId(first_id + ki),
                            pairs,
                            flops: pairs * 4 * d * q_heads_per_block,
                        });
                    }
                }
            }
        }

        let mut q_consumers = vec![Vec::new(); token_blocks.len()];
        let mut kv_consumers = vec![Vec::new(); token_blocks.len()];
        for (i, c) in comp_blocks.iter().enumerate() {
            q_consumers[c.q_block.0 as usize].push(CompBlockId(i as u32));
            kv_consumers[c.kv_block.0 as usize].push(CompBlockId(i as u32));
        }

        Ok(BatchLayout {
            attn,
            config,
            seq_lens: seqs.iter().map(|(l, _)| *l).collect(),
            masks,
            token_blocks,
            comp_blocks,
            q_consumers,
            kv_consumers,
        })
    }

    /// Number of sequences in the batch.
    pub fn num_seqs(&self) -> usize {
        self.seq_lens.len()
    }

    /// Total tokens in the batch.
    pub fn total_tokens(&self) -> u64 {
        self.seq_lens.iter().map(|&l| l as u64).sum()
    }

    /// Total forward FLOPs of all computation blocks.
    pub fn total_flops(&self) -> Flops {
        self.comp_blocks.iter().map(|c| c.flops).sum()
    }

    /// Total bytes of all data blocks (Q + KV + O over all head groups).
    pub fn total_bytes(&self) -> Bytes {
        self.token_blocks.iter().map(TokenBlock::total_bytes).sum()
    }

    /// The token block providing queries for `comp`.
    pub fn q_block_of(&self, comp: CompBlockId) -> &TokenBlock {
        &self.token_blocks[self.comp_blocks[comp.0 as usize].q_block.0 as usize]
    }

    /// The token block providing keys/values for `comp`.
    pub fn kv_block_of(&self, comp: CompBlockId) -> &TokenBlock {
        &self.token_blocks[self.comp_blocks[comp.0 as usize].kv_block.0 as usize]
    }

    /// Ids of all token blocks of sequence `seq` (all head groups).
    pub fn token_blocks_of_seq(&self, seq: u32) -> Vec<TokenBlockId> {
        self.token_blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.seq == seq)
            .map(|(i, _)| TokenBlockId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn micro() -> AttnSpec {
        AttnSpec::paper_micro()
    }

    #[test]
    fn causal_block_counts() {
        let cfg = BlockConfig {
            block_size: 1024,
            head_blocks: 1,
        };
        let layout = BatchLayout::build(micro(), cfg, &[(4096, MaskSpec::Causal)]).unwrap();
        assert_eq!(layout.token_blocks.len(), 4);
        // Lower triangle of a 4x4 block grid.
        assert_eq!(layout.comp_blocks.len(), 10);
        // Diagonal blocks have B*(B+1)/2 pairs, off-diagonal B*B.
        let diag = layout
            .comp_blocks
            .iter()
            .find(|c| c.q_block == c.kv_block)
            .unwrap();
        assert_eq!(diag.pairs, 1024 * 1025 / 2);
        let off = layout
            .comp_blocks
            .iter()
            .find(|c| c.q_block != c.kv_block)
            .unwrap();
        assert_eq!(off.pairs, 1024 * 1024);
    }

    #[test]
    fn head_blocks_replicate_structure() {
        let cfg1 = BlockConfig {
            block_size: 512,
            head_blocks: 1,
        };
        let cfg2 = BlockConfig {
            block_size: 512,
            head_blocks: 2,
        };
        let seqs = [(2048, MaskSpec::Causal), (1024, MaskSpec::paper_lambda())];
        let l1 = BatchLayout::build(micro(), cfg1, &seqs).unwrap();
        let l2 = BatchLayout::build(micro(), cfg2, &seqs).unwrap();
        assert_eq!(l2.token_blocks.len(), 2 * l1.token_blocks.len());
        assert_eq!(l2.comp_blocks.len(), 2 * l1.comp_blocks.len());
        // Total FLOPs and bytes are independent of head grouping.
        assert_eq!(l1.total_flops(), l2.total_flops());
        assert_eq!(l1.total_bytes(), l2.total_bytes());
    }

    #[test]
    fn flops_match_mask_pair_total() {
        let cfg = BlockConfig {
            block_size: 256,
            head_blocks: 2,
        };
        let spec = MaskSpec::paper_shared_question(4000);
        let layout = BatchLayout::build(micro(), cfg, &[(4000, spec.clone())]).unwrap();
        let mask = spec.instantiate(4000).unwrap();
        let expected = mask.total_pairs() * 4 * 128 * 8; // all 8 q heads
        assert_eq!(layout.total_flops(), expected);
        let pair_total: u64 = layout.comp_blocks.iter().map(|c| c.pairs).sum();
        // Pairs are counted once per head group.
        assert_eq!(pair_total, mask.total_pairs() * 2);
    }

    #[test]
    fn sparse_mask_skips_blocks() {
        let cfg = BlockConfig {
            block_size: 512,
            head_blocks: 1,
        };
        let causal = BatchLayout::build(micro(), cfg, &[(16384, MaskSpec::Causal)]).unwrap();
        let lambda = BatchLayout::build(
            micro(),
            cfg,
            &[(
                16384,
                MaskSpec::Lambda {
                    sink: 64,
                    window: 1024,
                },
            )],
        )
        .unwrap();
        assert!(
            lambda.comp_blocks.len() < causal.comp_blocks.len() / 2,
            "lambda {} vs causal {}",
            lambda.comp_blocks.len(),
            causal.comp_blocks.len()
        );
    }

    #[test]
    fn ragged_last_block() {
        let cfg = BlockConfig {
            block_size: 1000,
            head_blocks: 1,
        };
        let layout = BatchLayout::build(micro(), cfg, &[(2500, MaskSpec::Causal)]).unwrap();
        assert_eq!(layout.token_blocks.len(), 3);
        assert_eq!(layout.token_blocks[2].len, 500);
        assert_eq!(layout.token_blocks[2].start, 2000);
        // Byte sizes scale with the short length.
        assert_eq!(
            layout.token_blocks[2].q_bytes * 2,
            layout.token_blocks[0].q_bytes
        );
    }

    #[test]
    fn consumer_indexes_are_consistent() {
        let cfg = BlockConfig {
            block_size: 512,
            head_blocks: 2,
        };
        let layout = BatchLayout::build(
            micro(),
            cfg,
            &[(3000, MaskSpec::Causal), (1500, MaskSpec::paper_lambda())],
        )
        .unwrap();
        for (tb, consumers) in layout.q_consumers.iter().enumerate() {
            for &c in consumers {
                assert_eq!(
                    layout.comp_blocks[c.0 as usize].q_block,
                    TokenBlockId(tb as u32)
                );
            }
        }
        for (tb, consumers) in layout.kv_consumers.iter().enumerate() {
            for &c in consumers {
                assert_eq!(
                    layout.comp_blocks[c.0 as usize].kv_block,
                    TokenBlockId(tb as u32)
                );
            }
        }
        // Every comp block appears exactly once in each index.
        let nq: usize = layout.q_consumers.iter().map(Vec::len).sum();
        let nkv: usize = layout.kv_consumers.iter().map(Vec::len).sum();
        assert_eq!(nq, layout.comp_blocks.len());
        assert_eq!(nkv, layout.comp_blocks.len());
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(BatchLayout::build(
            micro(),
            BlockConfig {
                block_size: 0,
                head_blocks: 1
            },
            &[(100, MaskSpec::Causal)]
        )
        .is_err());
        assert!(BatchLayout::build(
            micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 3
            },
            &[(100, MaskSpec::Causal)]
        )
        .is_err());
    }

    #[test]
    fn blocks_never_cross_sequences() {
        let cfg = BlockConfig {
            block_size: 512,
            head_blocks: 1,
        };
        let layout = BatchLayout::build(
            micro(),
            cfg,
            &[(700, MaskSpec::Causal), (900, MaskSpec::Causal)],
        )
        .unwrap();
        for c in &layout.comp_blocks {
            let q = &layout.token_blocks[c.q_block.0 as usize];
            let kv = &layout.token_blocks[c.kv_block.0 as usize];
            assert_eq!(q.seq, kv.seq);
            assert_eq!(q.head_block, kv.head_block);
        }
    }

    proptest! {
        /// Computation blocks cover exactly the nonzero block pairs of the
        /// mask — no missing work, no wasted blocks (DESIGN.md invariant).
        #[test]
        fn comp_blocks_cover_exactly_mask_support(
            len in 1u32..600,
            bs in 1u32..130,
            sink in 0u32..4,
            window in 1u32..64,
        ) {
            let spec = MaskSpec::Lambda { sink, window };
            let cfg = BlockConfig { block_size: bs, head_blocks: 1 };
            let layout = BatchLayout::build(micro(), cfg, &[(len, spec.clone())]).unwrap();
            let mask = spec.instantiate(len).unwrap();
            let nb = len.div_ceil(bs);
            let mut covered = std::collections::HashSet::new();
            for c in &layout.comp_blocks {
                prop_assert!(c.pairs > 0);
                let q = &layout.token_blocks[c.q_block.0 as usize];
                let kv = &layout.token_blocks[c.kv_block.0 as usize];
                prop_assert_eq!(
                    c.pairs,
                    mask.pair_count_block(q.start, q.end(), kv.start, kv.end())
                );
                covered.insert((q.start / bs, kv.start / bs));
            }
            for qi in 0..nb {
                for ki in 0..nb {
                    let q_lo = qi * bs;
                    let q_hi = (q_lo + bs).min(len);
                    let k_lo = ki * bs;
                    let k_hi = (k_lo + bs).min(len);
                    let nonzero = mask.pair_count_block(q_lo, q_hi, k_lo, k_hi) > 0;
                    prop_assert_eq!(covered.contains(&(qi, ki)), nonzero);
                }
            }
        }

        /// Token blocks tile each sequence exactly.
        #[test]
        fn token_blocks_tile_sequences(
            l1 in 1u32..500,
            l2 in 1u32..500,
            bs in 1u32..100,
        ) {
            let cfg = BlockConfig { block_size: bs, head_blocks: 2 };
            let layout = BatchLayout::build(
                micro(), cfg, &[(l1, MaskSpec::Causal), (l2, MaskSpec::Causal)],
            ).unwrap();
            for (seq, len) in [(0u32, l1), (1u32, l2)] {
                for hb in 0..2u32 {
                    let mut blocks: Vec<_> = layout
                        .token_blocks
                        .iter()
                        .filter(|b| b.seq == seq && b.head_block == hb)
                        .collect();
                    blocks.sort_by_key(|b| b.start);
                    let mut cursor = 0;
                    for b in &blocks {
                        prop_assert_eq!(b.start, cursor);
                        cursor = b.end();
                    }
                    prop_assert_eq!(cursor, len);
                }
            }
        }
    }
}
