//! Property tests for the numerical kernels: the online-softmax algebra
//! must be exact under arbitrary splits, orders and masks.

use dcp_exec::kernels::{attn_block_fwd, merge_outputs, BlockAcc, BlockArgs};
use dcp_exec::reference;
use dcp_mask::MaskSpec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn randv(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn arb_mask() -> impl Strategy<Value = MaskSpec> {
    prop_oneof![
        Just(MaskSpec::Causal),
        Just(MaskSpec::Full),
        (0u32..3, 1u32..12).prop_map(|(sink, window)| MaskSpec::Lambda { sink, window }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Accumulating KV splits in any order equals the dense reference.
    #[test]
    fn split_order_invariance(
        len in 2usize..24,
        splits in prop::collection::vec(1usize..6, 1..5),
        mask in arb_mask(),
        seed in 0u64..1000,
        reverse in any::<bool>(),
    ) {
        let (qh, kvh, dim) = (2usize, 1usize, 4usize);
        let q = randv(len * qh * dim, seed);
        let k = randv(len * kvh * dim, seed ^ 1);
        let v = randv(len * kvh * dim, seed ^ 2);
        let mask = mask.instantiate(len as u32).unwrap();
        let scale = 1.0 / (dim as f32).sqrt();

        // Build split boundaries covering [0, len).
        let mut bounds = vec![0usize];
        let mut cur = 0;
        for s in splits {
            cur = (cur + s).min(len);
            if cur > *bounds.last().unwrap() {
                bounds.push(cur);
            }
            if cur == len {
                break;
            }
        }
        if *bounds.last().unwrap() != len {
            bounds.push(len);
        }
        let mut chunks: Vec<(usize, usize)> =
            bounds.windows(2).map(|w| (w[0], w[1])).collect();
        if reverse {
            chunks.reverse();
        }

        let mut acc = BlockAcc::new(len, qh, dim);
        for (s, e) in chunks {
            attn_block_fwd(
                &mut acc,
                BlockArgs {
                    q: &q,
                    k: &k[s * kvh * dim..e * kvh * dim],
                    v: &v[s * kvh * dim..e * kvh * dim],
                    qh,
                    kvh,
                    dim,
                    q_len: len,
                    kv_len: e - s,
                    q_start: 0,
                    kv_start: s as u32,
                    mask: &mask,
                    scale,
                },
            );
        }
        let (o, lse) = acc.finalize();
        let (ro, rlse) =
            reference::attention(&q, &k, &v, len, qh, kvh, dim, &mask);
        for (a, b) in o.iter().zip(&ro) {
            prop_assert!((a - b).abs() < 1e-4, "O {a} vs {b}");
        }
        for (a, b) in lse.iter().zip(&rlse) {
            if *b == f32::NEG_INFINITY {
                prop_assert_eq!(*a, f32::NEG_INFINITY);
            } else {
                prop_assert!((a - b).abs() < 1e-4, "lse {a} vs {b}");
            }
        }
    }

    /// merge(x, y) == merge(y, x): partial-output reduction commutes,
    /// so the owner may reduce partials in arrival order.
    #[test]
    fn merge_commutes(
        rows in 1usize..12,
        seed in 0u64..1000,
    ) {
        let dim = 4usize;
        let o1 = randv(rows * dim, seed);
        let o2 = randv(rows * dim, seed ^ 7);
        let mut rng = SmallRng::seed_from_u64(seed ^ 9);
        let l1: Vec<f32> = (0..rows).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let l2: Vec<f32> = (0..rows).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let (oa, la) = merge_outputs(&o1, &l1, &o2, &l2, dim);
        let (ob, lb) = merge_outputs(&o2, &l2, &o1, &l1, dim);
        for (a, b) in oa.iter().zip(&ob) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in la.iter().zip(&lb) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// merge is associative up to float noise: (x+y)+z == x+(y+z).
    #[test]
    fn merge_associates(
        rows in 1usize..10,
        seed in 0u64..1000,
    ) {
        let dim = 3usize;
        let parts: Vec<(Vec<f32>, Vec<f32>)> = (0..3u64)
            .map(|i| {
                let o = randv(rows * dim, seed ^ i);
                let mut rng = SmallRng::seed_from_u64(seed ^ (i + 10));
                let l: Vec<f32> = (0..rows).map(|_| rng.gen_range(-2.0..2.0)).collect();
                (o, l)
            })
            .collect();
        let (oxy, lxy) = merge_outputs(&parts[0].0, &parts[0].1, &parts[1].0, &parts[1].1, dim);
        let (left_o, left_l) = merge_outputs(&oxy, &lxy, &parts[2].0, &parts[2].1, dim);
        let (oyz, lyz) = merge_outputs(&parts[1].0, &parts[1].1, &parts[2].0, &parts[2].1, dim);
        let (right_o, right_l) = merge_outputs(&parts[0].0, &parts[0].1, &oyz, &lyz, dim);
        for (a, b) in left_o.iter().zip(&right_o) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in left_l.iter().zip(&right_l) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
