//! Blockwise attention kernels: online-softmax forward, partial-output
//! merging, and the exact backward for one (Q-block, KV-block) pair.
//!
//! Data layout: all tensors are row-major `[tokens, heads, dim]`, i.e.
//! element `(t, h, d)` lives at `(t * heads + h) * dim + d`. GQA is handled
//! by mapping query head `h` to KV head `h / (q_heads / kv_heads)`.

use dcp_mask::Mask;

/// Dot product of two equal-length rows (kept `inline` so the executor's
/// per-row loops vectorize).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The running state of one output block's online softmax: the unnormalized
/// accumulator plus per-(token, head) running max and sum-of-exponentials.
#[derive(Debug, Clone)]
pub struct BlockAcc {
    /// Q-block token count.
    pub len: usize,
    /// Query heads in this head group.
    pub qh: usize,
    /// Head dimension.
    pub dim: usize,
    /// Running row maxima, `[len * qh]`, `-inf` when untouched.
    pub m: Vec<f32>,
    /// Running sum of exponentials, `[len * qh]`.
    pub l: Vec<f32>,
    /// Unnormalized output accumulator, `[len * qh * dim]`.
    pub o: Vec<f32>,
}

impl BlockAcc {
    /// A fresh (empty) accumulator.
    pub fn new(len: usize, qh: usize, dim: usize) -> Self {
        BlockAcc {
            len,
            qh,
            dim,
            m: vec![f32::NEG_INFINITY; len * qh],
            l: vec![0.0; len * qh],
            o: vec![0.0; len * qh * dim],
        }
    }

    /// Folds another accumulator over the *same rows* into this one with the
    /// online-softmax state merge: rescale both sides to the joint maximum,
    /// then add. Merging a partial into a fresh accumulator reproduces the
    /// partial exactly, so a fold over per-block partials in a fixed order
    /// is deterministic regardless of how the partials were scheduled.
    pub fn merge(&mut self, other: &BlockAcc) {
        debug_assert_eq!(self.len, other.len);
        debug_assert_eq!(self.qh, other.qh);
        debug_assert_eq!(self.dim, other.dim);
        for r in 0..self.len * self.qh {
            let om = other.m[r];
            if om == f32::NEG_INFINITY {
                continue;
            }
            let new_m = self.m[r].max(om);
            let c_self = if self.m[r] == f32::NEG_INFINITY {
                0.0
            } else {
                (self.m[r] - new_m).exp()
            };
            let c_other = (om - new_m).exp();
            self.l[r] = self.l[r] * c_self + other.l[r] * c_other;
            let base = r * self.dim;
            let dst = &mut self.o[base..base + self.dim];
            let src = &other.o[base..base + self.dim];
            for (a, &b) in dst.iter_mut().zip(src) {
                *a = *a * c_self + b * c_other;
            }
            self.m[r] = new_m;
        }
    }

    /// Normalizes the accumulator into `(O, lse)`. Rows that attended to
    /// nothing produce zero output and `lse = -inf`.
    pub fn finalize(&self) -> (Vec<f32>, Vec<f32>) {
        let mut out = vec![0.0f32; self.len * self.qh * self.dim];
        let mut lse = vec![f32::NEG_INFINITY; self.len * self.qh];
        for (r, dst_lse) in lse.iter_mut().enumerate() {
            if self.l[r] > 0.0 {
                *dst_lse = self.m[r] + self.l[r].ln();
                let inv = 1.0 / self.l[r];
                let base = r * self.dim;
                for (dst, &src) in out[base..base + self.dim]
                    .iter_mut()
                    .zip(&self.o[base..base + self.dim])
                {
                    *dst = src * inv;
                }
            }
        }
        (out, lse)
    }
}

/// Arguments describing one computation block for the forward kernel.
#[derive(Debug, Clone, Copy)]
pub struct BlockArgs<'a> {
    /// Q slice of the query block, `[q_len, qh, dim]`.
    pub q: &'a [f32],
    /// K slice of the KV block, `[kv_len, kvh, dim]`.
    pub k: &'a [f32],
    /// V slice of the KV block, `[kv_len, kvh, dim]`.
    pub v: &'a [f32],
    /// Query heads in the group.
    pub qh: usize,
    /// KV heads in the group.
    pub kvh: usize,
    /// Head dimension.
    pub dim: usize,
    /// Tokens in the query block.
    pub q_len: usize,
    /// Tokens in the KV block.
    pub kv_len: usize,
    /// Absolute token index of the query block's first token.
    pub q_start: u32,
    /// Absolute token index of the KV block's first token.
    pub kv_start: u32,
    /// The sequence's mask.
    pub mask: &'a Mask,
    /// Softmax scale (`1/sqrt(dim)`).
    pub scale: f32,
}

/// Computes the masked attention of one (Q-block, KV-block) pair,
/// accumulating into `acc` with the online-softmax rescale (Listing 1 line 5
/// of the paper; the fused rescale of the paper's Blockwise Attention
/// instruction).
pub fn attn_block_fwd(acc: &mut BlockAcc, a: BlockArgs<'_>) {
    debug_assert_eq!(acc.len, a.q_len);
    debug_assert_eq!(acc.qh, a.qh);
    let group = a.qh / a.kvh;
    let mut scores = vec![0.0f32; a.kv_len];
    let mut allowed = vec![false; a.kv_len];
    for t in 0..a.q_len {
        let abs_q = a.q_start + t as u32;
        let ranges = a.mask.allowed(abs_q);
        let mut any = false;
        for (j, al) in allowed.iter_mut().enumerate() {
            *al = ranges.contains(a.kv_start + j as u32);
            any |= *al;
        }
        if !any {
            continue;
        }
        for h in 0..a.qh {
            let kvh_idx = h / group;
            let r = t * a.qh + h;
            let qbase = r * a.dim;
            let qrow = &a.q[qbase..qbase + a.dim];
            // Scores for allowed keys.
            let mut row_max = f32::NEG_INFINITY;
            for j in 0..a.kv_len {
                if !allowed[j] {
                    continue;
                }
                let kbase = (j * a.kvh + kvh_idx) * a.dim;
                let s = dot(qrow, &a.k[kbase..kbase + a.dim]) * a.scale;
                scores[j] = s;
                row_max = row_max.max(s);
            }
            if row_max == f32::NEG_INFINITY {
                continue;
            }
            // Online-softmax rescale, fused over the hoisted output row.
            let new_m = acc.m[r].max(row_max);
            let correction = if acc.m[r] == f32::NEG_INFINITY {
                0.0
            } else {
                (acc.m[r] - new_m).exp()
            };
            let orow = &mut acc.o[qbase..qbase + a.dim];
            for o in orow.iter_mut() {
                *o *= correction;
            }
            acc.m[r] = new_m;
            let mut l_add = 0.0f32;
            for j in 0..a.kv_len {
                if !allowed[j] {
                    continue;
                }
                let p = (scores[j] - new_m).exp();
                l_add += p;
                let vbase = (j * a.kvh + kvh_idx) * a.dim;
                for (o, &vv) in orow.iter_mut().zip(&a.v[vbase..vbase + a.dim]) {
                    *o += p * vv;
                }
            }
            acc.l[r] = acc.l[r] * correction + l_add;
        }
    }
}

/// Merges two *normalized* partial outputs `(o, lse)` of the same rows into
/// one (the paper's Blockwise Reduction). Rows absent from one side
/// (`lse = -inf`) pass through from the other.
pub fn merge_outputs(
    o1: &[f32],
    lse1: &[f32],
    o2: &[f32],
    lse2: &[f32],
    dim: usize,
) -> (Vec<f32>, Vec<f32>) {
    debug_assert_eq!(o1.len(), o2.len());
    debug_assert_eq!(lse1.len(), lse2.len());
    let rows = lse1.len();
    let mut o = vec![0.0f32; o1.len()];
    let mut lse = vec![f32::NEG_INFINITY; rows];
    for r in 0..rows {
        let (a, b) = (lse1[r], lse2[r]);
        if a == f32::NEG_INFINITY && b == f32::NEG_INFINITY {
            continue;
        }
        let m = a.max(b);
        let ea = if a == f32::NEG_INFINITY {
            0.0
        } else {
            (a - m).exp()
        };
        let eb = if b == f32::NEG_INFINITY {
            0.0
        } else {
            (b - m).exp()
        };
        let sum = ea + eb;
        lse[r] = m + sum.ln();
        let (wa, wb) = (ea / sum, eb / sum);
        for d in 0..dim {
            o[r * dim + d] = wa * o1[r * dim + d] + wb * o2[r * dim + d];
        }
    }
    (o, lse)
}

/// Backward-pass arguments for one computation block.
#[derive(Debug, Clone, Copy)]
pub struct BlockBwdArgs<'a> {
    /// Forward arguments (Q, K, V, mask, geometry).
    pub fwd: BlockArgs<'a>,
    /// Final normalized output of the query block, `[q_len, qh, dim]`.
    pub o: &'a [f32],
    /// Final log-sum-exp of the query block, `[q_len * qh]`.
    pub lse: &'a [f32],
    /// Output gradient of the query block, `[q_len, qh, dim]`.
    pub d_o: &'a [f32],
}

/// Computes the exact gradients of one (Q-block, KV-block) pair, adding into
/// `dq` (`[q_len, qh, dim]`), `dk` and `dv` (`[kv_len, kvh, dim]`).
///
/// Uses the FlashAttention backward identities: with
/// `P = exp(S - lse_row)` (the exact softmax restricted to this block),
/// `dV += P^T dO`, `dP = dO V^T`, `delta = rowsum(dO * O)`,
/// `dS = P * (dP - delta)`, `dQ += dS K * scale`, `dK += dS^T Q * scale`.
pub fn attn_block_bwd(args: BlockBwdArgs<'_>, dq: &mut [f32], dk: &mut [f32], dv: &mut [f32]) {
    let a = args.fwd;
    let group = a.qh / a.kvh;
    for t in 0..a.q_len {
        let abs_q = a.q_start + t as u32;
        let ranges = a.mask.allowed(abs_q);
        for h in 0..a.qh {
            let r = t * a.qh + h;
            if args.lse[r] == f32::NEG_INFINITY {
                continue;
            }
            let kvh_idx = h / group;
            let rbase = r * a.dim;
            let qrow = &a.q[rbase..rbase + a.dim];
            let dorow = &args.d_o[rbase..rbase + a.dim];
            let dqrow = &mut dq[rbase..rbase + a.dim];
            let lse_r = args.lse[r];
            // delta = rowsum(dO * O).
            let delta = dot(dorow, &args.o[rbase..rbase + a.dim]);
            for j in 0..a.kv_len {
                if !ranges.contains(a.kv_start + j as u32) {
                    continue;
                }
                let kbase = (j * a.kvh + kvh_idx) * a.dim;
                let krow = &a.k[kbase..kbase + a.dim];
                let vrow = &a.v[kbase..kbase + a.dim];
                let s = dot(qrow, krow) * a.scale;
                let p = (s - lse_r).exp();
                // dV += p * dO; dP = dO . V ; dS = p * (dP - delta).
                for (g, &go) in dv[kbase..kbase + a.dim].iter_mut().zip(dorow) {
                    *g += p * go;
                }
                let ds = p * (dot(dorow, vrow) - delta) * a.scale;
                let dkrow = &mut dk[kbase..kbase + a.dim];
                for d in 0..a.dim {
                    dqrow[d] += ds * krow[d];
                    dkrow[d] += ds * qrow[d];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_mask::MaskSpec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn randv(n: usize, rng: &mut SmallRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// Single block covering the whole sequence must equal a direct softmax.
    #[test]
    fn single_block_matches_direct_softmax() {
        let (len, qh, kvh, dim) = (6usize, 2usize, 1usize, 4usize);
        let mut rng = SmallRng::seed_from_u64(1);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let mask = MaskSpec::Causal.instantiate(len as u32).unwrap();
        let scale = 1.0 / (dim as f32).sqrt();
        let mut acc = BlockAcc::new(len, qh, dim);
        attn_block_fwd(
            &mut acc,
            BlockArgs {
                q: &q,
                k: &k,
                v: &v,
                qh,
                kvh,
                dim,
                q_len: len,
                kv_len: len,
                q_start: 0,
                kv_start: 0,
                mask: &mask,
                scale,
            },
        );
        let (o, lse) = acc.finalize();
        // Direct computation for one (t, h).
        for t in 0..len {
            for h in 0..qh {
                let mut scores = Vec::new();
                for j in 0..=t {
                    let mut s = 0.0f32;
                    for d in 0..dim {
                        s += q[(t * qh + h) * dim + d] * k[(j * kvh) * dim + d];
                    }
                    scores.push(s * scale);
                }
                let m = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let l: f32 = scores.iter().map(|s| (s - m).exp()).sum();
                let expect_lse = m + l.ln();
                assert!((lse[t * qh + h] - expect_lse).abs() < 1e-5);
                for d in 0..dim {
                    let mut val = 0.0f32;
                    for (j, s) in scores.iter().enumerate() {
                        val += (s - m).exp() / l * v[(j * kvh) * dim + d];
                    }
                    assert!((o[(t * qh + h) * dim + d] - val).abs() < 1e-5);
                }
            }
        }
    }

    /// Splitting KV into two blocks and accumulating must equal one block.
    #[test]
    fn kv_split_accumulation_is_exact() {
        let (len, qh, kvh, dim) = (8usize, 4usize, 2usize, 8usize);
        let mut rng = SmallRng::seed_from_u64(2);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let mask = MaskSpec::Causal.instantiate(len as u32).unwrap();
        let scale = 1.0 / (dim as f32).sqrt();
        let run = |splits: &[(usize, usize)]| -> (Vec<f32>, Vec<f32>) {
            let mut acc = BlockAcc::new(len, qh, dim);
            for &(s, e) in splits {
                attn_block_fwd(
                    &mut acc,
                    BlockArgs {
                        q: &q,
                        k: &k[s * kvh * dim..e * kvh * dim],
                        v: &v[s * kvh * dim..e * kvh * dim],
                        qh,
                        kvh,
                        dim,
                        q_len: len,
                        kv_len: e - s,
                        q_start: 0,
                        kv_start: s as u32,
                        mask: &mask,
                        scale,
                    },
                );
            }
            acc.finalize()
        };
        let (o1, l1) = run(&[(0, len)]);
        let (o2, l2) = run(&[(0, 3), (3, len)]);
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in l1.iter().zip(&l2) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    /// Merging partials from disjoint KV halves equals the full result.
    #[test]
    fn merge_equals_joint_accumulation() {
        let (len, qh, kvh, dim) = (5usize, 2usize, 2usize, 4usize);
        let mut rng = SmallRng::seed_from_u64(3);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let mask = MaskSpec::Full.instantiate(len as u32).unwrap();
        let scale = 1.0 / (dim as f32).sqrt();
        let part = |s: usize, e: usize| -> (Vec<f32>, Vec<f32>) {
            let mut acc = BlockAcc::new(len, qh, dim);
            attn_block_fwd(
                &mut acc,
                BlockArgs {
                    q: &q,
                    k: &k[s * kvh * dim..e * kvh * dim],
                    v: &v[s * kvh * dim..e * kvh * dim],
                    qh,
                    kvh,
                    dim,
                    q_len: len,
                    kv_len: e - s,
                    q_start: 0,
                    kv_start: s as u32,
                    mask: &mask,
                    scale,
                },
            );
            acc.finalize()
        };
        let (oa, la) = part(0, 2);
        let (ob, lb) = part(2, len);
        let (om, lm) = merge_outputs(&oa, &la, &ob, &lb, dim);
        let (of, lf) = part(0, len);
        for (a, b) in om.iter().zip(&of) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in lm.iter().zip(&lf) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    /// Folding per-KV-block partial accumulators with [`BlockAcc::merge`]
    /// must match accumulating the blocks sequentially into one state, and
    /// merging into a fresh accumulator must reproduce the partial exactly.
    #[test]
    fn acc_merge_equals_sequential_accumulation() {
        let (len, qh, kvh, dim) = (6usize, 2usize, 1usize, 4usize);
        let mut rng = SmallRng::seed_from_u64(4);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let mask = MaskSpec::Causal.instantiate(len as u32).unwrap();
        let scale = 1.0 / (dim as f32).sqrt();
        let part = |s: usize, e: usize| -> BlockAcc {
            let mut acc = BlockAcc::new(len, qh, dim);
            attn_block_fwd(
                &mut acc,
                BlockArgs {
                    q: &q,
                    k: &k[s * kvh * dim..e * kvh * dim],
                    v: &v[s * kvh * dim..e * kvh * dim],
                    qh,
                    kvh,
                    dim,
                    q_len: len,
                    kv_len: e - s,
                    q_start: 0,
                    kv_start: s as u32,
                    mask: &mask,
                    scale,
                },
            );
            acc
        };
        let (pa, pb) = (part(0, 2), part(2, len));
        // Fresh + merge reproduces the partial bitwise.
        let mut fresh = BlockAcc::new(len, qh, dim);
        fresh.merge(&pa);
        assert_eq!(fresh.finalize(), pa.finalize());
        // Merging both partials equals sequential accumulation.
        fresh.merge(&pb);
        let (om, lm) = fresh.finalize();
        let mut joint = part(0, 2);
        attn_block_fwd(
            &mut joint,
            BlockArgs {
                q: &q,
                k: &k[2 * kvh * dim..],
                v: &v[2 * kvh * dim..],
                qh,
                kvh,
                dim,
                q_len: len,
                kv_len: len - 2,
                q_start: 0,
                kv_start: 2,
                mask: &mask,
                scale,
            },
        );
        let (oj, lj) = joint.finalize();
        for (a, b) in om.iter().zip(&oj) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in lm.iter().zip(&lj) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    /// Fully masked rows produce zero output and -inf lse, and merging with
    /// an empty partial is the identity.
    #[test]
    fn empty_rows_and_identity_merge() {
        let (len, qh, kvh, dim) = (3usize, 1usize, 1usize, 2usize);
        let acc = BlockAcc::new(len, qh, dim);
        let (o, lse) = acc.finalize();
        assert!(o.iter().all(|&x| x == 0.0));
        assert!(lse.iter().all(|&x| x == f32::NEG_INFINITY));
        let o2 = vec![1.0f32; len * qh * dim];
        let l2 = vec![0.5f32; len * qh];
        let (om, lm) = merge_outputs(&o, &lse, &o2, &l2, dim);
        assert_eq!(om, o2);
        assert_eq!(lm, l2);
        let _ = kvh;
    }
}
