//! A tiny, really-trainable transformer with handwritten backprop.
//!
//! This exists to reproduce the paper's precision experiment (Sec. 7.4,
//! Fig. 21): training with DCP-planned distributed attention must produce
//! the same loss curve as training with dense single-device attention, up to
//! kernel-order floating-point noise. The model is deliberately small —
//! embedding, a few attention+MLP blocks with residuals, and a linear head
//! trained with cross-entropy next-token prediction on a synthetic Markov
//! sequence.
//!
//! The attention inside the model is pluggable ([`AttnBackend`]): either the
//! dense reference or a full plan round-trip (block partitioning → placement
//! → schedule → multi-device executor).

use std::collections::HashMap;

use dcp_blocks::{BatchLayout, BlockConfig, TokenBlockId};
use dcp_mask::MaskSpec;
use dcp_sched::{build_plan, ExecutionPlan, Placement, ScheduleConfig};
use dcp_types::{AttnSpec, DcpResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::executor::{execute_backward, execute_forward, BatchData, BlockOut};
use crate::reference;

/// Which attention implementation the model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnBackend {
    /// Dense single-device reference attention.
    Dense,
    /// DCP plan round-trip on `num_devices` simulated devices with the given
    /// block size.
    Planned {
        /// Simulated device count.
        num_devices: u32,
        /// Sequence-dimension block size.
        block_size: u32,
    },
}

/// Model and training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Query heads.
    pub q_heads: usize,
    /// KV heads (GQA groups).
    pub kv_heads: usize,
    /// Head dimension. Model width is `q_heads * head_dim`.
    pub head_dim: usize,
    /// MLP hidden width.
    pub ffn: usize,
    /// Training sequence length.
    pub seq_len: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Seed for init and data.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            vocab: 64,
            layers: 2,
            q_heads: 4,
            kv_heads: 2,
            head_dim: 8,
            ffn: 64,
            seq_len: 64,
            lr: 0.05,
            seed: 42,
        }
    }
}

/// Output rows per parallel matmul task. Fixed (not derived from the thread
/// count); since every output row's arithmetic is independent and identical
/// to the serial loop, results are bitwise thread-count independent anyway —
/// the chunking only amortizes task overhead.
const MM_ROW_CHUNK: usize = 16;

/// Runs `row_block(i0, i1, out_block)` over `[0, m)` split into fixed row
/// chunks on the rayon pool and concatenates the `[i1-i0, n]` blocks.
fn par_rows<F>(m: usize, n: usize, row_block: F) -> Vec<f32>
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let nchunks = m.div_ceil(MM_ROW_CHUNK).max(1);
    let blocks: Vec<Vec<f32>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let i0 = c * MM_ROW_CHUNK;
            let i1 = (i0 + MM_ROW_CHUNK).min(m);
            let mut out = vec![0.0f32; (i1 - i0) * n];
            row_block(i0, i1, &mut out);
            out
        })
        .collect();
    let mut out = Vec::with_capacity(m * n);
    for b in blocks {
        out.extend_from_slice(&b);
    }
    out
}

/// Row-major matmul: `a [m,k] * b [k,n] -> [m,n]`, parallel over row blocks.
fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    par_rows(m, n, |i0, i1, out| {
        for i in i0..i1 {
            let orow = &mut out[(i - i0) * n..(i - i0 + 1) * n];
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    })
}

/// `a^T [k,m]^T * b [k? ...]`: computes `a^T b` with `a [k,m]`, `b [k,n]`,
/// parallel over output-row blocks (the reduction over `k` stays in
/// ascending order per element, matching the serial loop bitwise).
fn matmul_at(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
    par_rows(m, n, |i0, i1, out| {
        for p in 0..k {
            let brow = &b[p * n..(p + 1) * n];
            for i in i0..i1 {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[(i - i0) * n..(i - i0 + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    })
}

/// `a [m,n] * b^T` with `b [k,n]`: returns `[m,k]`, parallel over row blocks.
fn matmul_bt(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    par_rows(m, k, |i0, i1, out| {
        for i in i0..i1 {
            let arow = &a[i * n..(i + 1) * n];
            for j in 0..k {
                let brow = &b[j * n..(j + 1) * n];
                out[(i - i0) * k + j] = arow.iter().zip(brow).map(|(x, y)| x * y).sum::<f32>();
            }
        }
    })
}

struct Layer {
    wq: Vec<f32>,
    wk: Vec<f32>,
    wv: Vec<f32>,
    wo: Vec<f32>,
    w1: Vec<f32>,
    w2: Vec<f32>,
}

/// The model: embedding, `layers` blocks, output head.
pub struct TinyTransformer {
    cfg: TrainConfig,
    emb: Vec<f32>,
    layers: Vec<Layer>,
    wout: Vec<f32>,
}

/// Saved activations of one forward pass (for backprop).
struct Tape {
    x0: Vec<f32>,
    per_layer: Vec<LayerTape>,
    logits: Vec<f32>,
}

struct LayerTape {
    x_in: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn_o: Vec<f32>,
    lse: Vec<f32>,
    x_mid: Vec<f32>,
    h_pre: Vec<f32>,
    h_post: Vec<f32>,
}

/// The pluggable attention context: a mask bound to the training length
/// plus, for the planned backend, the prebuilt layout/placement/plan.
pub struct AttnCtx {
    backend: AttnBackend,
    mask: dcp_mask::Mask,
    /// Plan machinery for the `Planned` backend, built once.
    planned: Option<(BatchLayout, Placement, ExecutionPlan)>,
}

impl AttnCtx {
    /// Builds the context (and, for the planned backend, the plan).
    ///
    /// # Errors
    ///
    /// Propagates mask/layout/plan construction failures.
    pub fn new(cfg: &TrainConfig, backend: AttnBackend, mask_spec: &MaskSpec) -> DcpResult<Self> {
        let mask = mask_spec.instantiate(cfg.seq_len as u32)?;
        let planned = if let AttnBackend::Planned {
            num_devices,
            block_size,
        } = backend
        {
            let attn = AttnSpec::new(
                cfg.q_heads as u32,
                cfg.kv_heads as u32,
                cfg.head_dim as u32,
                2,
            );
            let layout = BatchLayout::build(
                attn,
                BlockConfig {
                    block_size,
                    head_blocks: 1,
                },
                &[(cfg.seq_len as u32, mask_spec.clone())],
            )?;
            // Zig-zag-ish round robin placement; computation follows Q.
            let token_to_dev: Vec<u32> = (0..layout.token_blocks.len() as u32)
                .map(|i| i % num_devices)
                .collect();
            let comp_to_dev: Vec<u32> = layout
                .comp_blocks
                .iter()
                .map(|c| token_to_dev[c.q_block.0 as usize])
                .collect();
            let placement = Placement {
                num_devices,
                token_to_dev,
                comp_to_dev,
            };
            let plan = build_plan(&layout, &placement, &ScheduleConfig::default())?;
            Some((layout, placement, plan))
        } else {
            None
        };
        Ok(AttnCtx {
            backend,
            mask,
            planned,
        })
    }

    fn split_blocks(layout: &BatchLayout, x: &[f32], heads: usize, dim: usize) -> Vec<Vec<f32>> {
        // Single sequence, head_blocks == 1: blocks are token ranges.
        layout
            .token_blocks
            .iter()
            .map(|tb| x[tb.start as usize * heads * dim..tb.end() as usize * heads * dim].to_vec())
            .collect()
    }

    fn join_blocks(
        layout: &BatchLayout,
        blocks: &HashMap<TokenBlockId, Vec<f32>>,
        len: usize,
        heads: usize,
        dim: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; len * heads * dim];
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            let blk = &blocks[&TokenBlockId(i as u32)];
            out[tb.start as usize * heads * dim..tb.end() as usize * heads * dim]
                .copy_from_slice(blk);
        }
        out
    }

    fn forward(
        &self,
        cfg: &TrainConfig,
        q: &[f32],
        k: &[f32],
        v: &[f32],
    ) -> DcpResult<(Vec<f32>, Vec<f32>)> {
        match self.backend {
            AttnBackend::Dense => Ok(reference::attention(
                q,
                k,
                v,
                cfg.seq_len,
                cfg.q_heads,
                cfg.kv_heads,
                cfg.head_dim,
                &self.mask,
            )),
            AttnBackend::Planned { .. } => {
                let (layout, placement, plan) = self.planned.as_ref().expect("built in new");
                let data = BatchData {
                    q: Self::split_blocks(layout, q, cfg.q_heads, cfg.head_dim),
                    k: Self::split_blocks(layout, k, cfg.kv_heads, cfg.head_dim),
                    v: Self::split_blocks(layout, v, cfg.kv_heads, cfg.head_dim),
                };
                let out = execute_forward(layout, placement, plan, &data)?;
                let o_blocks: HashMap<TokenBlockId, Vec<f32>> =
                    out.iter().map(|(&t, b)| (t, b.o.clone())).collect();
                let lse_blocks: HashMap<TokenBlockId, Vec<f32>> =
                    out.iter().map(|(&t, b)| (t, b.lse.clone())).collect();
                let o =
                    Self::join_blocks(layout, &o_blocks, cfg.seq_len, cfg.q_heads, cfg.head_dim);
                let lse = Self::join_blocks(layout, &lse_blocks, cfg.seq_len, cfg.q_heads, 1);
                Ok((o, lse))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        cfg: &TrainConfig,
        q: &[f32],
        k: &[f32],
        v: &[f32],
        o: &[f32],
        lse: &[f32],
        d_o: &[f32],
    ) -> DcpResult<(Vec<f32>, Vec<f32>, Vec<f32>)> {
        match self.backend {
            AttnBackend::Dense => Ok(reference::attention_bwd(
                q,
                k,
                v,
                o,
                lse,
                d_o,
                cfg.seq_len,
                cfg.q_heads,
                cfg.kv_heads,
                cfg.head_dim,
                &self.mask,
            )),
            AttnBackend::Planned { .. } => {
                let (layout, placement, plan) = self.planned.as_ref().expect("built in new");
                let data = BatchData {
                    q: Self::split_blocks(layout, q, cfg.q_heads, cfg.head_dim),
                    k: Self::split_blocks(layout, k, cfg.kv_heads, cfg.head_dim),
                    v: Self::split_blocks(layout, v, cfg.kv_heads, cfg.head_dim),
                };
                let o_blocks = Self::split_blocks(layout, o, cfg.q_heads, cfg.head_dim);
                let lse_blocks = Self::split_blocks(layout, lse, cfg.q_heads, 1);
                let do_blocks = Self::split_blocks(layout, d_o, cfg.q_heads, cfg.head_dim);
                let mut fwd_out = HashMap::new();
                let mut d_o_map = HashMap::new();
                for i in 0..layout.token_blocks.len() {
                    fwd_out.insert(
                        TokenBlockId(i as u32),
                        BlockOut {
                            o: o_blocks[i].clone(),
                            lse: lse_blocks[i].clone(),
                        },
                    );
                    d_o_map.insert(TokenBlockId(i as u32), do_blocks[i].clone());
                }
                let grads = execute_backward(layout, placement, plan, &data, &fwd_out, &d_o_map)?;
                let dq_map: HashMap<_, _> = grads.iter().map(|(&t, g)| (t, g.dq.clone())).collect();
                let dk_map: HashMap<_, _> = grads.iter().map(|(&t, g)| (t, g.dk.clone())).collect();
                let dv_map: HashMap<_, _> = grads.iter().map(|(&t, g)| (t, g.dv.clone())).collect();
                Ok((
                    Self::join_blocks(layout, &dq_map, cfg.seq_len, cfg.q_heads, cfg.head_dim),
                    Self::join_blocks(layout, &dk_map, cfg.seq_len, cfg.kv_heads, cfg.head_dim),
                    Self::join_blocks(layout, &dv_map, cfg.seq_len, cfg.kv_heads, cfg.head_dim),
                ))
            }
        }
    }
}

impl TinyTransformer {
    /// Deterministically initializes the model from `cfg.seed`.
    pub fn new(cfg: TrainConfig) -> Self {
        let h = cfg.q_heads * cfg.head_dim;
        let kvh = cfg.kv_heads * cfg.head_dim;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut init = |n: usize, fan_in: usize| -> Vec<f32> {
            let s = (1.0 / fan_in as f32).sqrt();
            (0..n).map(|_| rng.gen_range(-s..s)).collect()
        };
        let emb = init(cfg.vocab * h, h);
        let layers = (0..cfg.layers)
            .map(|_| Layer {
                wq: init(h * h, h),
                wk: init(h * kvh, h),
                wv: init(h * kvh, h),
                wo: init(h * h, h),
                w1: init(h * cfg.ffn, h),
                w2: init(cfg.ffn * h, cfg.ffn),
            })
            .collect();
        let wout = init(h * cfg.vocab, h);
        TinyTransformer {
            cfg,
            emb,
            layers,
            wout,
        }
    }

    fn forward(&self, tokens: &[usize], attn: &AttnCtx) -> DcpResult<(f32, Tape)> {
        let cfg = &self.cfg;
        let h = cfg.q_heads * cfg.head_dim;
        let kvh = cfg.kv_heads * cfg.head_dim;
        let l = cfg.seq_len;
        let mut x: Vec<f32> = Vec::with_capacity(l * h);
        for &t in &tokens[..l] {
            x.extend_from_slice(&self.emb[t * h..(t + 1) * h]);
        }
        let x0 = x.clone();
        let mut per_layer = Vec::new();
        for layer in &self.layers {
            let x_in = x.clone();
            let q = matmul(&x, &layer.wq, l, h, h);
            let k = matmul(&x, &layer.wk, l, h, kvh);
            let v = matmul(&x, &layer.wv, l, h, kvh);
            let (attn_o, lse) = attn.forward(cfg, &q, &k, &v)?;
            let proj = matmul(&attn_o, &layer.wo, l, h, h);
            let x_mid: Vec<f32> = x.iter().zip(&proj).map(|(a, b)| a + b).collect();
            let h_pre = matmul(&x_mid, &layer.w1, l, h, cfg.ffn);
            let h_post: Vec<f32> = h_pre.iter().map(|&z| z.max(0.0)).collect();
            let mlp = matmul(&h_post, &layer.w2, l, cfg.ffn, h);
            x = x_mid.iter().zip(&mlp).map(|(a, b)| a + b).collect();
            per_layer.push(LayerTape {
                x_in,
                q,
                k,
                v,
                attn_o,
                lse,
                x_mid,
                h_pre,
                h_post,
            });
        }
        let logits = matmul(&x, &self.wout, l, h, cfg.vocab);
        // Next-token cross entropy (predict tokens[t+1] from position t).
        let mut loss = 0.0f64;
        let preds = l - 1;
        for t in 0..preds {
            let row = &logits[t * cfg.vocab..(t + 1) * cfg.vocab];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = row.iter().map(|&r| (r - m).exp()).sum();
            let target = tokens[t + 1];
            loss += -((row[target] - m) as f64 - (z as f64).ln());
        }
        let tape = Tape {
            x0,
            per_layer,
            logits,
        };
        Ok(((loss / preds as f64) as f32, tape))
    }

    /// One SGD step; returns the loss before the update.
    pub fn train_step(&mut self, tokens: &[usize], attn: &AttnCtx) -> DcpResult<f32> {
        let cfg = self.cfg;
        let h = cfg.q_heads * cfg.head_dim;
        let kvh = cfg.kv_heads * cfg.head_dim;
        let l = cfg.seq_len;
        let (loss, tape) = self.forward(tokens, attn)?;

        // dLogits.
        let preds = l - 1;
        let mut dlogits = vec![0.0f32; l * cfg.vocab];
        for t in 0..preds {
            let row = &tape.logits[t * cfg.vocab..(t + 1) * cfg.vocab];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = row.iter().map(|&r| (r - m).exp()).sum();
            for c in 0..cfg.vocab {
                let p = (row[c] - m).exp() / z;
                dlogits[t * cfg.vocab + c] = p / preds as f32;
            }
            dlogits[t * cfg.vocab + tokens[t + 1]] -= 1.0 / preds as f32;
        }
        // x_final = input to wout: recompute from tape (x after last layer).
        let x_final: Vec<f32> = {
            // Rebuild: x_mid + mlp of the last layer.
            let lt = tape.per_layer.last().expect("at least one layer");
            let mlp = matmul(&lt.h_post, &self.layers.last().unwrap().w2, l, cfg.ffn, h);
            lt.x_mid.iter().zip(&mlp).map(|(a, b)| a + b).collect()
        };
        let dwout = matmul_at(&x_final, &dlogits, l, h, cfg.vocab);
        let mut dx = matmul_bt(&dlogits, &self.wout, l, cfg.vocab, h);

        struct LayerGrads {
            dwq: Vec<f32>,
            dwk: Vec<f32>,
            dwv: Vec<f32>,
            dwo: Vec<f32>,
            dw1: Vec<f32>,
            dw2: Vec<f32>,
        }
        let mut lgrads: Vec<LayerGrads> = Vec::new();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let lt = &tape.per_layer[li];
            // MLP backward: x = x_mid + relu(x_mid W1) W2.
            let dw2 = matmul_at(&lt.h_post, &dx, l, cfg.ffn, h);
            let mut dh = matmul_bt(&dx, &layer.w2, l, h, cfg.ffn);
            for (g, &pre) in dh.iter_mut().zip(&lt.h_pre) {
                if pre <= 0.0 {
                    *g = 0.0;
                }
            }
            let dw1 = matmul_at(&lt.x_mid, &dh, l, h, cfg.ffn);
            let mut dx_mid = matmul_bt(&dh, &layer.w1, l, cfg.ffn, h);
            for (a, b) in dx_mid.iter_mut().zip(&dx) {
                *a += b; // residual
            }
            // Attention backward: x_mid = x_in + (attn_o Wo).
            let d_attn_o = matmul_bt(&dx_mid, &layer.wo, l, h, h);
            let dwo = matmul_at(&lt.attn_o, &dx_mid, l, h, h);
            let (dq, dk, dv) =
                attn.backward(&cfg, &lt.q, &lt.k, &lt.v, &lt.attn_o, &lt.lse, &d_attn_o)?;
            let dwq = matmul_at(&lt.x_in, &dq, l, h, h);
            let dwk = matmul_at(&lt.x_in, &dk, l, h, kvh);
            let dwv = matmul_at(&lt.x_in, &dv, l, h, kvh);
            let mut dx_in = matmul_bt(&dq, &layer.wq, l, h, h);
            let dxk = matmul_bt(&dk, &layer.wk, l, kvh, h);
            let dxv = matmul_bt(&dv, &layer.wv, l, kvh, h);
            for i in 0..l * h {
                dx_in[i] += dxk[i] + dxv[i] + dx_mid[i]; // residual
            }
            dx = dx_in;
            lgrads.push(LayerGrads {
                dwq,
                dwk,
                dwv,
                dwo,
                dw1,
                dw2,
            });
        }
        lgrads.reverse();

        // Embedding gradient.
        let mut demb = vec![0.0f32; cfg.vocab * h];
        for (t, &tok) in tokens[..l].iter().enumerate() {
            for d in 0..h {
                demb[tok * h + d] += dx[t * h + d];
            }
        }
        let _ = &tape.x0;

        // SGD update.
        let lr = cfg.lr;
        let upd = |w: &mut [f32], g: &[f32]| {
            for (a, b) in w.iter_mut().zip(g) {
                *a -= lr * b;
            }
        };
        upd(&mut self.emb, &demb);
        upd(&mut self.wout, &dwout);
        for (layer, g) in self.layers.iter_mut().zip(&lgrads) {
            upd(&mut layer.wq, &g.dwq);
            upd(&mut layer.wk, &g.dwk);
            upd(&mut layer.wv, &g.dwv);
            upd(&mut layer.wo, &g.dwo);
            upd(&mut layer.w1, &g.dw1);
            upd(&mut layer.w2, &g.dw2);
        }
        Ok(loss)
    }
}

/// Generates a deterministic synthetic token stream (an order-1 Markov chain
/// with a few strong transitions, so there is structure to learn).
pub fn synthetic_tokens(vocab: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tokens = Vec::with_capacity(len);
    let mut cur = 0usize;
    for _ in 0..len {
        tokens.push(cur);
        cur = if rng.gen_bool(0.8) {
            (cur * 7 + 3) % vocab
        } else {
            rng.gen_range(0..vocab)
        };
    }
    tokens
}

/// Trains a fresh model for `steps` steps with the given backend and mask,
/// returning the loss curve.
///
/// # Errors
///
/// Propagates plan-construction or execution errors from the planned
/// backend.
pub fn train(
    cfg: TrainConfig,
    backend: AttnBackend,
    mask: &MaskSpec,
    steps: usize,
) -> DcpResult<Vec<f32>> {
    let mut model = TinyTransformer::new(cfg);
    let attn = AttnCtx::new(&cfg, backend, mask)?;
    let tokens = synthetic_tokens(cfg.vocab, cfg.seq_len, cfg.seed ^ 0xda7a);
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        losses.push(model.train_step(&tokens, &attn)?);
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_training_reduces_loss() {
        let cfg = TrainConfig {
            seq_len: 32,
            lr: 0.3,
            ..Default::default()
        };
        let losses = train(cfg, AttnBackend::Dense, &MaskSpec::Causal, 80).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "loss should drop: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn planned_matches_dense_loss_curve() {
        // The Fig. 21 claim: DCP's loss curve matches the baseline's.
        let cfg = TrainConfig {
            seq_len: 32,
            ..Default::default()
        };
        let dense = train(cfg, AttnBackend::Dense, &MaskSpec::Causal, 15).unwrap();
        let planned = train(
            cfg,
            AttnBackend::Planned {
                num_devices: 3,
                block_size: 8,
            },
            &MaskSpec::Causal,
            15,
        )
        .unwrap();
        for (i, (a, b)) in dense.iter().zip(&planned).enumerate() {
            assert!(
                (a - b).abs() < 5e-3 * (1.0 + a.abs()),
                "step {i}: dense {a} vs planned {b}"
            );
        }
    }

    #[test]
    fn planned_matches_dense_with_shared_question_mask() {
        let cfg = TrainConfig {
            seq_len: 40,
            ..Default::default()
        };
        let mask = MaskSpec::SharedQuestion {
            question_len: 10,
            answer_lens: vec![10, 10, 10],
        };
        let dense = train(cfg, AttnBackend::Dense, &mask, 8).unwrap();
        let planned = train(
            cfg,
            AttnBackend::Planned {
                num_devices: 2,
                block_size: 8,
            },
            &mask,
            8,
        )
        .unwrap();
        for (a, b) in dense.iter().zip(&planned) {
            assert!((a - b).abs() < 5e-3 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn synthetic_tokens_deterministic() {
        let a = synthetic_tokens(64, 100, 1);
        let b = synthetic_tokens(64, 100, 1);
        assert_eq!(a, b);
        let c = synthetic_tokens(64, 100, 2);
        assert_ne!(a, c);
        assert!(a.iter().all(|&t| t < 64));
    }
}
