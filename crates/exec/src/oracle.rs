//! Bitwise equivalence oracles between execution plans.
//!
//! The optimizer passes (`dcp_sched::passes`) promise to preserve merged
//! outputs *bitwise* — not merely within tolerance. These helpers execute
//! two plans over the same deterministic random batch and compare every
//! final output and gradient for exact equality, giving the pass pipeline
//! (and CI's `plan_gate`) a black-box oracle that does not trust the
//! passes' own reasoning.

use std::collections::HashMap;

use dcp_blocks::{BatchLayout, TokenBlockId};
use dcp_sched::{ExecutionPlan, Placement};
use dcp_types::DcpResult;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::executor::{execute_backward, execute_forward, BatchData, BlockGrads, BlockOut};

/// Exact equality of two forward result maps (same blocks, same `O` and
/// `lse` bit patterns).
pub fn forward_outputs_identical(
    a: &HashMap<TokenBlockId, BlockOut>,
    b: &HashMap<TokenBlockId, BlockOut>,
) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|(tb, out)| b.get(tb).is_some_and(|o| o.o == out.o && o.lse == out.lse))
}

/// Exact equality of two gradient maps.
pub fn grads_identical(
    a: &HashMap<TokenBlockId, BlockGrads>,
    b: &HashMap<TokenBlockId, BlockGrads>,
) -> bool {
    a.len() == b.len() && a.iter().all(|(tb, g)| b.get(tb) == Some(g))
}

/// Deterministic per-block output gradients for backward runs (the same
/// shape contract as the numerics tests).
pub fn random_output_grads(layout: &BatchLayout, seed: u64) -> HashMap<TokenBlockId, Vec<f32>> {
    let (qh, _) = BatchData::head_counts(layout);
    let dim = layout.attn.head_dim as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    layout
        .token_blocks
        .iter()
        .enumerate()
        .map(|(i, tb)| {
            let v: Vec<f32> = (0..tb.len as usize * qh * dim)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            (TokenBlockId(i as u32), v)
        })
        .collect()
}

/// Executes both plans (forward and backward) over the same seeded batch and
/// reports whether every merged output and gradient is bitwise identical.
///
/// The two plans may use different placements (e.g. an optimized rewrite vs.
/// the original, or two fallback tiers): only the final per-token-block
/// values are compared. Note that different placements generally reduce
/// partials in different orders and will *not* match bitwise — this oracle's
/// contract is for rewrites of the *same* placement, where the passes
/// preserve reduction order.
///
/// # Errors
///
/// Propagates any executor failure (illegal stream, deadlock) from either
/// plan.
pub fn plans_equivalent(
    layout: &BatchLayout,
    placement_a: &Placement,
    plan_a: &ExecutionPlan,
    placement_b: &Placement,
    plan_b: &ExecutionPlan,
    seed: u64,
) -> DcpResult<bool> {
    let data = BatchData::random(layout, seed);
    let out_a = execute_forward(layout, placement_a, plan_a, &data)?;
    let out_b = execute_forward(layout, placement_b, plan_b, &data)?;
    if !forward_outputs_identical(&out_a, &out_b) {
        return Ok(false);
    }
    let d_o = random_output_grads(layout, seed.wrapping_add(1));
    let g_a = execute_backward(layout, placement_a, plan_a, &data, &out_a, &d_o)?;
    let g_b = execute_backward(layout, placement_b, plan_b, &data, &out_b, &d_o)?;
    Ok(grads_identical(&g_a, &g_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_blocks::BlockConfig;
    use dcp_mask::MaskSpec;
    use dcp_sched::{build_plan, PassConfig, PassManager, ScheduleConfig};
    use dcp_types::AttnSpec;

    fn case() -> (BatchLayout, Placement, ExecutionPlan) {
        let l = BatchLayout::build(
            AttnSpec::paper_micro(),
            BlockConfig {
                block_size: 256,
                head_blocks: 1,
            },
            &[(2048, MaskSpec::Causal)],
        )
        .unwrap();
        let n = 4;
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.kv_block.0 as usize])
            .collect();
        let p = Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        };
        let plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        (l, p, plan)
    }

    #[test]
    fn plan_is_equivalent_to_itself() {
        let (l, p, plan) = case();
        assert!(plans_equivalent(&l, &p, &plan, &p, &plan, 7).unwrap());
    }

    #[test]
    fn optimized_plan_is_bitwise_equivalent() {
        let (l, p, plan) = case();
        let mut opt = plan.clone();
        let pm = PassManager::new(PassConfig::optimize());
        let outcomes = pm.run_plan(&l, &p, &mut opt);
        assert!(
            outcomes.iter().any(|o| o.changed()),
            "fixture must give the passes something to rewrite"
        );
        assert!(plans_equivalent(&l, &p, &plan, &p, &opt, 7).unwrap());
    }

    #[test]
    fn different_data_is_detected() {
        let (l, p, plan) = case();
        let data_a = BatchData::random(&l, 1);
        let data_b = BatchData::random(&l, 2);
        let out_a = execute_forward(&l, &p, &plan, &data_a).unwrap();
        let out_b = execute_forward(&l, &p, &plan, &data_b).unwrap();
        assert!(!forward_outputs_identical(&out_a, &out_b));
    }
}
