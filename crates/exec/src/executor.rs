//! A cooperative multi-device interpreter for execution plans.
//!
//! Each plan device is simulated as a state machine stepping through its
//! instruction stream; devices are driven round-robin, blocking on
//! `CommWait` until the matching data has been deposited. Transfers move
//! through a mailbox keyed by (operation, payload):
//!
//! - *input* payloads (Q, KV, dO) are deposited when the **receiver**
//!   launches the operation (model inputs exist from the start of the phase,
//!   matching the scheduler's eager-send assumption);
//! - *partial* payloads (O/dQ/dKV) are deposited when the **producer**
//!   launches, i.e. after it finishes computing.
//!
//! Crucially, a device may only read block data it **owns** or that
//! **arrived** through a waited operation. A plan that forgets a transfer
//! fails with [`DcpError::InvalidPlan`] rather than silently producing
//! correct-looking results — executing a plan is itself a verification.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use dcp_blocks::{BatchLayout, TokenBlockId};
use dcp_obs::{Event, ObsSink, Phase as ObsPhase, Source as ObsSource, NOOP};
use dcp_sched::{ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan, Placement};
use dcp_types::{DcpError, DcpResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::kernels::{
    attn_block_bwd, attn_block_fwd, merge_outputs, BlockAcc, BlockArgs, BlockBwdArgs,
};

/// Per-token-block input tensors of one batch.
///
/// Block `t` holds `q: [len, qh, dim]`, `k`/`v`: `[len, kvh, dim]` where
/// `qh`/`kvh` are the per-head-group head counts of the layout.
#[derive(Debug, Clone)]
pub struct BatchData {
    /// Q slices, indexed by token block.
    pub q: Vec<Vec<f32>>,
    /// K slices.
    pub k: Vec<Vec<f32>>,
    /// V slices.
    pub v: Vec<Vec<f32>>,
}

impl BatchData {
    /// Per-head-group (query, kv) head counts of `layout`.
    pub fn head_counts(layout: &BatchLayout) -> (usize, usize) {
        (
            (layout.attn.q_heads / layout.config.head_blocks) as usize,
            (layout.attn.kv_heads / layout.config.head_blocks) as usize,
        )
    }

    /// Random input data for every token block (token blocks tile the batch
    /// disjointly, so independent blocks form a coherent batch).
    pub fn random(layout: &BatchLayout, seed: u64) -> Self {
        let (qh, kvh) = Self::head_counts(layout);
        let dim = layout.attn.head_dim as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = |n: usize| -> Vec<f32> { (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect() };
        let mut q = Vec::new();
        let mut k = Vec::new();
        let mut v = Vec::new();
        for tb in &layout.token_blocks {
            let len = tb.len as usize;
            q.push(gen(len * qh * dim));
            k.push(gen(len * kvh * dim));
            v.push(gen(len * kvh * dim));
        }
        BatchData { q, k, v }
    }

    /// Assembles the full `[len, heads, dim]` tensors of sequence `seq`
    /// from its blocks (all head groups), for comparison against the dense
    /// reference. Returns `(q, k, v)`.
    pub fn assemble_sequence(
        &self,
        layout: &BatchLayout,
        seq: u32,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let (qh, kvh) = Self::head_counts(layout);
        let dim = layout.attn.head_dim as usize;
        let hb = layout.config.head_blocks as usize;
        let len = layout.seq_lens[seq as usize] as usize;
        let total_qh = qh * hb;
        let total_kvh = kvh * hb;
        let mut q = vec![0.0f32; len * total_qh * dim];
        let mut k = vec![0.0f32; len * total_kvh * dim];
        let mut v = vec![0.0f32; len * total_kvh * dim];
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            if tb.seq != seq {
                continue;
            }
            let h0q = tb.head_block as usize * qh;
            let h0kv = tb.head_block as usize * kvh;
            for t in 0..tb.len as usize {
                let abs = tb.start as usize + t;
                for h in 0..qh {
                    for d in 0..dim {
                        q[(abs * total_qh + h0q + h) * dim + d] = self.q[i][(t * qh + h) * dim + d];
                    }
                }
                for h in 0..kvh {
                    for d in 0..dim {
                        k[(abs * total_kvh + h0kv + h) * dim + d] =
                            self.k[i][(t * kvh + h) * dim + d];
                        v[(abs * total_kvh + h0kv + h) * dim + d] =
                            self.v[i][(t * kvh + h) * dim + d];
                    }
                }
            }
        }
        (q, k, v)
    }
}

/// Final attention output of one token block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockOut {
    /// Normalized output, `[len, qh, dim]`.
    pub o: Vec<f32>,
    /// Log-sum-exp, `[len * qh]`.
    pub lse: Vec<f32>,
}

/// Gradients of one token block's inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGrads {
    /// `[len, qh, dim]`.
    pub dq: Vec<f32>,
    /// `[len, kvh, dim]`.
    pub dk: Vec<f32>,
    /// `[len, kvh, dim]`.
    pub dv: Vec<f32>,
}

/// Data moving through the mailbox.
#[derive(Debug, Clone)]
enum Data {
    Q(Vec<f32>),
    Kv(Vec<f32>, Vec<f32>),
    /// dO plus the forward O and lse of the same rows (the paper's backward
    /// kernels need O and the softmax statistics alongside dO).
    OutGrad {
        d_o: Vec<f32>,
        o: Vec<f32>,
        lse: Vec<f32>,
    },
    PartialO {
        o: Vec<f32>,
        lse: Vec<f32>,
    },
    PartialDq(Vec<f32>),
    PartialDkv(Vec<f32>, Vec<f32>),
    /// A *raw* (un-finalized) flash-attention accumulator, salvaged from a
    /// failing device so its replacement can keep folding blocks into it.
    /// Shipping the finalized `(O, lse)` instead would not be bitwise equal:
    /// finalize-then-merge and continued raw accumulation round differently.
    Acc(BlockAcc),
}

/// Observability context for an executor call: the sink plus the iteration
/// index stamped onto every emitted event. [`ExecObs::disabled`] is the
/// zero-overhead default used by the plain entry points.
pub struct ExecObs<'a> {
    /// Destination sink.
    pub sink: &'a dyn ObsSink,
    /// Iteration / batch index, when known.
    pub iter: Option<u64>,
}

impl<'a> ExecObs<'a> {
    /// Wraps a sink with no iteration index.
    pub fn new(sink: &'a dyn ObsSink) -> Self {
        ExecObs { sink, iter: None }
    }

    /// Stamps `iter` onto every event (builder style).
    pub fn with_iter(mut self, iter: u64) -> Self {
        self.iter = Some(iter);
        self
    }

    fn stamp(&self, e: Event) -> Event {
        match self.iter {
            Some(i) => e.with_iter(i),
            None => e,
        }
    }
}

impl ExecObs<'static> {
    /// The no-op context: a single disabled-branch per instruction.
    pub fn disabled() -> Self {
        ExecObs {
            sink: &NOOP,
            iter: None,
        }
    }
}

/// Shared interpreter scaffolding for one phase.
struct Interp<'a> {
    phase: &'a PhasePlan,
    mailbox: HashMap<(u32, Payload), Data>,
    /// Per device: payloads that have arrived (moved out of the mailbox).
    avail: Vec<HashMap<Payload, Data>>,
    /// Per device instruction pointer.
    ip: Vec<usize>,
    /// Observability context (inert when the sink is disabled).
    obs: &'a ExecObs<'a>,
    obs_phase: ObsPhase,
    /// Time origin shared by every span of this phase.
    t0: Instant,
    /// Per device: divisions completed so far (an `Attn`/`AttnBwd`
    /// instruction closes a division).
    division: Vec<u32>,
    /// Per device: when the device first blocked on its pending `CommWait`,
    /// so the eventual `comm_wait` span covers the whole blocked interval.
    wait_since: Vec<Option<Instant>>,
}

impl<'a> Interp<'a> {
    fn new(
        placement: &Placement,
        phase: &'a PhasePlan,
        obs: &'a ExecObs<'a>,
        obs_phase: ObsPhase,
    ) -> Self {
        let n = placement.num_devices as usize;
        Interp {
            phase,
            mailbox: HashMap::new(),
            avail: vec![HashMap::new(); n],
            ip: vec![0; n],
            obs,
            obs_phase,
            t0: Instant::now(),
            division: vec![0; n],
            wait_since: vec![None; n],
        }
    }

    /// Runs the round-robin loop; `step` executes one instruction and
    /// returns `Ok(true)` on progress, `Ok(false)` when blocked.
    ///
    /// When observability is enabled, every completed instruction emits one
    /// span from this (serial) loop. The round-robin order depends only on
    /// plan structure and mailbox state — rayon parallelism stays inside an
    /// instruction — so the emitted stream is deterministic across thread
    /// counts.
    fn run(
        &mut self,
        mut step: impl FnMut(&mut Self, u32, &Instr) -> DcpResult<bool>,
    ) -> DcpResult<()> {
        let n = self.avail.len();
        let enabled = self.obs.sink.enabled();
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for d in 0..n {
                loop {
                    let idx = self.ip[d];
                    let Some(ins) = self.phase.devices[d].instrs.get(idx) else {
                        break;
                    };
                    all_done = false;
                    let ins = ins.clone();
                    let t_start = if enabled { Some(Instant::now()) } else { None };
                    if step(self, d as u32, &ins)? {
                        if let Some(t) = t_start {
                            self.emit(d as u32, &ins, t);
                        }
                        self.ip[d] += 1;
                        progressed = true;
                    } else {
                        if enabled && self.wait_since[d].is_none() {
                            self.wait_since[d] = t_start;
                        }
                        break;
                    }
                }
            }
            if all_done {
                return Ok(());
            }
            if !progressed {
                return Err(DcpError::invalid_plan(
                    "interpreter deadlock: no device can make progress",
                ));
            }
        }
    }

    /// Emits the span for one completed instruction: per-instruction-class
    /// name, per-division index, and the bytes/flops payload.
    fn emit(&mut self, dev: u32, ins: &Instr, t_start: Instant) {
        let d = dev as usize;
        let base = Event::span(ObsSource::Executor, "")
            .with_device(dev)
            .with_phase(self.obs_phase);
        let (mut ev, started) = match ins {
            Instr::CommLaunch(cid) => {
                let mut e = base;
                e.name = "comm_launch".into();
                (
                    e.with_division(self.division[d])
                        .with_comm(cid.0)
                        .with_bytes(self.phase.comms[cid.0 as usize].bytes()),
                    t_start,
                )
            }
            Instr::CommWait(cid) => {
                // The span covers the whole blocked interval, not just the
                // final successful poll.
                let began = self.wait_since[d].take().unwrap_or(t_start);
                let mut e = base;
                e.name = "comm_wait".into();
                (
                    e.with_division(self.division[d])
                        .with_comm(cid.0)
                        .with_bytes(self.phase.comms[cid.0 as usize].bytes_into(dev)),
                    began,
                )
            }
            Instr::Attn { items, flops } => {
                let div = self.division[d];
                self.division[d] += 1;
                let mut e = base;
                e.name = "attn".into();
                (
                    e.with_division(div)
                        .with_flops(*flops)
                        .with_value(items.len() as f64),
                    t_start,
                )
            }
            Instr::AttnBwd { items, flops } => {
                let div = self.division[d];
                self.division[d] += 1;
                let mut e = base;
                e.name = "attn_bwd".into();
                (
                    e.with_division(div)
                        .with_flops(*flops)
                        .with_value(items.len() as f64),
                    t_start,
                )
            }
            Instr::Reduce { items, bytes } => {
                let mut e = base;
                e.name = "reduce".into();
                (
                    e.with_division(self.division[d].saturating_sub(1))
                        .with_bytes(*bytes)
                        .with_value(items.len() as f64),
                    t_start,
                )
            }
            Instr::Copy { bytes } => {
                let mut e = base;
                e.name = "copy".into();
                (
                    e.with_division(self.division[d].saturating_sub(1))
                        .with_bytes(*bytes),
                    t_start,
                )
            }
        };
        ev = ev.with_time(
            (started - self.t0).as_secs_f64(),
            started.elapsed().as_secs_f64(),
        );
        self.obs.sink.record(self.obs.stamp(ev));
    }

    /// Per-device peak planned buffer gauges for this phase.
    fn emit_buffer_gauges(&self) {
        if !self.obs.sink.enabled() {
            return;
        }
        for ds in &self.phase.devices {
            self.obs.sink.record(
                self.obs.stamp(
                    Event::gauge(
                        ObsSource::Executor,
                        "peak_buffer_bytes",
                        ds.buffer.peak_bytes() as f64,
                    )
                    .with_device(ds.device)
                    .with_phase(self.obs_phase),
                ),
            );
        }
    }

    /// Handles `CommWait`: returns false (blocked) if data is missing.
    fn try_wait(&mut self, dev: u32, cid: u32) -> bool {
        let op = &self.phase.comms[cid as usize];
        let incoming: Vec<Payload> = op
            .transfers
            .iter()
            .filter(|t| t.to == dev)
            .map(|t| t.payload)
            .collect();
        if incoming
            .iter()
            .any(|p| !self.mailbox.contains_key(&(cid, *p)))
        {
            return false;
        }
        for p in incoming {
            let data = self.mailbox.remove(&(cid, p)).expect("checked present");
            self.avail[dev as usize].insert(p, data);
        }
        true
    }
}

/// Executes the forward phase of `plan`, returning the final `(O, lse)` of
/// every token block (keyed by id).
///
/// # Errors
///
/// Returns [`DcpError::InvalidPlan`] if the plan reads data that was never
/// communicated, deadlocks, or references unknown blocks.
pub fn execute_forward(
    layout: &BatchLayout,
    placement: &Placement,
    plan: &ExecutionPlan,
    data: &BatchData,
) -> DcpResult<HashMap<TokenBlockId, BlockOut>> {
    execute_forward_obs(layout, placement, plan, data, &ExecObs::disabled())
}

/// [`execute_forward`] with observability: emits one span per completed
/// instruction (`attn` / `reduce` / `copy` / `comm_launch` / `comm_wait`,
/// with per-division indices and bytes/flops payloads) plus per-device
/// `peak_buffer_bytes` gauges. With [`ExecObs::disabled`] the overhead is a
/// single branch per instruction.
pub fn execute_forward_obs(
    layout: &BatchLayout,
    placement: &Placement,
    plan: &ExecutionPlan,
    data: &BatchData,
    obs: &ExecObs<'_>,
) -> DcpResult<HashMap<TokenBlockId, BlockOut>> {
    placement.validate(layout)?;
    let (qh, kvh) = BatchData::head_counts(layout);
    let dim = layout.attn.head_dim as usize;
    let scale = 1.0 / (dim as f32).sqrt();
    let n = placement.num_devices as usize;

    let mut accs: Vec<HashMap<TokenBlockId, BlockAcc>> = vec![HashMap::new(); n];
    let mut finals: HashMap<TokenBlockId, BlockOut> = HashMap::new();

    let mut interp = Interp::new(placement, &plan.fwd, obs, ObsPhase::Fwd);
    interp.run(|it, dev, ins| {
        match ins {
            Instr::CommLaunch(cid) => {
                let op = &it.phase.comms[cid.0 as usize];
                for tr in &op.transfers {
                    let tb = tr.payload.token_block();
                    match tr.payload {
                        Payload::Q(_) if tr.to == dev => {
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::Q(data.q[tb.0 as usize].clone()),
                            );
                        }
                        Payload::Kv(_) if tr.to == dev => {
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::Kv(
                                    data.k[tb.0 as usize].clone(),
                                    data.v[tb.0 as usize].clone(),
                                ),
                            );
                        }
                        Payload::PartialO(_, producer) if tr.from == dev => {
                            debug_assert_eq!(producer, dev);
                            let acc = accs[dev as usize].get(&tb).ok_or_else(|| {
                                DcpError::invalid_plan(format!(
                                    "device {dev} sends partial O for {tb:?} it never computed"
                                ))
                            })?;
                            let (o, lse) = acc.finalize();
                            it.mailbox
                                .insert((cid.0, tr.payload), Data::PartialO { o, lse });
                        }
                        _ => {}
                    }
                }
                Ok(true)
            }
            Instr::CommWait(cid) => Ok(it.try_wait(dev, cid.0)),
            Instr::Attn { items, .. } => {
                // Hot path: resolve every item's inputs serially (so
                // under-communication errors surface in item order), compute
                // each computation block's partial accumulator on the rayon
                // pool, then fold the partials into the per-Q-block state in
                // item order. The fold order is fixed by the plan, never by
                // the scheduler, so results are bitwise identical at every
                // thread count (RAYON_NUM_THREADS=1 degenerates to the old
                // serial loop).
                let avail = &it.avail[dev as usize];
                let mut work: Vec<(TokenBlockId, BlockArgs<'_>)> = Vec::with_capacity(items.len());
                for &c in items {
                    let cb = layout.comp_blocks[c.0 as usize];
                    let qb = cb.q_block;
                    let kb = cb.kv_block;
                    let q_owned = placement.token_dev(qb) == dev;
                    let kv_owned = placement.token_dev(kb) == dev;
                    let qdata: &[f32] = if q_owned {
                        &data.q[qb.0 as usize]
                    } else {
                        match avail.get(&Payload::Q(qb)) {
                            Some(Data::Q(v)) => v,
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} computes {c:?} without Q({qb:?})"
                                )))
                            }
                        }
                    };
                    let (kdata, vdata): (&[f32], &[f32]) = if kv_owned {
                        (&data.k[kb.0 as usize], &data.v[kb.0 as usize])
                    } else {
                        match avail.get(&Payload::Kv(kb)) {
                            Some(Data::Kv(k, v)) => (k, v),
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} computes {c:?} without KV({kb:?})"
                                )))
                            }
                        }
                    };
                    let qtb = layout.token_blocks[qb.0 as usize];
                    let ktb = layout.token_blocks[kb.0 as usize];
                    work.push((
                        qb,
                        BlockArgs {
                            q: qdata,
                            k: kdata,
                            v: vdata,
                            qh,
                            kvh,
                            dim,
                            q_len: qtb.len as usize,
                            kv_len: ktb.len as usize,
                            q_start: qtb.start,
                            kv_start: ktb.start,
                            mask: &layout.masks[qtb.seq as usize],
                            scale,
                        },
                    ));
                }
                let parts: Vec<(TokenBlockId, BlockAcc)> = work
                    .into_par_iter()
                    .map(|(qb, args)| {
                        let mut acc = BlockAcc::new(args.q_len, args.qh, args.dim);
                        attn_block_fwd(&mut acc, args);
                        (qb, acc)
                    })
                    .collect();
                for (qb, part) in parts {
                    match accs[dev as usize].entry(qb) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut().merge(&part),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(part);
                        }
                    }
                }
                Ok(true)
            }
            Instr::Reduce { items, .. } => {
                for item in items {
                    if item.kind != PayloadKind::PartialO {
                        return Err(DcpError::invalid_plan(
                            "forward reduce with non-O payload kind",
                        ));
                    }
                    let tb = item.target;
                    // Start from the device's own partial (if it computed
                    // locally for this block).
                    let mut merged: Option<(Vec<f32>, Vec<f32>)> =
                        accs[dev as usize].get(&tb).map(BlockAcc::finalize);
                    for &src in &item.sources {
                        let p = Payload::PartialO(tb, src);
                        let (po, plse) = match it.avail[dev as usize].get(&p) {
                            Some(Data::PartialO { o, lse }) => (o.clone(), lse.clone()),
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} reduces {tb:?} without partial from {src}"
                                )))
                            }
                        };
                        merged = Some(match merged {
                            None => (po, plse),
                            Some((o, lse)) => merge_outputs(&o, &lse, &po, &plse, dim),
                        });
                    }
                    let (o, lse) = merged.expect("at least one source");
                    finals.insert(tb, BlockOut { o, lse });
                }
                Ok(true)
            }
            Instr::AttnBwd { .. } => Err(DcpError::invalid_plan("backward instr in forward phase")),
            Instr::Copy { .. } => Ok(true),
        }
    })?;
    interp.emit_buffer_gauges();

    // Owned blocks whose outputs were computed entirely locally.
    for (i, _) in layout.token_blocks.iter().enumerate() {
        let tb = TokenBlockId(i as u32);
        if finals.contains_key(&tb) {
            continue;
        }
        let owner = placement.token_dev(tb) as usize;
        let out = match accs[owner].get(&tb) {
            Some(acc) => {
                let (o, lse) = acc.finalize();
                BlockOut { o, lse }
            }
            None => {
                // No computation targets this block (possible only when the
                // mask has no pairs in its rows).
                let len = layout.token_blocks[i].len as usize;
                BlockOut {
                    o: vec![0.0; len * qh * dim],
                    lse: vec![f32::NEG_INFINITY; len * qh],
                }
            }
        };
        finals.insert(tb, out);
    }
    Ok(finals)
}

/// Context for executing a recovery *patch plan*: a phase in which one or
/// more dead logical streams stop at their execution frontiers, ship their
/// raw partial accumulators to replacement shards over dedicated salvage
/// comm ops, and the shards finish the remaining computation and ownership
/// duties under the original comm ids.
#[derive(Debug, Clone, Default)]
pub struct SalvageCtx {
    /// Dead logical streams whose accumulators are salvaged: the failed
    /// physical rank(s) plus any recovery-shard streams they were hosting
    /// when they died (cascading failures compose patches, so more than one
    /// stream can be dead at once).
    pub failed: std::collections::HashSet<u32>,
    /// Comm ids (indices into the phase's op table) carrying raw
    /// accumulators from dead streams to their replacement shards.
    pub salvage_comms: std::collections::HashSet<u32>,
    /// For each forward partial a dead stream still owed — keyed by
    /// `(token block, original producer)` since two dead streams may owe
    /// partials for the same block — the shard that now finishes and
    /// deposits it (under the original comm id, with the payload's producer
    /// field still naming the dead stream).
    pub producer_of: HashMap<(TokenBlockId, u32), u32>,
    /// Same for outstanding backward dQ partials.
    pub producer_of_dq: HashMap<(TokenBlockId, u32), u32>,
    /// Same for outstanding backward dKV partials.
    pub producer_of_dkv: HashMap<(TokenBlockId, u32), u32>,
    /// Token blocks the patch re-owns away from dead streams. A dead stream
    /// still holds their data until evacuation completes, so its truncated
    /// prefix may keep reading them directly.
    pub reowned: std::collections::HashSet<TokenBlockId>,
}

/// Executes the forward phase of a recovery patch plan (see [`SalvageCtx`]).
///
/// Differences from [`execute_forward_obs`]:
///
/// - a `CommLaunch` on a salvage op deposits the failed device's **raw**
///   [`BlockAcc`] instead of a finalized partial;
/// - a `CommWait` on a salvage op installs the received accumulator as the
///   waiting shard's starting state for that Q block, so subsequent `Attn`
///   items fold into it exactly where the failed device left off;
/// - partial-output deposits under original comm ids are honored when the
///   launching device is the shard [`SalvageCtx::producer_of`] names, even
///   though the transfer's `from`/producer still name the failed device.
///
/// Survivor streams execute verbatim, so a patch execution's outputs are
/// bitwise identical to the unfaulted run's.
pub fn execute_forward_recovery(
    layout: &BatchLayout,
    placement: &Placement,
    phase: &PhasePlan,
    data: &BatchData,
    ctx: &SalvageCtx,
    obs: &ExecObs<'_>,
) -> DcpResult<HashMap<TokenBlockId, BlockOut>> {
    placement.validate(layout)?;
    let (qh, kvh) = BatchData::head_counts(layout);
    let dim = layout.attn.head_dim as usize;
    let scale = 1.0 / (dim as f32).sqrt();
    let n = placement.num_devices as usize;

    let mut accs: Vec<HashMap<TokenBlockId, BlockAcc>> = vec![HashMap::new(); n];
    let mut finals: HashMap<TokenBlockId, BlockOut> = HashMap::new();

    let mut interp = Interp::new(placement, phase, obs, ObsPhase::Fwd);
    interp.run(|it, dev, ins| {
        match ins {
            Instr::CommLaunch(cid) => {
                let op = &it.phase.comms[cid.0 as usize];
                for tr in &op.transfers {
                    let tb = tr.payload.token_block();
                    match tr.payload {
                        Payload::Q(_) if tr.to == dev => {
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::Q(data.q[tb.0 as usize].clone()),
                            );
                        }
                        Payload::Kv(_) if tr.to == dev => {
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::Kv(
                                    data.k[tb.0 as usize].clone(),
                                    data.v[tb.0 as usize].clone(),
                                ),
                            );
                        }
                        Payload::PartialO(_, producer)
                            if tr.from == dev
                                || (ctx.failed.contains(&tr.from)
                                    && ctx.producer_of.get(&(tb, producer)) == Some(&dev)) =>
                        {
                            debug_assert!(producer == dev || ctx.failed.contains(&producer));
                            let acc = accs[dev as usize].get(&tb).ok_or_else(|| {
                                DcpError::invalid_plan(format!(
                                    "device {dev} sends partial O for {tb:?} it never computed"
                                ))
                            })?;
                            if ctx.salvage_comms.contains(&cid.0) {
                                it.mailbox
                                    .insert((cid.0, tr.payload), Data::Acc(acc.clone()));
                            } else {
                                let (o, lse) = acc.finalize();
                                it.mailbox
                                    .insert((cid.0, tr.payload), Data::PartialO { o, lse });
                            }
                        }
                        _ => {}
                    }
                }
                Ok(true)
            }
            Instr::CommWait(cid) => {
                if !it.try_wait(dev, cid.0) {
                    return Ok(false);
                }
                if ctx.salvage_comms.contains(&cid.0) {
                    // Install salvaged accumulators as this shard's starting
                    // state. The schedule waits on salvage ops before any
                    // Attn touches these Q blocks, so the entry is fresh.
                    let op = &it.phase.comms[cid.0 as usize];
                    for tr in op.transfers.iter().filter(|t| t.to == dev) {
                        let tb = tr.payload.token_block();
                        if let Some(Data::Acc(acc)) = it.avail[dev as usize].remove(&tr.payload) {
                            if accs[dev as usize].insert(tb, acc).is_some() {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} salvaged {tb:?} it already accumulates"
                                )));
                            }
                        }
                    }
                }
                Ok(true)
            }
            Instr::Attn { items, .. } => {
                let avail = &it.avail[dev as usize];
                let mut work: Vec<(TokenBlockId, BlockArgs<'_>)> = Vec::with_capacity(items.len());
                for &c in items {
                    let cb = layout.comp_blocks[c.0 as usize];
                    let qb = cb.q_block;
                    let kb = cb.kv_block;
                    let local = |tb: TokenBlockId| {
                        placement.token_dev(tb) == dev
                            || (ctx.failed.contains(&dev) && ctx.reowned.contains(&tb))
                    };
                    let qdata: &[f32] = if local(qb) {
                        &data.q[qb.0 as usize]
                    } else {
                        match avail.get(&Payload::Q(qb)) {
                            Some(Data::Q(v)) => v,
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} computes {c:?} without Q({qb:?})"
                                )))
                            }
                        }
                    };
                    let (kdata, vdata): (&[f32], &[f32]) = if local(kb) {
                        (&data.k[kb.0 as usize], &data.v[kb.0 as usize])
                    } else {
                        match avail.get(&Payload::Kv(kb)) {
                            Some(Data::Kv(k, v)) => (k, v),
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} computes {c:?} without KV({kb:?})"
                                )))
                            }
                        }
                    };
                    let qtb = layout.token_blocks[qb.0 as usize];
                    let ktb = layout.token_blocks[kb.0 as usize];
                    work.push((
                        qb,
                        BlockArgs {
                            q: qdata,
                            k: kdata,
                            v: vdata,
                            qh,
                            kvh,
                            dim,
                            q_len: qtb.len as usize,
                            kv_len: ktb.len as usize,
                            q_start: qtb.start,
                            kv_start: ktb.start,
                            mask: &layout.masks[qtb.seq as usize],
                            scale,
                        },
                    ));
                }
                let parts: Vec<(TokenBlockId, BlockAcc)> = work
                    .into_par_iter()
                    .map(|(qb, args)| {
                        let mut acc = BlockAcc::new(args.q_len, args.qh, args.dim);
                        attn_block_fwd(&mut acc, args);
                        (qb, acc)
                    })
                    .collect();
                for (qb, part) in parts {
                    match accs[dev as usize].entry(qb) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut().merge(&part),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(part);
                        }
                    }
                }
                Ok(true)
            }
            Instr::Reduce { items, .. } => {
                for item in items {
                    if item.kind != PayloadKind::PartialO {
                        return Err(DcpError::invalid_plan(
                            "forward reduce with non-O payload kind",
                        ));
                    }
                    let tb = item.target;
                    let mut merged: Option<(Vec<f32>, Vec<f32>)> =
                        accs[dev as usize].get(&tb).map(BlockAcc::finalize);
                    for &src in &item.sources {
                        let p = Payload::PartialO(tb, src);
                        let (po, plse) = match it.avail[dev as usize].get(&p) {
                            Some(Data::PartialO { o, lse }) => (o.clone(), lse.clone()),
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} reduces {tb:?} without partial from {src}"
                                )))
                            }
                        };
                        merged = Some(match merged {
                            None => (po, plse),
                            Some((o, lse)) => merge_outputs(&o, &lse, &po, &plse, dim),
                        });
                    }
                    let (o, lse) = merged.expect("at least one source");
                    finals.insert(tb, BlockOut { o, lse });
                }
                Ok(true)
            }
            Instr::AttnBwd { .. } => Err(DcpError::invalid_plan("backward instr in forward phase")),
            Instr::Copy { .. } => Ok(true),
        }
    })?;
    interp.emit_buffer_gauges();

    for (i, _) in layout.token_blocks.iter().enumerate() {
        let tb = TokenBlockId(i as u32);
        if finals.contains_key(&tb) {
            continue;
        }
        let owner = placement.token_dev(tb) as usize;
        let out = match accs[owner].get(&tb) {
            Some(acc) => {
                let (o, lse) = acc.finalize();
                BlockOut { o, lse }
            }
            None => {
                let len = layout.token_blocks[i].len as usize;
                BlockOut {
                    o: vec![0.0; len * qh * dim],
                    lse: vec![f32::NEG_INFINITY; len * qh],
                }
            }
        };
        finals.insert(tb, out);
    }
    Ok(finals)
}

/// Executes the backward phase of `plan`, returning the gradients of every
/// token block. `fwd_out` is the forward result (from [`execute_forward`])
/// and `d_o` the per-block output gradients.
///
/// # Errors
///
/// Returns [`DcpError::InvalidPlan`] on under-communication or deadlock, and
/// [`DcpError::InvalidArgument`] if `d_o` is missing a block.
pub fn execute_backward(
    layout: &BatchLayout,
    placement: &Placement,
    plan: &ExecutionPlan,
    data: &BatchData,
    fwd_out: &HashMap<TokenBlockId, BlockOut>,
    d_o: &HashMap<TokenBlockId, Vec<f32>>,
) -> DcpResult<HashMap<TokenBlockId, BlockGrads>> {
    execute_backward_obs(
        layout,
        placement,
        plan,
        data,
        fwd_out,
        d_o,
        &ExecObs::disabled(),
    )
}

/// [`execute_backward`] with observability — the backward mirror of
/// [`execute_forward_obs`] (`attn_bwd` spans instead of `attn`).
pub fn execute_backward_obs(
    layout: &BatchLayout,
    placement: &Placement,
    plan: &ExecutionPlan,
    data: &BatchData,
    fwd_out: &HashMap<TokenBlockId, BlockOut>,
    d_o: &HashMap<TokenBlockId, Vec<f32>>,
    obs: &ExecObs<'_>,
) -> DcpResult<HashMap<TokenBlockId, BlockGrads>> {
    execute_backward_recovery(
        layout,
        placement,
        &plan.bwd,
        data,
        fwd_out,
        d_o,
        &SalvageCtx::default(),
        obs,
    )
}

/// Executes a backward phase under recovery semantics (see [`SalvageCtx`]) —
/// the backward mirror of [`execute_forward_recovery`]. With the default
/// context this *is* the normal backward executor ([`execute_backward_obs`]
/// delegates here), byte for byte.
///
/// Differences from the clean path, active only under a non-default context:
///
/// - a `CommLaunch` on a salvage op ships a dead stream's **raw** `dQ` /
///   `dKV` running sums (gradient accumulators are plain sums, so the raw
///   state and the partial payload coincide — no finalize step exists);
/// - a `CommWait` on a salvage op installs the received sums as the waiting
///   shard's starting accumulator state, so its residual `AttnBwd` items
///   fold in exactly where the dead stream's reduction frontier left off;
/// - partial deposits under original comm ids are honored when the
///   launching device is the shard [`SalvageCtx::producer_of_dq`] /
///   [`SalvageCtx::producer_of_dkv`] names, even though the transfer's
///   `from`/producer still name the dead stream;
/// - dead streams' truncated prefixes may read re-owned blocks locally.
///
/// # Errors
///
/// Returns [`DcpError::InvalidPlan`] on under-communication or deadlock, and
/// [`DcpError::InvalidArgument`] if `d_o` or `fwd_out` is missing a block.
#[allow(clippy::too_many_arguments)]
pub fn execute_backward_recovery(
    layout: &BatchLayout,
    placement: &Placement,
    phase: &PhasePlan,
    data: &BatchData,
    fwd_out: &HashMap<TokenBlockId, BlockOut>,
    d_o: &HashMap<TokenBlockId, Vec<f32>>,
    ctx: &SalvageCtx,
    obs: &ExecObs<'_>,
) -> DcpResult<HashMap<TokenBlockId, BlockGrads>> {
    placement.validate(layout)?;
    let (qh, kvh) = BatchData::head_counts(layout);
    let dim = layout.attn.head_dim as usize;
    let scale = 1.0 / (dim as f32).sqrt();
    let n = placement.num_devices as usize;
    for i in 0..layout.token_blocks.len() {
        let tb = TokenBlockId(i as u32);
        if !d_o.contains_key(&tb) || !fwd_out.contains_key(&tb) {
            return Err(DcpError::invalid_argument(format!(
                "missing forward output or dO for {tb:?}"
            )));
        }
    }

    // Per device gradient accumulators (dK and dV are kept as a pair).
    type KvGradPair = (Vec<f32>, Vec<f32>);
    let mut dq_acc: Vec<HashMap<TokenBlockId, Vec<f32>>> = vec![HashMap::new(); n];
    let mut dkv_acc: Vec<HashMap<TokenBlockId, KvGradPair>> = vec![HashMap::new(); n];

    let mut interp = Interp::new(placement, phase, obs, ObsPhase::Bwd);
    interp.run(|it, dev, ins| {
        match ins {
            Instr::CommLaunch(cid) => {
                let op = &it.phase.comms[cid.0 as usize];
                for tr in &op.transfers {
                    let tb = tr.payload.token_block();
                    match tr.payload {
                        Payload::Q(_) if tr.to == dev => {
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::Q(data.q[tb.0 as usize].clone()),
                            );
                        }
                        Payload::Kv(_) if tr.to == dev => {
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::Kv(
                                    data.k[tb.0 as usize].clone(),
                                    data.v[tb.0 as usize].clone(),
                                ),
                            );
                        }
                        Payload::DO(_) if tr.to == dev => {
                            let out = &fwd_out[&tb];
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::OutGrad {
                                    d_o: d_o[&tb].clone(),
                                    o: out.o.clone(),
                                    lse: out.lse.clone(),
                                },
                            );
                        }
                        Payload::PartialDq(_, producer)
                            if tr.from == dev
                                || (ctx.failed.contains(&tr.from)
                                    && ctx.producer_of_dq.get(&(tb, producer)) == Some(&dev)) =>
                        {
                            debug_assert!(producer == dev || ctx.failed.contains(&producer));
                            let g = dq_acc[dev as usize].get(&tb).ok_or_else(|| {
                                DcpError::invalid_plan(format!(
                                    "device {dev} sends dQ partial for {tb:?} it never computed"
                                ))
                            })?;
                            it.mailbox
                                .insert((cid.0, tr.payload), Data::PartialDq(g.clone()));
                        }
                        Payload::PartialDkv(_, producer)
                            if tr.from == dev
                                || (ctx.failed.contains(&tr.from)
                                    && ctx.producer_of_dkv.get(&(tb, producer)) == Some(&dev)) =>
                        {
                            debug_assert!(producer == dev || ctx.failed.contains(&producer));
                            let (gk, gv) = dkv_acc[dev as usize].get(&tb).ok_or_else(|| {
                                DcpError::invalid_plan(format!(
                                    "device {dev} sends dKV partial for {tb:?} it never computed"
                                ))
                            })?;
                            it.mailbox.insert(
                                (cid.0, tr.payload),
                                Data::PartialDkv(gk.clone(), gv.clone()),
                            );
                        }
                        _ => {}
                    }
                }
                Ok(true)
            }
            Instr::CommWait(cid) => {
                if !it.try_wait(dev, cid.0) {
                    return Ok(false);
                }
                if ctx.salvage_comms.contains(&cid.0) {
                    // Install salvaged raw sums as this shard's starting
                    // accumulator state. The schedule waits on salvage ops
                    // before any AttnBwd touches these blocks, so the
                    // entries are fresh.
                    let op = &it.phase.comms[cid.0 as usize];
                    for tr in op.transfers.iter().filter(|t| t.to == dev) {
                        let tb = tr.payload.token_block();
                        match it.avail[dev as usize].remove(&tr.payload) {
                            Some(Data::PartialDq(g)) => match dq_acc[dev as usize].entry(tb) {
                                Entry::Occupied(_) => {
                                    return Err(DcpError::invalid_plan(format!(
                                        "device {dev} salvaged dQ {tb:?} it already \
                                             accumulates"
                                    )));
                                }
                                Entry::Vacant(slot) => {
                                    slot.insert(g);
                                }
                            },
                            Some(Data::PartialDkv(gk, gv)) => {
                                match dkv_acc[dev as usize].entry(tb) {
                                    Entry::Occupied(_) => {
                                        return Err(DcpError::invalid_plan(format!(
                                            "device {dev} salvaged dKV {tb:?} it already \
                                             accumulates"
                                        )));
                                    }
                                    Entry::Vacant(slot) => {
                                        slot.insert((gk, gv));
                                    }
                                }
                            }
                            Some(other) => {
                                it.avail[dev as usize].insert(tr.payload, other);
                            }
                            None => {}
                        }
                    }
                }
                Ok(true)
            }
            Instr::AttnBwd { items, .. } => {
                // Mirror of the forward hot path: resolve inputs serially
                // (borrowing instead of the old per-item clones), compute
                // per-item gradient partials on the rayon pool, then add
                // them into the device accumulators in item order. Gradient
                // addition order is fixed by the plan, so results are
                // bitwise identical at every thread count.
                let avail = &it.avail[dev as usize];
                let mut work: Vec<(TokenBlockId, TokenBlockId, BlockBwdArgs<'_>)> =
                    Vec::with_capacity(items.len());
                for &c in items {
                    let cb = layout.comp_blocks[c.0 as usize];
                    let qb = cb.q_block;
                    let kb = cb.kv_block;
                    let local = |tb: TokenBlockId| {
                        placement.token_dev(tb) == dev
                            || (ctx.failed.contains(&dev) && ctx.reowned.contains(&tb))
                    };
                    let q_owned = local(qb);
                    let kv_owned = local(kb);
                    let qtb = layout.token_blocks[qb.0 as usize];
                    let ktb = layout.token_blocks[kb.0 as usize];
                    let qdata: &[f32] = if q_owned {
                        &data.q[qb.0 as usize]
                    } else {
                        match avail.get(&Payload::Q(qb)) {
                            Some(Data::Q(v)) => v,
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} bwd {c:?} without Q({qb:?})"
                                )))
                            }
                        }
                    };
                    let (kdata, vdata): (&[f32], &[f32]) = if kv_owned {
                        (&data.k[kb.0 as usize], &data.v[kb.0 as usize])
                    } else {
                        match avail.get(&Payload::Kv(kb)) {
                            Some(Data::Kv(k, v)) => (k, v),
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} bwd {c:?} without KV({kb:?})"
                                )))
                            }
                        }
                    };
                    let (dob, ob, lseb): (&[f32], &[f32], &[f32]) = if q_owned {
                        let out = &fwd_out[&qb];
                        (&d_o[&qb], &out.o, &out.lse)
                    } else {
                        match avail.get(&Payload::DO(qb)) {
                            Some(Data::OutGrad { d_o, o, lse }) => (d_o, o, lse),
                            _ => {
                                return Err(DcpError::invalid_plan(format!(
                                    "device {dev} bwd {c:?} without dO({qb:?})"
                                )))
                            }
                        }
                    };
                    work.push((
                        qb,
                        kb,
                        BlockBwdArgs {
                            fwd: BlockArgs {
                                q: qdata,
                                k: kdata,
                                v: vdata,
                                qh,
                                kvh,
                                dim,
                                q_len: qtb.len as usize,
                                kv_len: ktb.len as usize,
                                q_start: qtb.start,
                                kv_start: ktb.start,
                                mask: &layout.masks[qtb.seq as usize],
                                scale,
                            },
                            o: ob,
                            lse: lseb,
                            d_o: dob,
                        },
                    ));
                }
                type GradPart = (TokenBlockId, TokenBlockId, Vec<f32>, Vec<f32>, Vec<f32>);
                let parts: Vec<GradPart> = work
                    .into_par_iter()
                    .map(|(qb, kb, args)| {
                        let a = args.fwd;
                        let mut pdq = vec![0.0f32; a.q_len * a.qh * a.dim];
                        let mut pdk = vec![0.0f32; a.kv_len * a.kvh * a.dim];
                        let mut pdv = vec![0.0f32; a.kv_len * a.kvh * a.dim];
                        attn_block_bwd(args, &mut pdq, &mut pdk, &mut pdv);
                        (qb, kb, pdq, pdk, pdv)
                    })
                    .collect();
                for (qb, kb, pdq, pdk, pdv) in parts {
                    let dq = dq_acc[dev as usize]
                        .entry(qb)
                        .or_insert_with(|| vec![0.0; pdq.len()]);
                    for (a, b) in dq.iter_mut().zip(&pdq) {
                        *a += b;
                    }
                    let kv_entry = dkv_acc[dev as usize]
                        .entry(kb)
                        .or_insert_with(|| (vec![0.0; pdk.len()], vec![0.0; pdv.len()]));
                    for (a, b) in kv_entry.0.iter_mut().zip(&pdk) {
                        *a += b;
                    }
                    for (a, b) in kv_entry.1.iter_mut().zip(&pdv) {
                        *a += b;
                    }
                }
                Ok(true)
            }
            Instr::Reduce { items, .. } => {
                for item in items {
                    let tb = item.target;
                    match item.kind {
                        PayloadKind::PartialDq => {
                            let len = layout.token_blocks[tb.0 as usize].len as usize;
                            let acc = dq_acc[dev as usize]
                                .entry(tb)
                                .or_insert_with(|| vec![0.0; len * qh * dim]);
                            for &src in &item.sources {
                                match it.avail[dev as usize].get(&Payload::PartialDq(tb, src)) {
                                    Some(Data::PartialDq(g)) => {
                                        for (a, b) in acc.iter_mut().zip(g) {
                                            *a += b;
                                        }
                                    }
                                    _ => {
                                        return Err(DcpError::invalid_plan(format!(
                                            "missing dQ partial for {tb:?} from {src}"
                                        )))
                                    }
                                }
                            }
                        }
                        PayloadKind::PartialDkv => {
                            let len = layout.token_blocks[tb.0 as usize].len as usize;
                            let acc = dkv_acc[dev as usize].entry(tb).or_insert_with(|| {
                                (vec![0.0; len * kvh * dim], vec![0.0; len * kvh * dim])
                            });
                            for &src in &item.sources {
                                match it.avail[dev as usize].get(&Payload::PartialDkv(tb, src)) {
                                    Some(Data::PartialDkv(gk, gv)) => {
                                        for (a, b) in acc.0.iter_mut().zip(gk) {
                                            *a += b;
                                        }
                                        for (a, b) in acc.1.iter_mut().zip(gv) {
                                            *a += b;
                                        }
                                    }
                                    _ => {
                                        return Err(DcpError::invalid_plan(format!(
                                            "missing dKV partial for {tb:?} from {src}"
                                        )))
                                    }
                                }
                            }
                        }
                        _ => {
                            return Err(DcpError::invalid_plan(
                                "backward reduce with forward payload kind",
                            ))
                        }
                    }
                }
                Ok(true)
            }
            Instr::Attn { .. } => Err(DcpError::invalid_plan("forward instr in backward phase")),
            Instr::Copy { .. } => Ok(true),
        }
    })?;
    interp.emit_buffer_gauges();

    // Assemble owned gradients.
    let mut grads = HashMap::new();
    for (i, tb) in layout.token_blocks.iter().enumerate() {
        let id = TokenBlockId(i as u32);
        let owner = placement.token_dev(id) as usize;
        let len = tb.len as usize;
        let dq = dq_acc[owner]
            .remove(&id)
            .unwrap_or_else(|| vec![0.0; len * qh * dim]);
        let (dk, dv) = dkv_acc[owner]
            .remove(&id)
            .unwrap_or_else(|| (vec![0.0; len * kvh * dim], vec![0.0; len * kvh * dim]));
        grads.insert(id, BlockGrads { dq, dk, dv });
    }
    Ok(grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use dcp_blocks::BlockConfig;
    use dcp_mask::MaskSpec;
    use dcp_sched::{build_plan, ScheduleConfig};
    use dcp_types::AttnSpec;

    fn small_attn() -> AttnSpec {
        AttnSpec::new(4, 2, 8, 2)
    }

    fn build(seqs: &[(u32, MaskSpec)], bs: u32, hb: u32) -> BatchLayout {
        BatchLayout::build(
            small_attn(),
            BlockConfig {
                block_size: bs,
                head_blocks: hb,
            },
            seqs,
        )
        .unwrap()
    }

    fn ring_placement(l: &BatchLayout, n: u32) -> Placement {
        let token_to_dev: Vec<u32> = (0..l.token_blocks.len() as u32).map(|i| i % n).collect();
        let comp_to_dev: Vec<u32> = l
            .comp_blocks
            .iter()
            .map(|c| token_to_dev[c.q_block.0 as usize])
            .collect();
        Placement {
            num_devices: n,
            token_to_dev,
            comp_to_dev,
        }
    }

    /// Compares a plan execution against the dense reference for all
    /// sequences in the layout. Panics with context on mismatch.
    pub(crate) fn check_against_reference(
        l: &BatchLayout,
        p: &Placement,
        tol_fwd: f32,
        tol_bwd: f32,
    ) {
        let plan = build_plan(l, p, &ScheduleConfig::default()).unwrap();
        dcp_sched::schedule::validate_plan(l, p, &plan).unwrap();
        let data = BatchData::random(l, 77);
        let out = execute_forward(l, p, &plan, &data).unwrap();

        let (qh, kvh) = BatchData::head_counts(l);
        let dim = l.attn.head_dim as usize;
        let hb = l.config.head_blocks as usize;

        // dO: random but deterministic.
        let mut d_o = HashMap::new();
        {
            let mut rng = SmallRng::seed_from_u64(123);
            for (i, tb) in l.token_blocks.iter().enumerate() {
                let v: Vec<f32> = (0..tb.len as usize * qh * dim)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                d_o.insert(TokenBlockId(i as u32), v);
            }
        }
        let grads = execute_backward(l, p, &plan, &data, &out, &d_o).unwrap();

        for seq in 0..l.num_seqs() as u32 {
            let (q, k, v) = data.assemble_sequence(l, seq);
            let len = l.seq_lens[seq as usize] as usize;
            let total_qh = qh * hb;
            let total_kvh = kvh * hb;
            let mask = &l.masks[seq as usize];
            let (ro, rlse) = reference::attention(&q, &k, &v, len, total_qh, total_kvh, dim, mask);
            // Assemble dO for the full sequence.
            let mut full_do = vec![0.0f32; len * total_qh * dim];
            for (i, tb) in l.token_blocks.iter().enumerate() {
                if tb.seq != seq {
                    continue;
                }
                let h0 = tb.head_block as usize * qh;
                let blk = &d_o[&TokenBlockId(i as u32)];
                for t in 0..tb.len as usize {
                    for h in 0..qh {
                        for d in 0..dim {
                            full_do[((tb.start as usize + t) * total_qh + h0 + h) * dim + d] =
                                blk[(t * qh + h) * dim + d];
                        }
                    }
                }
            }
            let (rdq, rdk, rdv) = reference::attention_bwd(
                &q, &k, &v, &ro, &rlse, &full_do, len, total_qh, total_kvh, dim, mask,
            );
            // Compare every block slice.
            for (i, tb) in l.token_blocks.iter().enumerate() {
                if tb.seq != seq {
                    continue;
                }
                let id = TokenBlockId(i as u32);
                let got = &out[&id];
                let g = &grads[&id];
                let h0q = tb.head_block as usize * qh;
                let h0kv = tb.head_block as usize * kvh;
                for t in 0..tb.len as usize {
                    let abs = tb.start as usize + t;
                    for h in 0..qh {
                        let rr = (abs * total_qh + h0q + h) * dim;
                        let br = (t * qh + h) * dim;
                        for d in 0..dim {
                            let diff = (got.o[br + d] - ro[rr + d]).abs();
                            assert!(
                                diff < tol_fwd,
                                "seq {seq} block {i} O mismatch {diff} at t={t},h={h},d={d}"
                            );
                            let gdiff = (g.dq[br + d] - rdq[rr + d]).abs();
                            assert!(gdiff < tol_bwd, "seq {seq} block {i} dQ mismatch {gdiff}");
                        }
                        let lse_ref = rlse[abs * total_qh + h0q + h];
                        let lse_got = got.lse[t * qh + h];
                        if lse_ref == f32::NEG_INFINITY {
                            assert_eq!(lse_got, f32::NEG_INFINITY);
                        } else {
                            assert!((lse_got - lse_ref).abs() < tol_fwd);
                        }
                    }
                    for h in 0..kvh {
                        let rr = (abs * total_kvh + h0kv + h) * dim;
                        let br = (t * kvh + h) * dim;
                        for d in 0..dim {
                            assert!(
                                (g.dk[br + d] - rdk[rr + d]).abs() < tol_bwd,
                                "seq {seq} block {i} dK mismatch"
                            );
                            assert!(
                                (g.dv[br + d] - rdv[rr + d]).abs() < tol_bwd,
                                "seq {seq} block {i} dV mismatch"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ring_plan_matches_reference_causal() {
        let l = build(&[(64, MaskSpec::Causal), (32, MaskSpec::Causal)], 16, 1);
        let p = ring_placement(&l, 3);
        check_against_reference(&l, &p, 1e-4, 1e-3);
    }

    #[test]
    fn ring_plan_matches_reference_masks() {
        for spec in [
            MaskSpec::Lambda { sink: 3, window: 9 },
            MaskSpec::SharedQuestion {
                question_len: 20,
                answer_lens: vec![20, 24],
            },
            MaskSpec::CausalBlockwise {
                block: 8,
                window_blocks: 2,
                sink_blocks: 1,
            },
        ] {
            let l = build(&[(64, spec)], 16, 2);
            let p = ring_placement(&l, 4);
            check_against_reference(&l, &p, 1e-4, 1e-3);
        }
    }

    #[test]
    fn single_device_matches_reference() {
        let l = build(&[(48, MaskSpec::Causal)], 16, 1);
        let p = Placement::all_on_zero(&l, 1);
        check_against_reference(&l, &p, 1e-4, 1e-3);
    }

    #[test]
    fn random_placements_match_reference() {
        let mut rng = SmallRng::seed_from_u64(5);
        for trial in 0..5 {
            let l = build(
                &[
                    (40, MaskSpec::Causal),
                    (24, MaskSpec::Lambda { sink: 2, window: 8 }),
                ],
                8,
                1,
            );
            let n = 3u32;
            let token_to_dev: Vec<u32> = (0..l.token_blocks.len())
                .map(|_| rng.gen_range(0..n))
                .collect();
            let comp_to_dev: Vec<u32> = (0..l.comp_blocks.len())
                .map(|_| rng.gen_range(0..n))
                .collect();
            let p = Placement {
                num_devices: n,
                token_to_dev,
                comp_to_dev,
            };
            check_against_reference(&l, &p, 1e-4, 1e-3);
            let _ = trial;
        }
    }

    #[test]
    fn tampered_plan_is_rejected() {
        // Removing a transfer makes the executor fail loudly.
        let l = build(&[(64, MaskSpec::Causal)], 16, 1);
        let p = ring_placement(&l, 2);
        let mut plan = build_plan(&l, &p, &ScheduleConfig::default()).unwrap();
        let data = BatchData::random(&l, 7);
        // Drop all transfers of the first forward comm op.
        if let Some(op) = plan.fwd.comms.first_mut() {
            op.transfers.clear();
        }
        let res = execute_forward(&l, &p, &plan, &data);
        assert!(res.is_err(), "under-communicating plan must fail");
    }
}
