//! Dense reference attention (forward and backward) — the numerical ground
//! truth the blockwise executor is checked against.
//!
//! Layout convention matches [`crate::kernels`]: `[tokens, heads, dim]`
//! row-major, GQA mapping `kv_head = q_head / (q_heads / kv_heads)`.

use dcp_mask::Mask;

/// Dense masked GQA attention forward for one sequence.
///
/// Returns `(O, lse)` with `O: [len, qh, dim]`, `lse: [len * qh]`. Rows with
/// no allowed keys produce zero output and `-inf` lse.
pub fn attention(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    len: usize,
    qh: usize,
    kvh: usize,
    dim: usize,
    mask: &Mask,
) -> (Vec<f32>, Vec<f32>) {
    let scale = 1.0 / (dim as f32).sqrt();
    let group = qh / kvh;
    let mut o = vec![0.0f32; len * qh * dim];
    let mut lse = vec![f32::NEG_INFINITY; len * qh];
    let mut scores = vec![0.0f32; len];
    for t in 0..len {
        let ranges = mask.allowed(t as u32);
        for h in 0..qh {
            let g = h / group;
            let r = t * qh + h;
            let qrow = &q[r * dim..(r + 1) * dim];
            let mut m = f32::NEG_INFINITY;
            let mut any = false;
            for j in 0..len {
                if !ranges.contains(j as u32) {
                    continue;
                }
                any = true;
                let krow = &k[(j * kvh + g) * dim..(j * kvh + g + 1) * dim];
                let mut s = 0.0f32;
                for d in 0..dim {
                    s += qrow[d] * krow[d];
                }
                s *= scale;
                scores[j] = s;
                m = m.max(s);
            }
            if !any {
                continue;
            }
            let mut l = 0.0f32;
            for j in 0..len {
                if ranges.contains(j as u32) {
                    l += (scores[j] - m).exp();
                }
            }
            lse[r] = m + l.ln();
            for j in 0..len {
                if !ranges.contains(j as u32) {
                    continue;
                }
                let p = (scores[j] - m).exp() / l;
                let vrow = &v[(j * kvh + g) * dim..(j * kvh + g + 1) * dim];
                for d in 0..dim {
                    o[r * dim + d] += p * vrow[d];
                }
            }
        }
    }
    (o, lse)
}

/// Dense masked GQA attention backward for one sequence.
///
/// Given the forward inputs, output `o`, `lse` and the output gradient
/// `d_o`, returns `(dQ, dK, dV)` with shapes matching `q`, `k`, `v`.
#[allow(clippy::too_many_arguments)]
pub fn attention_bwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    o: &[f32],
    lse: &[f32],
    d_o: &[f32],
    len: usize,
    qh: usize,
    kvh: usize,
    dim: usize,
    mask: &Mask,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let scale = 1.0 / (dim as f32).sqrt();
    let group = qh / kvh;
    let mut dq = vec![0.0f32; len * qh * dim];
    let mut dk = vec![0.0f32; len * kvh * dim];
    let mut dv = vec![0.0f32; len * kvh * dim];
    for t in 0..len {
        let ranges = mask.allowed(t as u32);
        for h in 0..qh {
            let r = t * qh + h;
            if lse[r] == f32::NEG_INFINITY {
                continue;
            }
            let g = h / group;
            let qrow = &q[r * dim..(r + 1) * dim];
            let orow = &o[r * dim..(r + 1) * dim];
            let dorow = &d_o[r * dim..(r + 1) * dim];
            let mut delta = 0.0f32;
            for d in 0..dim {
                delta += dorow[d] * orow[d];
            }
            for j in 0..len {
                if !ranges.contains(j as u32) {
                    continue;
                }
                let kbase = (j * kvh + g) * dim;
                let krow = &k[kbase..kbase + dim];
                let vrow = &v[kbase..kbase + dim];
                let mut s = 0.0f32;
                for d in 0..dim {
                    s += qrow[d] * krow[d];
                }
                s *= scale;
                let p = (s - lse[r]).exp();
                for d in 0..dim {
                    dv[kbase + d] += p * dorow[d];
                }
                let mut dp = 0.0f32;
                for d in 0..dim {
                    dp += dorow[d] * vrow[d];
                }
                let ds = p * (dp - delta) * scale;
                for d in 0..dim {
                    dq[r * dim + d] += ds * krow[d];
                    dk[kbase + d] += ds * qrow[d];
                }
            }
        }
    }
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_mask::MaskSpec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn randv(n: usize, rng: &mut SmallRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn softmax_rows_sum_to_one_via_uniform_v() {
        // With V = all-ones, O must be all-ones for every unmasked row.
        let (len, qh, kvh, dim) = (7usize, 2usize, 1usize, 3usize);
        let mut rng = SmallRng::seed_from_u64(10);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = vec![1.0f32; len * kvh * dim];
        let mask = MaskSpec::Causal.instantiate(len as u32).unwrap();
        let (o, lse) = attention(&q, &k, &v, len, qh, kvh, dim, &mask);
        for r in 0..len * qh {
            assert!(lse[r].is_finite());
            for d in 0..dim {
                assert!((o[r * dim + d] - 1.0).abs() < 1e-5);
            }
        }
    }

    /// Finite-difference check of the backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let (len, qh, kvh, dim) = (4usize, 2usize, 1usize, 3usize);
        let mut rng = SmallRng::seed_from_u64(11);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let d_o = randv(len * qh * dim, &mut rng);
        let mask = MaskSpec::Lambda { sink: 1, window: 2 }
            .instantiate(len as u32)
            .unwrap();

        let loss = |q: &[f32], k: &[f32], v: &[f32]| -> f64 {
            let (o, _) = attention(q, k, v, len, qh, kvh, dim, &mask);
            o.iter()
                .zip(&d_o)
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum()
        };
        let (o, lse) = attention(&q, &k, &v, len, qh, kvh, dim, &mask);
        let (dq, dk, dv) = attention_bwd(&q, &k, &v, &o, &lse, &d_o, len, qh, kvh, dim, &mask);

        let eps = 1e-3f32;
        let check = |name: &str, x: &[f32], grad: &[f32], which: usize| {
            for idx in 0..x.len() {
                let mut xp = x.to_vec();
                xp[idx] += eps;
                let mut xm = x.to_vec();
                xm[idx] -= eps;
                let (lp, lm) = match which {
                    0 => (loss(&xp, &k, &v), loss(&xm, &k, &v)),
                    1 => (loss(&q, &xp, &v), loss(&q, &xm, &v)),
                    _ => (loss(&q, &k, &xp), loss(&q, &k, &xm)),
                };
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - grad[idx]).abs() < 2e-2,
                    "{name}[{idx}]: fd {fd} vs analytic {}",
                    grad[idx]
                );
            }
        };
        check("dq", &q, &dq, 0);
        check("dk", &k, &dk, 1);
        check("dv", &v, &dv, 2);
    }

    #[test]
    fn masked_rows_have_zero_grads_into_them() {
        // Under shared-question masking, an answer token contributes no
        // gradient to other answers' K/V.
        let spec = MaskSpec::SharedQuestion {
            question_len: 2,
            answer_lens: vec![2, 2],
        };
        let len = 6usize;
        let (qh, kvh, dim) = (1usize, 1usize, 2usize);
        let mut rng = SmallRng::seed_from_u64(12);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let mask = spec.instantiate(len as u32).unwrap();
        let (o, lse) = attention(&q, &k, &v, len, qh, kvh, dim, &mask);
        // dO nonzero only for answer-2 rows (tokens 4,5).
        let mut d_o = vec![0.0f32; len * qh * dim];
        for r in 4 * qh * dim..6 * qh * dim {
            d_o[r] = 1.0;
        }
        let (_, dk, dv) = attention_bwd(&q, &k, &v, &o, &lse, &d_o, len, qh, kvh, dim, &mask);
        // K/V of answer-1 tokens (2,3) receive no gradient.
        for j in 2..4 {
            for d in 0..dim {
                assert_eq!(dk[(j * kvh) * dim + d], 0.0);
                assert_eq!(dv[(j * kvh) * dim + d], 0.0);
            }
        }
        // Question K/V do receive gradient.
        let mut any = 0.0f32;
        for j in 0..2 {
            for d in 0..dim {
                any += dv[(j * kvh) * dim + d].abs();
            }
        }
        assert!(any > 0.0);
    }
}
