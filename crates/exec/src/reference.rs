//! Dense reference attention (forward and backward) — the numerical ground
//! truth the blockwise executor is checked against.
//!
//! Layout convention matches [`crate::kernels`]: `[tokens, heads, dim]`
//! row-major, GQA mapping `kv_head = q_head / (q_heads / kv_heads)`.

use dcp_mask::Mask;
use rayon::prelude::*;

/// Token chunk processed per backward task. Fixed (never derived from the
/// thread count), so the per-chunk partial sums — and therefore the merged
/// gradients — are bitwise identical at every thread count.
const BWD_CHUNK: usize = 32;

/// Dense masked GQA attention forward for one sequence.
///
/// Returns `(O, lse)` with `O: [len, qh, dim]`, `lse: [len * qh]`. Rows with
/// no allowed keys produce zero output and `-inf` lse.
///
/// Query rows are independent, so they are computed in parallel over tokens;
/// every row's arithmetic is self-contained and the rows are written to
/// disjoint slices, making the result thread-count independent.
#[allow(clippy::too_many_arguments)]
pub fn attention(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    len: usize,
    qh: usize,
    kvh: usize,
    dim: usize,
    mask: &Mask,
) -> (Vec<f32>, Vec<f32>) {
    let scale = 1.0 / (dim as f32).sqrt();
    let group = qh / kvh;
    let rows: Vec<(Vec<f32>, Vec<f32>)> = (0..len)
        .into_par_iter()
        .map(|t| {
            let mut o_t = vec![0.0f32; qh * dim];
            let mut lse_t = vec![f32::NEG_INFINITY; qh];
            let mut scores = vec![0.0f32; len];
            let ranges = mask.allowed(t as u32);
            for h in 0..qh {
                let g = h / group;
                let r = t * qh + h;
                let qrow = &q[r * dim..(r + 1) * dim];
                let mut m = f32::NEG_INFINITY;
                let mut any = false;
                for (j, slot) in scores.iter_mut().enumerate() {
                    if !ranges.contains(j as u32) {
                        continue;
                    }
                    any = true;
                    let kbase = (j * kvh + g) * dim;
                    let krow = &k[kbase..kbase + dim];
                    let s = qrow.iter().zip(krow).map(|(x, y)| x * y).sum::<f32>() * scale;
                    *slot = s;
                    m = m.max(s);
                }
                if !any {
                    continue;
                }
                let mut l = 0.0f32;
                for (j, &s) in scores.iter().enumerate() {
                    if ranges.contains(j as u32) {
                        l += (s - m).exp();
                    }
                }
                lse_t[h] = m + l.ln();
                let orow = &mut o_t[h * dim..(h + 1) * dim];
                for (j, &s) in scores.iter().enumerate() {
                    if !ranges.contains(j as u32) {
                        continue;
                    }
                    let p = (s - m).exp() / l;
                    let vbase = (j * kvh + g) * dim;
                    for (od, &vv) in orow.iter_mut().zip(&v[vbase..vbase + dim]) {
                        *od += p * vv;
                    }
                }
            }
            (o_t, lse_t)
        })
        .collect();
    let mut o = Vec::with_capacity(len * qh * dim);
    let mut lse = Vec::with_capacity(len * qh);
    for (o_t, lse_t) in rows {
        o.extend_from_slice(&o_t);
        lse.extend_from_slice(&lse_t);
    }
    (o, lse)
}

/// Dense masked GQA attention backward for one sequence.
///
/// Given the forward inputs, output `o`, `lse` and the output gradient
/// `d_o`, returns `(dQ, dK, dV)` with shapes matching `q`, `k`, `v`.
#[allow(clippy::too_many_arguments)]
pub fn attention_bwd(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    o: &[f32],
    lse: &[f32],
    d_o: &[f32],
    len: usize,
    qh: usize,
    kvh: usize,
    dim: usize,
    mask: &Mask,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let scale = 1.0 / (dim as f32).sqrt();
    let group = qh / kvh;
    // dQ rows are disjoint per token, but dK/dV accumulate across all query
    // tokens. Split the token range into fixed-size chunks; each chunk
    // produces its dQ slice plus full-size dK/dV partials, which are then
    // summed in chunk order — a fixed reduction order at any thread count.
    let nchunks = len.div_ceil(BWD_CHUNK).max(1);
    let parts: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..nchunks)
        .into_par_iter()
        .map(|ci| {
            let t0 = ci * BWD_CHUNK;
            let t1 = (t0 + BWD_CHUNK).min(len);
            let mut dq_part = vec![0.0f32; (t1 - t0) * qh * dim];
            let mut dk_part = vec![0.0f32; len * kvh * dim];
            let mut dv_part = vec![0.0f32; len * kvh * dim];
            for t in t0..t1 {
                let ranges = mask.allowed(t as u32);
                for h in 0..qh {
                    let r = t * qh + h;
                    if lse[r] == f32::NEG_INFINITY {
                        continue;
                    }
                    let g = h / group;
                    let qrow = &q[r * dim..(r + 1) * dim];
                    let orow = &o[r * dim..(r + 1) * dim];
                    let dorow = &d_o[r * dim..(r + 1) * dim];
                    let dqbase = ((t - t0) * qh + h) * dim;
                    let delta = dorow.iter().zip(orow).map(|(x, y)| x * y).sum::<f32>();
                    for j in 0..len {
                        if !ranges.contains(j as u32) {
                            continue;
                        }
                        let kbase = (j * kvh + g) * dim;
                        let krow = &k[kbase..kbase + dim];
                        let vrow = &v[kbase..kbase + dim];
                        let s = qrow.iter().zip(krow).map(|(x, y)| x * y).sum::<f32>() * scale;
                        let p = (s - lse[r]).exp();
                        for (gd, &go) in dv_part[kbase..kbase + dim].iter_mut().zip(dorow) {
                            *gd += p * go;
                        }
                        let dp = dorow.iter().zip(vrow).map(|(x, y)| x * y).sum::<f32>();
                        let ds = p * (dp - delta) * scale;
                        for d in 0..dim {
                            dq_part[dqbase + d] += ds * krow[d];
                            dk_part[kbase + d] += ds * qrow[d];
                        }
                    }
                }
            }
            (dq_part, dk_part, dv_part)
        })
        .collect();
    let mut dq = Vec::with_capacity(len * qh * dim);
    let mut dk = vec![0.0f32; len * kvh * dim];
    let mut dv = vec![0.0f32; len * kvh * dim];
    for (dq_part, dk_part, dv_part) in parts {
        dq.extend_from_slice(&dq_part);
        for (a, b) in dk.iter_mut().zip(&dk_part) {
            *a += b;
        }
        for (a, b) in dv.iter_mut().zip(&dv_part) {
            *a += b;
        }
    }
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_mask::MaskSpec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn randv(n: usize, rng: &mut SmallRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn softmax_rows_sum_to_one_via_uniform_v() {
        // With V = all-ones, O must be all-ones for every unmasked row.
        let (len, qh, kvh, dim) = (7usize, 2usize, 1usize, 3usize);
        let mut rng = SmallRng::seed_from_u64(10);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = vec![1.0f32; len * kvh * dim];
        let mask = MaskSpec::Causal.instantiate(len as u32).unwrap();
        let (o, lse) = attention(&q, &k, &v, len, qh, kvh, dim, &mask);
        for r in 0..len * qh {
            assert!(lse[r].is_finite());
            for d in 0..dim {
                assert!((o[r * dim + d] - 1.0).abs() < 1e-5);
            }
        }
    }

    /// Finite-difference check of the backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let (len, qh, kvh, dim) = (4usize, 2usize, 1usize, 3usize);
        let mut rng = SmallRng::seed_from_u64(11);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let d_o = randv(len * qh * dim, &mut rng);
        let mask = MaskSpec::Lambda { sink: 1, window: 2 }
            .instantiate(len as u32)
            .unwrap();

        let loss = |q: &[f32], k: &[f32], v: &[f32]| -> f64 {
            let (o, _) = attention(q, k, v, len, qh, kvh, dim, &mask);
            o.iter()
                .zip(&d_o)
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum()
        };
        let (o, lse) = attention(&q, &k, &v, len, qh, kvh, dim, &mask);
        let (dq, dk, dv) = attention_bwd(&q, &k, &v, &o, &lse, &d_o, len, qh, kvh, dim, &mask);

        let eps = 1e-3f32;
        let check = |name: &str, x: &[f32], grad: &[f32], which: usize| {
            for idx in 0..x.len() {
                let mut xp = x.to_vec();
                xp[idx] += eps;
                let mut xm = x.to_vec();
                xm[idx] -= eps;
                let (lp, lm) = match which {
                    0 => (loss(&xp, &k, &v), loss(&xm, &k, &v)),
                    1 => (loss(&q, &xp, &v), loss(&q, &xm, &v)),
                    _ => (loss(&q, &k, &xp), loss(&q, &k, &xm)),
                };
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - grad[idx]).abs() < 2e-2,
                    "{name}[{idx}]: fd {fd} vs analytic {}",
                    grad[idx]
                );
            }
        };
        check("dq", &q, &dq, 0);
        check("dk", &k, &dk, 1);
        check("dv", &v, &dv, 2);
    }

    #[test]
    fn masked_rows_have_zero_grads_into_them() {
        // Under shared-question masking, an answer token contributes no
        // gradient to other answers' K/V.
        let spec = MaskSpec::SharedQuestion {
            question_len: 2,
            answer_lens: vec![2, 2],
        };
        let len = 6usize;
        let (qh, kvh, dim) = (1usize, 1usize, 2usize);
        let mut rng = SmallRng::seed_from_u64(12);
        let q = randv(len * qh * dim, &mut rng);
        let k = randv(len * kvh * dim, &mut rng);
        let v = randv(len * kvh * dim, &mut rng);
        let mask = spec.instantiate(len as u32).unwrap();
        let (o, lse) = attention(&q, &k, &v, len, qh, kvh, dim, &mask);
        // dO nonzero only for answer-2 rows (tokens 4,5).
        let mut d_o = vec![0.0f32; len * qh * dim];
        d_o[4 * qh * dim..6 * qh * dim].fill(1.0);
        let (_, dk, dv) = attention_bwd(&q, &k, &v, &o, &lse, &d_o, len, qh, kvh, dim, &mask);
        // K/V of answer-1 tokens (2,3) receive no gradient.
        for j in 2..4 {
            for d in 0..dim {
                assert_eq!(dk[(j * kvh) * dim + d], 0.0);
                assert_eq!(dv[(j * kvh) * dim + d], 0.0);
            }
        }
        // Question K/V do receive gradient.
        let mut any = 0.0f32;
        for j in 0..2 {
            for d in 0..dim {
                any += dv[(j * kvh) * dim + d].abs();
            }
        }
        assert!(any > 0.0);
    }
}
