//! Numerical executor for DCP execution plans (CPU, `f32`).
//!
//! The paper's executor runs fused FlashAttention/Triton kernels on GPUs; we
//! reproduce the *numerics* on the CPU to validate that any placement and
//! schedule the planner emits computes exactly the same attention (and
//! gradients) as a dense reference — the paper's precision claim (Sec. 7.4,
//! Fig. 21). Timing is the job of `dcp-sim`; this crate cares only about
//! values.
//!
//! - [`kernels`]: blockwise online-softmax attention forward, the
//!   rescale-and-merge reduction, and the exact FlashAttention-style
//!   backward for one (Q-block, KV-block) pair.
//! - [`reference`]: dense masked multi-head (GQA) attention forward and
//!   backward, the ground truth.
//! - [`executor`]: a cooperative multi-device interpreter for
//!   [`dcp_sched::ExecutionPlan`]s. Each simulated device may only read data
//!   it owns or data that arrived through a waited communication operation —
//!   so a plan that under-communicates fails loudly instead of silently
//!   reading someone else's memory.
//! - [`train`]: a tiny real transformer with handwritten backprop, used to
//!   reproduce the loss-curve experiment (training with DCP-planned
//!   attention vs. dense attention).

pub mod executor;
pub mod kernels;
pub mod oracle;
pub mod reference;
pub mod train;

pub use executor::{
    execute_backward, execute_backward_obs, execute_backward_recovery, execute_forward,
    execute_forward_obs, execute_forward_recovery, BatchData, BlockGrads, BlockOut, ExecObs,
    SalvageCtx,
};
pub use oracle::{
    forward_outputs_identical, grads_identical, plans_equivalent, random_output_grads,
};
