//! Online anomaly detection over recorded event streams.
//!
//! Two streaming detectors, both EWMA-smoothed with a one-sided CUSUM
//! decision rule (Page's test on the log-ratio), tuned so the pinned
//! clean workloads never trip while a ×4 straggler or a 10× link
//! degradation is flagged within a few rounds:
//!
//! - [`KernelDurationDetector`] compares each device's kernel duration
//!   against the cross-device median of the *matching* kernel (same
//!   phase, kind and per-device step index — instruction streams are
//!   division-aligned, so matched kernels do comparable work). Straggle
//!   slices adjacent to a kernel are merged into its observed duration
//!   first: detection never reads the fault label, only timings.
//! - [`GaugeDetector`] watches gauge series (per-link / per-tier
//!   achieved bandwidth) for sustained drops below an EWMA baseline.
//!
//! Confirmed anomalies become typed [`Incident`]s; `dcp-sim` folds them
//! into an *estimated* `FaultSpec` that the planner's fault-aware
//! placement consumes — closing the observe→detect→replan loop.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// What kind of anomaly was confirmed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// A device's kernels run persistently slower than its peers'.
    Straggler {
        /// Slow device.
        device: u32,
        /// Estimated slowdown factor (observed / expected, ≥ 1).
        slowdown: f64,
    },
    /// A point-to-point link delivers a fraction of its baseline rate.
    DegradedLink {
        /// Sending device.
        src: u32,
        /// Receiving device.
        dst: u32,
        /// Estimated remaining fraction of baseline bandwidth (≤ 1).
        factor: f64,
    },
    /// A labeled bandwidth gauge dropped below its baseline (tier-level
    /// or otherwise unattributable to one link).
    BandwidthDrop {
        /// Gauge series label.
        label: String,
        /// Estimated remaining fraction of baseline (≤ 1).
        factor: f64,
    },
}

impl IncidentKind {
    /// Device blamed by the incident, when one is identifiable.
    pub fn device(&self) -> Option<u32> {
        match self {
            IncidentKind::Straggler { device, .. } => Some(*device),
            IncidentKind::DegradedLink { dst, .. } => Some(*dst),
            IncidentKind::BandwidthDrop { .. } => None,
        }
    }
}

/// A confirmed anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// What was detected.
    pub kind: IncidentKind,
    /// Trace time (seconds) of the sample that crossed the threshold.
    pub at_s: f64,
    /// Samples observed for the series when it tripped.
    pub samples: u32,
    /// CUSUM score at trip time (log2-ratio units above the slack `k`).
    pub score: f64,
}

/// Detector thresholds. Defaults are tuned against the pinned
/// `tests/robustness.rs` workload: clean runs (±10% simulated jitter,
/// mildly imbalanced divisions) stay silent, a ×4 straggler trips within
/// `min_samples + 1` rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// EWMA smoothing factor for per-series ratios (weight of the newest
    /// sample).
    pub ewma_alpha: f64,
    /// CUSUM slack `k`, in log2-ratio units: drift below `2^k` never
    /// accumulates. 0.5 ⇒ ratios under ~1.41× are in-family.
    pub cusum_k: f64,
    /// CUSUM decision threshold `h` (log2-ratio units accumulated above
    /// the slack).
    pub cusum_h: f64,
    /// Minimum samples in a series before it may trip.
    pub min_samples: u32,
    /// Minimum baseline/observed ratio for a gauge drop to accumulate
    /// (drops shallower than this are in-family noise).
    pub gauge_drop: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ewma_alpha: 0.3,
            cusum_k: 0.5,
            cusum_h: 1.0,
            min_samples: 2,
            gauge_drop: 0.6,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SeriesState {
    ewma: Option<f64>,
    cusum: f64,
    samples: u32,
    flagged: bool,
    peak_ratio: f64,
}

impl SeriesState {
    /// Feeds one ratio sample; returns `Some((score, samples, peak))`
    /// the first time the CUSUM crosses the threshold.
    fn update(&mut self, ratio: f64, cfg: &DetectorConfig) -> Option<(f64, u32, f64)> {
        let a = cfg.ewma_alpha;
        let smoothed = match self.ewma {
            Some(prev) => a * ratio + (1.0 - a) * prev,
            None => ratio,
        };
        self.ewma = Some(smoothed);
        self.samples += 1;
        self.peak_ratio = self.peak_ratio.max(ratio);
        let drift = smoothed.max(1e-12).log2() - cfg.cusum_k;
        self.cusum = (self.cusum + drift).max(0.0);
        if !self.flagged && self.samples >= cfg.min_samples && self.cusum > cfg.cusum_h {
            self.flagged = true;
            return Some((self.cusum, self.samples, self.peak_ratio));
        }
        None
    }
}

/// Streaming straggler detector over per-device kernel durations.
#[derive(Debug, Clone, Default)]
pub struct KernelDurationDetector {
    cfg: DetectorConfig,
    devices: BTreeMap<u32, SeriesState>,
    incidents: Vec<Incident>,
}

impl KernelDurationDetector {
    /// A detector with explicit thresholds.
    pub fn new(cfg: DetectorConfig) -> Self {
        KernelDurationDetector {
            cfg,
            ..KernelDurationDetector::default()
        }
    }

    /// Feeds one *round* of matched kernel durations — `(device,
    /// seconds)` for the same (phase, kind, step-index) across devices —
    /// ending at trace time `at_s`. Rounds with fewer than three devices
    /// are skipped (no robust reference).
    pub fn observe_round(&mut self, durations: &[(u32, f64)], at_s: f64) {
        if durations.len() < 3 {
            return;
        }
        let mut sorted: Vec<f64> = durations.iter().map(|&(_, s)| s).collect();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        };
        if median <= 0.0 {
            return;
        }
        for &(dev, secs) in durations {
            let ratio = secs / median;
            let state = self.devices.entry(dev).or_default();
            if let Some((score, samples, peak)) = state.update(ratio, &self.cfg) {
                self.incidents.push(Incident {
                    kind: IncidentKind::Straggler {
                        device: dev,
                        slowdown: peak.max(1.0),
                    },
                    at_s,
                    samples,
                    score,
                });
            }
        }
    }

    /// Groups kernel spans of an event stream into matched rounds and
    /// feeds them through [`Self::observe_round`]. Straggle slices are
    /// merged into the kernel they extend (same device, adjacent start),
    /// so detection works from timings alone. Each round compares
    /// *cumulative* matched kernel seconds — single divisions are
    /// legitimately imbalanced across devices, cumulative load is
    /// balanced by the planner, so the ratio isolates real slowdowns.
    /// Deterministic: rounds are processed in (phase, kind, step-index)
    /// order.
    pub fn ingest(&mut self, events: &[Event]) {
        // (phase-label, kernel-name, step-index) -> [(device, merged secs,
        // kernel end)]
        type RoundKey = (String, String, u32);
        let mut rounds: BTreeMap<RoundKey, Vec<(u32, f64, f64)>> = BTreeMap::new();
        let mut step_idx: BTreeMap<(u32, String, String), u32> = BTreeMap::new();
        // Straggle slices keyed by (device, slice start) for adjacency
        // merging.
        let mut straggles: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
        for e in events {
            if e.kind == EventKind::Span && e.name == "straggle" {
                if let Some(d) = e.device {
                    straggles.entry(d).or_default().push((e.start_s, e.dur_s));
                }
            }
        }
        let mut cum: BTreeMap<(u32, String, String), f64> = BTreeMap::new();
        for e in events {
            if e.kind != EventKind::Span {
                continue;
            }
            let kernel = matches!(e.name.as_str(), "attn" | "attn_bwd" | "reduce" | "copy");
            if !kernel {
                continue;
            }
            let Some(dev) = e.device else { continue };
            let phase = e.phase.map(|p| p.label().to_string()).unwrap_or_default();
            let idx = step_idx
                .entry((dev, phase.clone(), e.name.clone()))
                .or_insert(0);
            let k = *idx;
            *idx += 1;
            let end = e.start_s + e.dur_s;
            let mut secs = e.dur_s;
            // Merge any straggle slice that starts where this kernel ends.
            if let Some(slices) = straggles.get(&dev) {
                let eps = 1e-12 + end.abs() * 1e-9;
                for &(s_start, s_dur) in slices {
                    if (s_start - end).abs() <= eps {
                        secs += s_dur;
                    }
                }
            }
            let total = cum
                .entry((dev, phase.clone(), e.name.clone()))
                .and_modify(|t| *t += secs)
                .or_insert(secs);
            rounds
                .entry((phase, e.name.clone(), k))
                .or_default()
                .push((dev, *total, end));
        }
        for (_, mut round) in rounds {
            round.sort_by_key(|r| r.0);
            let at_s = round.iter().map(|r| r.2).fold(0.0, f64::max);
            let durs: Vec<(u32, f64)> = round.iter().map(|&(d, s, _)| (d, s)).collect();
            self.observe_round(&durs, at_s);
        }
    }

    /// Confirmed incidents, in detection order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }
}

/// Streaming drop detector over labeled gauge series (achieved link /
/// tier bandwidth).
#[derive(Debug, Clone, Default)]
pub struct GaugeDetector {
    cfg: DetectorConfig,
    series: BTreeMap<String, SeriesState>,
    baselines: BTreeMap<String, f64>,
    incidents: Vec<Incident>,
}

impl GaugeDetector {
    /// A detector with explicit thresholds.
    pub fn new(cfg: DetectorConfig) -> Self {
        GaugeDetector {
            cfg,
            ..GaugeDetector::default()
        }
    }

    /// Feeds one sample of series `key` at trace time `at_s`. Keys of the
    /// form `"devA->devB"` produce [`IncidentKind::DegradedLink`];
    /// anything else produces [`IncidentKind::BandwidthDrop`].
    pub fn observe(&mut self, key: &str, value: f64, at_s: f64) {
        if value <= 0.0 {
            return;
        }
        let baseline = self.baselines.entry(key.to_string()).or_insert(value);
        // The baseline tracks the healthy level: it only moves towards
        // higher observed rates (EWMA up, frozen on drops) so a sustained
        // degradation cannot drag its own reference down.
        if value >= *baseline {
            let a = self.cfg.ewma_alpha;
            *baseline = a * value + (1.0 - a) * *baseline;
        }
        let drop_ratio = *baseline / value; // >1 on a drop
        let in_family = value >= self.cfg.gauge_drop * *baseline;
        let sample = if in_family { 1.0 } else { drop_ratio };
        let state = self.series.entry(key.to_string()).or_default();
        if let Some((score, samples, peak)) = state.update(sample, &self.cfg) {
            let factor = (1.0 / peak).clamp(0.0, 1.0);
            let kind = parse_link(key)
                .map(|(src, dst)| IncidentKind::DegradedLink { src, dst, factor })
                .unwrap_or_else(|| IncidentKind::BandwidthDrop {
                    label: key.to_string(),
                    factor,
                });
            self.incidents.push(Incident {
                kind,
                at_s,
                samples,
                score,
            });
        }
    }

    /// Confirmed incidents, in detection order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }
}

/// Parses `"devA->devB"` into `(A, B)`.
fn parse_link(key: &str) -> Option<(u32, u32)> {
    let (a, b) = key.split_once("->")?;
    Some((
        a.trim().strip_prefix("dev")?.parse().ok()?,
        b.trim().strip_prefix("dev")?.parse().ok()?,
    ))
}

/// Both detectors behind one ingest call.
#[derive(Debug, Clone, Default)]
pub struct DetectorBank {
    /// Kernel-duration straggler detector.
    pub kernels: KernelDurationDetector,
    /// Bandwidth-gauge drop detector.
    pub gauges: GaugeDetector,
}

impl DetectorBank {
    /// A bank with shared thresholds.
    pub fn new(cfg: DetectorConfig) -> Self {
        DetectorBank {
            kernels: KernelDurationDetector::new(cfg.clone()),
            gauges: GaugeDetector::new(cfg),
        }
    }

    /// Feeds a recorded stream: kernel spans to the straggler detector,
    /// `link_bandwidth` / `tier_bandwidth` gauges to the drop detector.
    pub fn ingest(&mut self, events: &[Event]) {
        self.kernels.ingest(events);
        for e in events {
            if e.kind == EventKind::Gauge
                && matches!(e.name.as_str(), "link_bandwidth" | "tier_bandwidth")
            {
                let key = e.label.clone().unwrap_or_else(|| e.name.clone());
                self.gauges.observe(&key, e.value.unwrap_or(0.0), e.start_s);
            }
        }
    }

    /// All confirmed incidents: kernel incidents first, then gauge
    /// incidents, each in detection order.
    pub fn incidents(&self) -> Vec<Incident> {
        let mut out = self.kernels.incidents().to_vec();
        out.extend_from_slice(self.gauges.incidents());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Source};

    #[test]
    fn clean_rounds_stay_silent() {
        let mut det = KernelDurationDetector::default();
        for round in 0..20 {
            // ±10% jitter around a common duration.
            let durs: Vec<(u32, f64)> = (0..8)
                .map(|d| (d, 1.0 + 0.1 * (((d + round) % 3) as f64 - 1.0)))
                .collect();
            det.observe_round(&durs, round as f64);
        }
        assert!(det.incidents().is_empty(), "{:?}", det.incidents());
    }

    #[test]
    fn x4_straggler_trips_quickly() {
        let mut det = KernelDurationDetector::default();
        for round in 0..6 {
            let durs: Vec<(u32, f64)> = (0..8)
                .map(|d| (d, if d == 3 { 4.0 } else { 1.0 }))
                .collect();
            det.observe_round(&durs, round as f64);
        }
        let incs = det.incidents();
        assert_eq!(incs.len(), 1, "{incs:?}");
        match &incs[0].kind {
            IncidentKind::Straggler { device, slowdown } => {
                assert_eq!(*device, 3);
                assert!(*slowdown > 3.0, "slowdown {slowdown}");
            }
            other => panic!("unexpected incident {other:?}"),
        }
    }

    #[test]
    fn tiny_rounds_are_skipped() {
        let mut det = KernelDurationDetector::default();
        for _ in 0..10 {
            det.observe_round(&[(0, 10.0), (1, 1.0)], 0.0);
        }
        assert!(det.incidents().is_empty());
    }

    #[test]
    fn ingest_merges_straggle_into_kernel() {
        let mut events = Vec::new();
        for round in 0..4 {
            for d in 0..8u32 {
                let start = round as f64 * 10.0 + d as f64 * 0.01;
                let mut e = Event::span(Source::Sim, "attn")
                    .with_device(d)
                    .with_phase(Phase::Fwd)
                    .with_time(start, 1.0);
                e.seq = (round * 8 + d as usize) as u64;
                events.push(e);
                if d == 5 {
                    // ×4 straggler: 3 extra seconds appended as a slice.
                    events.push(
                        Event::span(Source::Sim, "straggle")
                            .with_device(d)
                            .with_phase(Phase::Fwd)
                            .with_time(start + 1.0, 3.0),
                    );
                }
            }
        }
        let mut det = KernelDurationDetector::default();
        det.ingest(&events);
        let incs = det.incidents();
        assert_eq!(incs.len(), 1, "{incs:?}");
        assert_eq!(incs[0].kind.device(), Some(5));
    }

    #[test]
    fn gauge_detector_flags_degraded_link_only() {
        let mut det = GaugeDetector::default();
        // Healthy series: small fluctuation.
        for i in 0..20 {
            det.observe("dev2->dev3", 100.0 + (i % 3) as f64, i as f64);
        }
        // Degraded series: drops to 10% after a healthy baseline forms.
        for i in 0..4 {
            det.observe("dev1->dev0", 100.0, i as f64);
        }
        for i in 4..10 {
            det.observe("dev1->dev0", 10.0, i as f64);
        }
        let incs = det.incidents();
        assert_eq!(incs.len(), 1, "{incs:?}");
        match &incs[0].kind {
            IncidentKind::DegradedLink { src, dst, factor } => {
                assert_eq!((*src, *dst), (1, 0));
                assert!(*factor < 0.3, "factor {factor}");
            }
            other => panic!("unexpected incident {other:?}"),
        }
    }

    #[test]
    fn bank_routes_gauges_by_label() {
        let mut bank = DetectorBank::default();
        let mut events = Vec::new();
        for i in 0..4 {
            events.push(
                Event::gauge(Source::Sim, "link_bandwidth", 100.0)
                    .with_label("dev1->dev0")
                    .with_time(i as f64, 0.0),
            );
        }
        for i in 4..10 {
            events.push(
                Event::gauge(Source::Sim, "link_bandwidth", 8.0)
                    .with_label("dev1->dev0")
                    .with_time(i as f64, 0.0),
            );
        }
        bank.ingest(&events);
        let incs = bank.incidents();
        assert_eq!(incs.len(), 1, "{incs:?}");
        assert!(matches!(
            incs[0].kind,
            IncidentKind::DegradedLink { src: 1, dst: 0, .. }
        ));
    }
}
