//! Exporters: unified Chrome trace, JSONL event log.
//!
//! The Chrome trace generalises `dcp-sim`'s single-source
//! `to_chrome_trace` to multi-source streams: each [`Source`] becomes a
//! Chrome *process* (named via `"M"` metadata events) and each device a
//! pair of *threads* (compute row + comm row), so planner, dataloader,
//! executor and sim timelines sit side by side in `chrome://tracing` or
//! Perfetto. Timestamps are normalised per source (each process starts at
//! its own first event) so wall-clock and simulated clocks are directly
//! comparable.

use serde_json::{json, Value};

use crate::event::{Event, EventKind, Source};

/// Chrome thread id for an event: `2*device` for compute/plan rows,
/// `2*device + 1` for comm rows, 0 for device-less events.
fn tid(e: &Event) -> u32 {
    match e.device {
        Some(d) => 2 * d + u32::from(e.chrome_cat() == "comm"),
        None => 0,
    }
}

/// Stable flow-event id binding a `comm_launch` arrow to its `comm_wait`:
/// unique per (source, iteration, phase, comm id).
fn flow_id(e: &Event, comm: u32) -> u64 {
    let phase = e.phase.map(|p| p as u64 + 1).unwrap_or(0);
    let iter = e.iter.unwrap_or(0);
    ((e.source.pid() as u64) << 56) | ((iter + 1) << 36) | (phase << 34) | comm as u64
}

fn args(e: &Event) -> Value {
    let mut m = serde_json::Map::new();
    m.insert("seq".into(), json!(e.seq));
    if let Some(i) = e.iter {
        m.insert("iter".into(), json!(i));
    }
    if let Some(c) = e.comm {
        m.insert("comm".into(), json!(c));
    }
    if let Some(d) = e.division {
        m.insert("division".into(), json!(d));
    }
    if let Some(l) = &e.label {
        m.insert("label".into(), json!(l));
    }
    if let Some(b) = e.bytes {
        m.insert("bytes".into(), json!(b));
    }
    if let Some(f) = e.flops {
        m.insert("flops".into(), json!(f));
    }
    if let Some(v) = e.value {
        m.insert("value".into(), json!(v));
    }
    Value::Object(m)
}

/// Builds the `traceEvents` array for a multi-source stream: `"M"`
/// process/thread metadata rows, `"X"` complete events for spans and
/// instants, `"C"` counter samples for counters and gauges.
pub fn chrome_trace_events(events: &[Event]) -> Vec<Value> {
    let mut out = Vec::new();
    // Per-source time origin so every process row starts at zero. Only
    // timed events (spans/instants) define the origin; counters and gauges
    // carry no meaningful timestamp.
    let mut origin: [f64; 4] = [f64::INFINITY; 4];
    for e in events {
        if matches!(e.kind, EventKind::Span | EventKind::Instant) {
            let s = e.source.pid() as usize - 1;
            origin[s] = origin[s].min(e.start_s);
        }
    }
    for o in &mut origin {
        if !o.is_finite() {
            *o = 0.0;
        }
    }
    // Metadata: process rows (one per source present), thread rows (one
    // per device track present), emitted in deterministic order.
    let mut tracks: Vec<(u32, u32)> = events.iter().map(|e| (e.source.pid(), tid(e))).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for src in [
        Source::Planner,
        Source::Dataloader,
        Source::Executor,
        Source::Sim,
    ] {
        if tracks.iter().any(|&(p, _)| p == src.pid()) {
            out.push(json!({
                "name": "process_name", "ph": "M", "pid": src.pid(), "tid": 0,
                "args": {"name": src.label()},
            }));
        }
    }
    for &(pid, t) in &tracks {
        let name = if t == 0 {
            "main".to_string()
        } else if t % 2 == 0 {
            format!("dev{}", t / 2)
        } else {
            format!("dev{} net", t / 2)
        };
        out.push(json!({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": t,
            "args": {"name": name},
        }));
    }
    for e in events {
        let s = e.source.pid() as usize - 1;
        let ts = (e.start_s - origin[s]) * 1e6;
        match e.kind {
            EventKind::Span | EventKind::Instant => {
                out.push(json!({
                    "name": e.name, "cat": e.chrome_cat(), "ph": "X",
                    "ts": ts, "dur": e.dur_s * 1e6,
                    "pid": e.source.pid(), "tid": tid(e),
                    "args": args(e),
                }));
                // Flow arrows: a launch starts a flow at its end, the
                // matching wait finishes it ("bp":"e" attaches the arrow
                // head to the enclosing slice's end). Perfetto then draws
                // launch→wait dependencies across device tracks.
                if let Some(c) = e.comm {
                    let end = ts + e.dur_s * 1e6;
                    match e.name.as_str() {
                        "comm_launch" => out.push(json!({
                            "name": "comm_flow", "cat": "comm", "ph": "s",
                            "id": flow_id(e, c), "ts": end,
                            "pid": e.source.pid(), "tid": tid(e),
                        })),
                        "comm_wait" => out.push(json!({
                            "name": "comm_flow", "cat": "comm", "ph": "f", "bp": "e",
                            "id": flow_id(e, c), "ts": end,
                            "pid": e.source.pid(), "tid": tid(e),
                        })),
                        _ => {}
                    }
                }
            }
            EventKind::Counter | EventKind::Gauge => out.push(json!({
                "name": e.name, "cat": "metric", "ph": "C",
                "ts": ts, "pid": e.source.pid(), "tid": tid(e),
                "args": {"value": e.value.unwrap_or(0.0)},
            })),
        }
    }
    out
}

/// Serialises a multi-source stream to a complete Chrome-trace JSON
/// document (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn to_chrome_trace(events: &[Event]) -> String {
    serde_json::to_string_pretty(&json!({
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
    }))
    .expect("trace serializes")
}

/// One JSON object per line, in sequence order — the raw structured log.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("event serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn sample() -> Vec<Event> {
        vec![
            Event::span(Source::Planner, "schedule")
                .with_iter(0)
                .with_time(10.0, 0.5),
            Event::span(Source::Executor, "attn")
                .with_device(1)
                .with_phase(Phase::Fwd)
                .with_division(0)
                .with_flops(100)
                .with_time(20.0, 0.1),
            Event::span(Source::Executor, "comm_wait")
                .with_device(1)
                .with_phase(Phase::Fwd)
                .with_bytes(4096)
                .with_time(20.1, 0.05),
            Event::gauge(Source::Executor, "peak_buffer_bytes", 2048.0).with_device(1),
            Event::span(Source::Sim, "attn")
                .with_device(0)
                .with_phase(Phase::Fwd)
                .with_time(0.0, 1e-3),
        ]
    }

    #[test]
    fn chrome_trace_has_process_rows_per_source() {
        let s = to_chrome_trace(&sample());
        let v: Value = serde_json::from_str(&s).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        let procs: Vec<&str> = evs
            .iter()
            .filter(|e| e["name"] == "process_name")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert_eq!(procs, vec!["planner", "executor", "sim"]);
        // Comm events land on the odd (net) row.
        let wait = evs.iter().find(|e| e["name"] == "comm_wait").unwrap();
        assert_eq!(wait["tid"], 3);
        assert_eq!(wait["args"]["bytes"], 4096);
        // Per-source normalisation: first executor event starts at ts 0.
        let attn = evs
            .iter()
            .find(|e| e["name"] == "attn" && e["pid"] == Source::Executor.pid())
            .unwrap();
        assert!((attn["ts"].as_f64().unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn gauges_become_counter_samples() {
        let s = to_chrome_trace(&sample());
        let v: Value = serde_json::from_str(&s).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        let g = evs
            .iter()
            .find(|e| e["name"] == "peak_buffer_bytes")
            .unwrap();
        assert_eq!(g["ph"], "C");
        assert_eq!(g["args"]["value"], 2048.0);
    }

    #[test]
    fn comm_spans_emit_bound_flow_arrows() {
        let events = vec![
            Event::span(Source::Executor, "comm_launch")
                .with_device(0)
                .with_phase(Phase::Fwd)
                .with_iter(2)
                .with_comm(7)
                .with_time(0.0, 0.1),
            Event::span(Source::Executor, "comm_wait")
                .with_device(1)
                .with_phase(Phase::Fwd)
                .with_iter(2)
                .with_comm(7)
                .with_time(0.2, 0.3),
        ];
        let v: Value = serde_json::from_str(&to_chrome_trace(&events)).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        let start = evs
            .iter()
            .find(|e| e["ph"] == "s" && e["name"] == "comm_flow")
            .expect("flow start");
        let finish = evs
            .iter()
            .find(|e| e["ph"] == "f" && e["name"] == "comm_flow")
            .expect("flow finish");
        // Same id binds the arrow; the head attaches to the wait's end.
        assert_eq!(start["id"], finish["id"]);
        assert_eq!(finish["bp"], "e");
        assert!((start["ts"].as_f64().unwrap() - 0.1e6).abs() < 1e-6);
        assert!((finish["ts"].as_f64().unwrap() - 0.5e6).abs() < 1e-6);
        // Arrow endpoints live on the comm rows of their devices.
        assert_eq!(start["tid"], 1);
        assert_eq!(finish["tid"], 3);
        // Spans without a comm id emit no flow events.
        let plain = to_chrome_trace(&[Event::span(Source::Executor, "comm_wait")
            .with_device(0)
            .with_time(0.0, 1.0)]);
        assert!(!plain.contains("comm_flow"));
    }

    #[test]
    fn jsonl_round_trips_line_by_line() {
        let events = sample();
        let text = to_jsonl(&events);
        let back: Vec<Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, events);
    }
}
