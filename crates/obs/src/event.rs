//! The structured event model shared by every layer.
//!
//! An [`Event`] is the single record type the planner, dataloader, executor
//! and simulator all emit. Identity (what the determinism tests pin) is
//! everything *except* the wall-clock payload: `start_s` and `dur_s` carry
//! measured or simulated time and are explicitly excluded from comparisons
//! via [`Event::identity`].

use serde::{Deserialize, Serialize};

/// Which layer emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Source {
    /// The per-batch planner (`dcp-core`).
    Planner,
    /// The look-ahead dataloader (`dcp-core`).
    Dataloader,
    /// The numerical executor (`dcp-exec`).
    Executor,
    /// The discrete-event cluster simulator (`dcp-sim`).
    Sim,
}

impl Source {
    /// Short display label, also the Chrome-trace process name.
    pub fn label(&self) -> &'static str {
        match self {
            Source::Planner => "planner",
            Source::Dataloader => "dataloader",
            Source::Executor => "executor",
            Source::Sim => "sim",
        }
    }

    /// Stable process id for the Chrome-trace exporter: one process row
    /// per source so simulated and real timelines sit side by side.
    pub fn pid(&self) -> u32 {
        match self {
            Source::Planner => 1,
            Source::Dataloader => 2,
            Source::Executor => 3,
            Source::Sim => 4,
        }
    }
}

/// Execution phase a device-side event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass.
    Fwd,
    /// Backward pass.
    Bwd,
}

impl Phase {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Fwd => "fwd",
            Phase::Bwd => "bwd",
        }
    }
}

/// Event shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// A timed interval (`start_s`/`dur_s` meaningful).
    Span,
    /// A point event (duration zero by construction).
    Instant,
    /// A monotonic count increment (`value` is the delta).
    Counter,
    /// A sampled level (`value` is the sample).
    Gauge,
}

/// One structured observability record.
///
/// All optional dimensions default to `None`; constructors fill `source`,
/// `kind` and `name`, builder methods add the rest. `seq` is assigned by
/// the recording sink in arrival order — because all library emission
/// happens on serial, plan-ordered code paths, `seq` is deterministic and
/// *is* part of event identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Recording order, assigned by the sink (0 until recorded).
    pub seq: u64,
    /// Emitting layer.
    pub source: Source,
    /// Event shape.
    pub kind: EventKind,
    /// Event name, e.g. `"attn"`, `"coarsen"`, `"plan_cache_hit"`.
    pub name: String,
    /// Iteration / batch index, when known.
    pub iter: Option<u64>,
    /// Device id, for device-scoped events.
    pub device: Option<u32>,
    /// Forward/backward phase, for executor and sim events.
    pub phase: Option<Phase>,
    /// Division index within the phase, for executor events.
    pub division: Option<u32>,
    /// Free-form label: plan tier, failure class, transfer peer, ...
    pub label: Option<String>,
    /// Communication id linking a `comm_launch` span to the `comm_wait`
    /// that blocks on it (the plan's `CommId`). Optional so older JSONL
    /// streams without the field still deserialize.
    pub comm: Option<u32>,
    /// Bytes moved/reduced, when applicable.
    pub bytes: Option<u64>,
    /// Flops executed, when applicable.
    pub flops: Option<u64>,
    /// Counter delta or gauge sample.
    pub value: Option<f64>,
    /// Start time in seconds (wall clock for real layers, simulated time
    /// for the sim). NOT part of event identity.
    pub start_s: f64,
    /// Duration in seconds. NOT part of event identity.
    pub dur_s: f64,
}

impl Event {
    fn new(source: Source, kind: EventKind, name: impl Into<String>) -> Self {
        Event {
            seq: 0,
            source,
            kind,
            name: name.into(),
            iter: None,
            device: None,
            phase: None,
            division: None,
            label: None,
            comm: None,
            bytes: None,
            flops: None,
            value: None,
            start_s: 0.0,
            dur_s: 0.0,
        }
    }

    /// A timed span.
    pub fn span(source: Source, name: impl Into<String>) -> Self {
        Event::new(source, EventKind::Span, name)
    }

    /// A point event.
    pub fn instant(source: Source, name: impl Into<String>) -> Self {
        Event::new(source, EventKind::Instant, name)
    }

    /// A counter increment of `delta`.
    pub fn counter(source: Source, name: impl Into<String>, delta: f64) -> Self {
        Event::new(source, EventKind::Counter, name).with_value(delta)
    }

    /// A gauge sample of `value`.
    pub fn gauge(source: Source, name: impl Into<String>, value: f64) -> Self {
        Event::new(source, EventKind::Gauge, name).with_value(value)
    }

    /// Sets the iteration / batch index.
    pub fn with_iter(mut self, iter: u64) -> Self {
        self.iter = Some(iter);
        self
    }

    /// Sets the device id.
    pub fn with_device(mut self, device: u32) -> Self {
        self.device = Some(device);
        self
    }

    /// Sets the execution phase.
    pub fn with_phase(mut self, phase: Phase) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Sets the division index.
    pub fn with_division(mut self, division: u32) -> Self {
        self.division = Some(division);
        self
    }

    /// Sets the free-form label (tier, failure class, ...).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the communication id (links launch/wait pairs).
    pub fn with_comm(mut self, comm: u32) -> Self {
        self.comm = Some(comm);
        self
    }

    /// Sets the bytes payload.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = Some(bytes);
        self
    }

    /// Sets the flops payload.
    pub fn with_flops(mut self, flops: u64) -> Self {
        self.flops = Some(flops);
        self
    }

    /// Sets the counter/gauge value.
    pub fn with_value(mut self, value: f64) -> Self {
        self.value = Some(value);
        self
    }

    /// Sets the timing payload (seconds).
    pub fn with_time(mut self, start_s: f64, dur_s: f64) -> Self {
        self.start_s = start_s;
        self.dur_s = dur_s;
        self
    }

    /// A copy with the timing payload zeroed: the deterministic identity of
    /// the event. Two event streams are "the same" iff their identities are
    /// equal element-wise (see `tests/obs_determinism.rs`).
    pub fn identity(&self) -> Event {
        let mut e = self.clone();
        e.start_s = 0.0;
        e.dur_s = 0.0;
        e
    }

    /// Chrome-trace category for this event.
    pub fn chrome_cat(&self) -> &'static str {
        match self.kind {
            EventKind::Counter | EventKind::Gauge => "metric",
            _ => match self.name.as_str() {
                "comm_launch" | "comm_wait" | "recv" => "comm",
                "wait" => "wait",
                "straggle" | "delay" => "fault",
                _ if self.source == Source::Planner => "plan",
                _ if self.source == Source::Dataloader => "load",
                _ => "compute",
            },
        }
    }
}

/// Strips timing from a stream: the element-wise [`Event::identity`].
pub fn identities(events: &[Event]) -> Vec<Event> {
    events.iter().map(Event::identity).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_identity() {
        let e = Event::span(Source::Executor, "attn")
            .with_iter(3)
            .with_device(1)
            .with_phase(Phase::Fwd)
            .with_division(2)
            .with_flops(1000)
            .with_time(1.5, 0.25);
        assert_eq!(e.iter, Some(3));
        assert_eq!(e.dur_s, 0.25);
        let id = e.identity();
        assert_eq!(id.dur_s, 0.0);
        assert_eq!(id.start_s, 0.0);
        assert_eq!(id.flops, Some(1000));
        // Identity equality ignores timing.
        assert_eq!(id, e.clone().with_time(9.0, 9.0).identity());
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::counter(Source::Planner, "plan_cache_hit", 1.0)
            .with_label("partitioned")
            .with_bytes(42);
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn chrome_categories() {
        assert_eq!(
            Event::span(Source::Executor, "comm_wait").chrome_cat(),
            "comm"
        );
        assert_eq!(
            Event::span(Source::Executor, "attn").chrome_cat(),
            "compute"
        );
        assert_eq!(Event::span(Source::Planner, "coarsen").chrome_cat(), "plan");
        assert_eq!(
            Event::gauge(Source::Executor, "peak_buffer_bytes", 1.0).chrome_cat(),
            "metric"
        );
    }
}
