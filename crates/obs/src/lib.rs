//! # dcp-obs — unified observability layer
//!
//! One structured event model for the whole workspace: the planner,
//! look-ahead dataloader, numerical executor and cluster simulator all
//! emit [`Event`]s into an [`ObsSink`], and the exporters turn the merged
//! stream into a multi-source Chrome trace, a JSONL log, or a
//! Prometheus-style metric snapshot.
//!
//! On top of recording, the crate *analyzes* streams (DESIGN.md §13):
//! [`critical_path`] reconstructs the causal chain that ends an
//! iteration and attributes the makespan to compute / exposed comm /
//! wait / straggle / recovery; [`DetectorBank`] runs streaming
//! EWMA+CUSUM anomaly detectors that turn slow devices and degraded
//! links into typed [`Incident`]s; and [`FlightRecorder`] is an
//! always-on bounded ring sink that freezes schema-versioned
//! [`PostmortemBundle`]s when a verifier diagnostic, tier fallback,
//! recovery or gate failure fires.
//!
//! Design rules (see DESIGN.md §8):
//!
//! - **Near-zero disabled cost.** Instrumentation sites gate on
//!   [`ObsSink::enabled`]; with the [`NoopSink`] the per-site cost is a
//!   single branch — no clock read, no allocation.
//! - **Deterministic identity.** All library emission happens on serial,
//!   plan-ordered code paths (the planner's caller thread, the
//!   dataloader's consumer thread, the executor's round-robin interpreter
//!   loop, the simulator's sorted trace). The recorded stream — sequence
//!   numbers, names, dimensions, payloads — is therefore bitwise identical
//!   across `RAYON_NUM_THREADS`. Wall-clock lives only in `start_s`/
//!   `dur_s`, which [`Event::identity`] strips.
//!
//! ```
//! use dcp_obs::{Event, ObsSink, RecordingSink, Source, Span};
//!
//! let sink = RecordingSink::new();
//! {
//!     let mut span = Span::enter(&sink, Event::span(Source::Planner, "schedule"));
//!     span.update(|e| e.iter = Some(0));
//! }
//! sink.record(Event::counter(Source::Planner, "plan_cache_miss", 1.0));
//! let events = sink.events();
//! assert_eq!(events.len(), 2);
//! println!("{}", dcp_obs::to_chrome_trace(&events));
//! ```

mod analysis;
mod detect;
mod event;
mod export;
mod recorder;
mod registry;
mod sink;

pub use analysis::{
    critical_path, diff_attribution, AnalysisScope, Attribution, AttributionDelta, Bucket,
    DeviceAttribution, DeviceDelta, DivisionAttribution, PathStep,
};
pub use detect::{
    DetectorBank, DetectorConfig, GaugeDetector, Incident, IncidentKind, KernelDurationDetector,
};
pub use event::{identities, Event, EventKind, Phase, Source};
pub use export::{chrome_trace_events, to_chrome_trace, to_jsonl};
pub use recorder::{
    FlightRecorder, PostmortemBundle, RecorderConfig, DEFAULT_TRIGGERS, POSTMORTEM_SCHEMA_VERSION,
};
pub use registry::{Histogram, Registry, DURATION_BUCKETS};
pub use sink::{NoopSink, ObsHandle, ObsSink, RecordingSink, Span, NOOP};
