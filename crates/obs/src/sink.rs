//! Sinks: where events go.
//!
//! [`ObsSink`] is the one trait instrumented code talks to. The
//! [`NoopSink`] reports `enabled() == false`, which instrumentation sites
//! use to skip clock reads and event construction entirely — the disabled
//! cost is a single branch per site. The [`RecordingSink`] appends every
//! event to an in-memory log, assigning sequence numbers in arrival order;
//! because all library emission happens on serial, plan-ordered paths,
//! the recorded stream is bitwise deterministic across thread counts.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::Event;

/// Destination for observability events.
pub trait ObsSink {
    /// Whether events are actually recorded. Instrumentation sites gate
    /// clock reads and event construction on this.
    fn enabled(&self) -> bool;

    /// Records one event. The sink assigns `seq`.
    fn record(&self, event: Event);

    /// Records a batch of events in order.
    fn record_all(&self, events: Vec<Event>) {
        for e in events {
            self.record(e);
        }
    }
}

/// The disabled sink: drops everything, `enabled()` is `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ObsSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// A process-wide no-op sink to borrow when no sink was provided.
pub static NOOP: NoopSink = NoopSink;

/// In-memory recording sink. Thread-safe; `seq` is assigned under the lock
/// in arrival order.
#[derive(Debug, Default)]
pub struct RecordingSink {
    state: Mutex<RecState>,
}

#[derive(Debug, Default)]
struct RecState {
    next_seq: u64,
    events: Vec<Event>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the recorded stream, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        self.state.lock().unwrap().events.clone()
    }

    /// Takes the recorded stream, leaving the sink empty (sequence numbers
    /// keep increasing).
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut self.state.lock().unwrap().events)
    }
}

impl ObsSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, mut event: Event) {
        let mut st = self.state.lock().unwrap();
        event.seq = st.next_seq;
        st.next_seq += 1;
        st.events.push(event);
    }

    fn record_all(&self, events: Vec<Event>) {
        let mut st = self.state.lock().unwrap();
        for mut e in events {
            e.seq = st.next_seq;
            st.next_seq += 1;
            st.events.push(e);
        }
    }
}

/// Cloneable, `Debug`-able handle to a shared sink — the form structs like
/// the planner and dataloader store. Defaults to the no-op sink.
#[derive(Clone)]
pub struct ObsHandle {
    sink: Arc<dyn ObsSink + Send + Sync>,
}

impl ObsHandle {
    /// Wraps a shared sink.
    pub fn new(sink: Arc<dyn ObsSink + Send + Sync>) -> Self {
        ObsHandle { sink }
    }

    /// The disabled handle.
    pub fn noop() -> Self {
        ObsHandle {
            sink: Arc::new(NoopSink),
        }
    }

    /// Borrows the underlying sink.
    pub fn sink(&self) -> &dyn ObsSink {
        self.sink.as_ref()
    }

    /// Whether the underlying sink records.
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Records one event (no-op when disabled).
    pub fn record(&self, event: Event) {
        self.sink.record(event);
    }
}

impl Default for ObsHandle {
    fn default() -> Self {
        ObsHandle::noop()
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("enabled", &self.sink.enabled())
            .finish()
    }
}

/// RAII span guard: captures the clock on entry (only when the sink is
/// enabled) and records the prototype event with measured timing on drop.
///
/// ```
/// use dcp_obs::{Event, RecordingSink, Source, Span};
/// let sink = RecordingSink::new();
/// {
///     let _span = Span::enter(&sink, Event::span(Source::Planner, "schedule"));
/// }
/// assert_eq!(sink.events()[0].name, "schedule");
/// ```
pub struct Span<'a> {
    sink: &'a dyn ObsSink,
    proto: Option<Event>,
    started: Option<Instant>,
    base: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Opens a span; inert (no clock read) when the sink is disabled.
    pub fn enter(sink: &'a dyn ObsSink, proto: Event) -> Self {
        if sink.enabled() {
            Span {
                sink,
                proto: Some(proto),
                started: Some(Instant::now()),
                base: None,
            }
        } else {
            Span {
                sink,
                proto: None,
                started: None,
                base: None,
            }
        }
    }

    /// Like [`Span::enter`], but records `start_s` relative to `base` so all
    /// spans of one recording share a time origin.
    pub fn enter_at(sink: &'a dyn ObsSink, proto: Event, base: Instant) -> Self {
        let mut s = Span::enter(sink, proto);
        if s.proto.is_some() {
            s.base = Some(base);
        }
        s
    }

    /// Mutates the pending event (e.g. to add a payload discovered while
    /// the span is open). No-op when disabled.
    pub fn update(&mut self, f: impl FnOnce(&mut Event)) {
        if let Some(proto) = self.proto.as_mut() {
            f(proto);
        }
    }

    /// Closes the span early, recording it now.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let (Some(proto), Some(started)) = (self.proto.take(), self.started.take()) {
            let dur = started.elapsed().as_secs_f64();
            let start = match self.base {
                Some(base) => (started - base).as_secs_f64(),
                None => 0.0,
            };
            self.sink.record(proto.with_time(start, dur));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    #[test]
    fn noop_records_nothing_and_is_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.record(Event::instant(Source::Planner, "x"));
        let _span = Span::enter(&s, Event::span(Source::Planner, "y"));
    }

    #[test]
    fn recording_sink_assigns_monotonic_seq() {
        let s = RecordingSink::new();
        s.record(Event::instant(Source::Planner, "a"));
        s.record_all(vec![
            Event::instant(Source::Sim, "b"),
            Event::instant(Source::Sim, "c"),
        ]);
        let evs = s.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(evs[2].name, "c");
        let drained = s.drain();
        assert_eq!(drained.len(), 3);
        assert!(s.is_empty());
        s.record(Event::instant(Source::Planner, "d"));
        assert_eq!(s.events()[0].seq, 3, "seq keeps increasing after drain");
    }

    #[test]
    fn span_records_on_drop_with_duration() {
        let s = RecordingSink::new();
        {
            let mut sp = Span::enter(&s, Event::span(Source::Executor, "attn"));
            sp.update(|e| e.flops = Some(7));
        }
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].flops, Some(7));
        assert!(evs[0].dur_s >= 0.0);
    }

    #[test]
    fn handle_defaults_to_noop() {
        let h = ObsHandle::default();
        assert!(!h.enabled());
        assert_eq!(format!("{h:?}"), "ObsHandle { enabled: false }");
        let rec = Arc::new(RecordingSink::new());
        let h = ObsHandle::new(rec.clone());
        assert!(h.enabled());
        h.record(Event::instant(Source::Dataloader, "z"));
        assert_eq!(rec.len(), 1);
    }
}
