//! Causal trace analytics: critical-path reconstruction and makespan
//! attribution.
//!
//! The recorded event stream (executor or simulator spans) is an implicit
//! dependency DAG: compute segments on one device are ordered by the
//! device's instruction stream, a `wait`/`comm_wait` is released by the
//! last inbound transfer it blocks on, and that transfer was produced by
//! the sending device's stream. [`critical_path`] reconstructs the chain
//! of segments that *ends* the iteration by walking that DAG backwards
//! from the makespan, and attributes every second of it to one of five
//! buckets: compute, exposed comm, wait (idle / dependency stall),
//! straggle (injected or observed slowdown slices) and recovery
//! (delayed-start / restart gaps).
//!
//! The walk partitions `[0, makespan]` exactly — every hop attributes the
//! full interval it skips — so bucket components always sum to the
//! makespan (pinned by a proptest in `tests/trace_analysis.rs`). That
//! conservation law is what lets `plan_gate` treat the attribution as an
//! audit: if the components stop summing, the reconstruction is wrong,
//! not the plan.
//!
//! [`diff_attribution`] is the differential mode: given a clean and a
//! regressed trace of the same workload it blames the makespan delta on
//! buckets and devices, naming a `prime_suspect` so gate failures report
//! *which* path segment regressed rather than a bare percentage.

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, Phase, Source};

/// Attribution bucket for one critical-path hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bucket {
    /// Kernel / launch work on the device stream.
    Compute,
    /// Blocked on communication that an inbound transfer eventually
    /// released (the transfer interval itself).
    ExposedComm,
    /// Idle or dependency stall not covered by a visible transfer.
    Wait,
    /// Slowdown slice beyond a kernel's nominal duration.
    Straggle,
    /// Delayed start / restart gap (recovery cost).
    Recovery,
}

impl Bucket {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Bucket::Compute => "compute",
            Bucket::ExposedComm => "exposed_comm",
            Bucket::Wait => "wait",
            Bucket::Straggle => "straggle",
            Bucket::Recovery => "recovery",
        }
    }
}

/// One hop of the reconstructed critical path: a half-open time interval
/// on one device, attributed to one bucket. Steps are reported in walk
/// order (makespan backwards to zero) and tile `[0, makespan]` exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Device the interval is charged to.
    pub device: u32,
    /// Attribution bucket.
    pub bucket: Bucket,
    /// Segment name (`attn`, `recv`, `wait`, ...; `idle` for gaps).
    pub name: String,
    /// Interval start, seconds.
    pub start_s: f64,
    /// Interval end, seconds.
    pub end_s: f64,
    /// Attention-division index active on the device at `start_s`
    /// (number of closed attn/attn_bwd kernels before it).
    pub division: u32,
}

impl PathStep {
    /// Interval length, seconds.
    pub fn seconds(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Per-device share of the critical path.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceAttribution {
    /// Device id.
    pub device: u32,
    /// Seconds of on-path compute.
    pub compute: f64,
    /// Seconds of on-path exposed communication.
    pub exposed_comm: f64,
    /// Seconds of on-path wait/idle.
    pub wait: f64,
    /// Seconds of on-path straggle.
    pub straggle: f64,
    /// Seconds of on-path recovery gaps.
    pub recovery: f64,
}

impl DeviceAttribution {
    /// Total on-path seconds charged to this device.
    pub fn total(&self) -> f64 {
        self.compute + self.exposed_comm + self.wait + self.straggle + self.recovery
    }
}

/// Per-(device, division) share of the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivisionAttribution {
    /// Device id.
    pub device: u32,
    /// Attention-division index on that device.
    pub division: u32,
    /// On-path seconds.
    pub seconds: f64,
}

/// Critical-path makespan attribution for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Trace makespan (latest device-track segment end), seconds.
    pub makespan: f64,
    /// On-path compute seconds.
    pub compute: f64,
    /// On-path exposed-communication seconds.
    pub exposed_comm: f64,
    /// On-path wait/idle seconds.
    pub wait: f64,
    /// On-path straggle seconds.
    pub straggle: f64,
    /// On-path recovery seconds.
    pub recovery: f64,
    /// Per-device breakdown, sorted by device id (on-path devices only).
    pub per_device: Vec<DeviceAttribution>,
    /// Per-(device, division) breakdown, sorted.
    pub per_division: Vec<DivisionAttribution>,
    /// The reconstructed path, makespan backwards to zero.
    pub steps: Vec<PathStep>,
}

impl Attribution {
    /// Sum of the five bucket components (should equal the makespan).
    pub fn components_total(&self) -> f64 {
        self.compute + self.exposed_comm + self.wait + self.straggle + self.recovery
    }

    /// Signed conservation error: `components_total() - makespan`.
    pub fn residual(&self) -> f64 {
        self.components_total() - self.makespan
    }

    /// True when components sum to the makespan within relative
    /// tolerance `rel_tol` (absolute floor `1e-15` for empty traces).
    pub fn sums_to_makespan(&self, rel_tol: f64) -> bool {
        self.residual().abs() <= rel_tol * self.makespan.abs().max(1e-15)
    }

    /// Bucket seconds charged to `device` across all buckets.
    pub fn device_total(&self, device: u32) -> f64 {
        self.per_device
            .iter()
            .find(|d| d.device == device)
            .map(DeviceAttribution::total)
            .unwrap_or(0.0)
    }
}

/// Per-device makespan-delta share in a differential comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDelta {
    /// Device id.
    pub device: u32,
    /// Faulted on-path seconds minus clean on-path seconds.
    pub delta: f64,
}

/// Differential attribution: blames the makespan delta between two traces
/// of the same workload on buckets and devices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionDelta {
    /// `faulted.makespan - clean.makespan`.
    pub makespan_delta: f64,
    /// Per-bucket deltas (faulted minus clean).
    pub compute_delta: f64,
    /// Exposed-comm delta.
    pub exposed_comm_delta: f64,
    /// Wait delta.
    pub wait_delta: f64,
    /// Straggle delta.
    pub straggle_delta: f64,
    /// Recovery delta.
    pub recovery_delta: f64,
    /// Per-device on-path deltas, sorted by device id.
    pub per_device: Vec<DeviceDelta>,
    /// Device with the largest positive on-path delta, if any.
    pub prime_suspect: Option<u32>,
    /// Suspect's share of the makespan delta (0 when the delta is
    /// non-positive).
    pub suspect_share: f64,
    /// Bucket with the largest positive delta, if any.
    pub dominant_bucket: Option<Bucket>,
}

/// Which slice of a mixed stream to analyze. `None` fields match
/// everything; the usual call sites pin at least `source` so executor and
/// simulator clocks never mix in one walk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnalysisScope {
    /// Restrict to one emitting layer.
    pub source: Option<Source>,
    /// Restrict to one phase.
    pub phase: Option<Phase>,
    /// Restrict to one iteration.
    pub iter: Option<u64>,
}

impl AnalysisScope {
    /// Scope over one simulated phase (the common case).
    pub fn sim(phase: Phase) -> Self {
        AnalysisScope {
            source: Some(Source::Sim),
            phase: Some(phase),
            iter: None,
        }
    }

    /// Scope over one simulated phase of one iteration.
    pub fn sim_iter(phase: Phase, iter: u64) -> Self {
        AnalysisScope {
            source: Some(Source::Sim),
            phase: Some(phase),
            iter: Some(iter),
        }
    }

    fn matches(&self, e: &Event) -> bool {
        self.source.is_none_or(|s| e.source == s)
            && self.phase.is_none_or(|p| e.phase == Some(p))
            && self.iter.is_none_or(|i| e.iter == Some(i))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SegKind {
    Compute,
    Wait,
    Straggle,
    Recovery,
}

#[derive(Debug, Clone)]
struct Seg {
    start: f64,
    end: f64,
    kind: SegKind,
    name_idx: usize,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Recv {
    start: f64,
    end: f64,
    from: Option<u32>,
}

/// Device-stream segment classification by span name. Returns `None` for
/// spans that are not part of the device timeline (planner stages, recv
/// transfers — those go on the net track).
fn classify(name: &str) -> Option<SegKind> {
    match name {
        "attn" | "attn_bwd" | "reduce" | "copy" | "comm_launch" => Some(SegKind::Compute),
        "wait" | "comm_wait" => Some(SegKind::Wait),
        "straggle" => Some(SegKind::Straggle),
        "delay" => Some(SegKind::Recovery),
        _ => None,
    }
}

/// Parses the `recv` span label `"from devN"` into the sender id.
fn sender_of(label: Option<&str>) -> Option<u32> {
    label?.strip_prefix("from dev")?.parse().ok()
}

struct Tracks {
    /// Device-stream segments per device, sorted by (start, seq).
    device: Vec<Vec<Seg>>,
    /// Inbound-transfer segments per receiving device, sorted by end.
    recv: Vec<Vec<Recv>>,
    /// Sorted ends of attn/attn_bwd kernels per device (division clock).
    attn_ends: Vec<Vec<f64>>,
    /// Interned segment names (indexes into `Seg::name_idx`).
    names: Vec<String>,
}

fn build_tracks(events: &[Event], scope: &AnalysisScope) -> Tracks {
    let mut device: Vec<Vec<Seg>> = Vec::new();
    let mut recv: Vec<Vec<Recv>> = Vec::new();
    let mut attn_ends: Vec<Vec<f64>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut name_idx = std::collections::BTreeMap::<String, usize>::new();
    let ensure = |device: &mut Vec<Vec<Seg>>,
                  recv: &mut Vec<Vec<Recv>>,
                  attn_ends: &mut Vec<Vec<f64>>,
                  d: usize| {
        while device.len() <= d {
            device.push(Vec::new());
            recv.push(Vec::new());
            attn_ends.push(Vec::new());
        }
    };
    for e in events {
        if e.kind != EventKind::Span || !scope.matches(e) {
            continue;
        }
        let Some(d) = e.device else { continue };
        let d = d as usize;
        let (start, end) = (e.start_s, e.start_s + e.dur_s);
        if e.name == "recv" {
            ensure(&mut device, &mut recv, &mut attn_ends, d);
            recv[d].push(Recv {
                start,
                end,
                from: sender_of(e.label.as_deref()),
            });
            continue;
        }
        let Some(kind) = classify(&e.name) else {
            continue;
        };
        ensure(&mut device, &mut recv, &mut attn_ends, d);
        let idx = *name_idx.entry(e.name.clone()).or_insert_with(|| {
            names.push(e.name.clone());
            names.len() - 1
        });
        device[d].push(Seg {
            start,
            end,
            kind,
            name_idx: idx,
            seq: e.seq,
        });
        if e.name == "attn" || e.name == "attn_bwd" {
            attn_ends[d].push(end);
        }
    }
    for segs in &mut device {
        segs.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.seq.cmp(&b.seq)));
    }
    for recvs in &mut recv {
        recvs.sort_by(|a, b| a.end.total_cmp(&b.end));
    }
    for ends in &mut attn_ends {
        ends.sort_by(f64::total_cmp);
    }
    Tracks {
        device,
        recv,
        attn_ends,
        names,
    }
}

/// Number of attn/attn_bwd kernels closed on `dev` at time `t` — the
/// division index active there.
fn division_at(tracks: &Tracks, dev: usize, t: f64, eps: f64) -> u32 {
    tracks.attn_ends[dev].partition_point(|&e| e <= t + eps) as u32
}

/// Reconstructs the critical path of the scoped trace and attributes the
/// makespan. See the module docs for the walk rules; the returned
/// [`Attribution`] satisfies `components_total() == makespan` up to f64
/// association error.
pub fn critical_path(events: &[Event], scope: &AnalysisScope) -> Attribution {
    let tracks = build_tracks(events, scope);
    let mut attr = Attribution::default();
    // Makespan = latest device-track segment end; the finishing device
    // starts the backward walk (ties broken towards the lowest id so the
    // walk is deterministic).
    let mut dev = usize::MAX;
    let mut makespan = 0.0f64;
    for (d, segs) in tracks.device.iter().enumerate() {
        for s in segs {
            if s.end > makespan {
                makespan = s.end;
                dev = d;
            }
        }
    }
    if dev == usize::MAX {
        return attr;
    }
    attr.makespan = makespan;
    let eps = makespan.abs() * 1e-9 + 1e-15;
    let total_segs: usize = tracks.device.iter().map(Vec::len).sum::<usize>()
        + tracks.recv.iter().map(Vec::len).sum::<usize>();
    let max_steps = 4 * total_segs + 16;
    let mut t = makespan;
    let mut steps: Vec<PathStep> = Vec::new();
    let push =
        |steps: &mut Vec<PathStep>, dev: usize, bucket: Bucket, name: &str, lo: f64, hi: f64| {
            if hi - lo <= 0.0 {
                return;
            }
            steps.push(PathStep {
                device: dev as u32,
                bucket,
                name: name.to_string(),
                start_s: lo,
                end_s: hi,
                division: division_at(&tracks, dev, lo, eps),
            });
        };
    while t > eps {
        if steps.len() >= max_steps {
            // Defensive: never loop forever on a malformed trace; charge
            // the unexplained prefix to wait so conservation still holds.
            push(&mut steps, dev, Bucket::Wait, "idle", 0.0, t);
            t = 0.0;
            break;
        }
        // Latest segment on this device starting strictly before t.
        let segs = &tracks.device[dev];
        let i = segs.partition_point(|s| s.start < t - eps);
        if i == 0 {
            // Nothing earlier on this device: unexplained prefix.
            push(&mut steps, dev, Bucket::Wait, "idle", 0.0, t);
            t = 0.0;
            break;
        }
        let s = segs[i - 1].clone();
        if s.end < t - eps {
            // Gap between the segment's end and t: idle stall.
            push(&mut steps, dev, Bucket::Wait, "idle", s.end, t);
            t = s.end;
            continue;
        }
        match s.kind {
            SegKind::Compute => {
                push(
                    &mut steps,
                    dev,
                    Bucket::Compute,
                    &tracks.names[s.name_idx],
                    s.start,
                    t,
                );
                t = s.start;
            }
            SegKind::Straggle => {
                push(
                    &mut steps,
                    dev,
                    Bucket::Straggle,
                    &tracks.names[s.name_idx],
                    s.start,
                    t,
                );
                t = s.start;
            }
            SegKind::Recovery => {
                push(
                    &mut steps,
                    dev,
                    Bucket::Recovery,
                    &tracks.names[s.name_idx],
                    s.start,
                    t,
                );
                t = s.start;
            }
            SegKind::Wait => {
                // The wait was released by the last inbound transfer that
                // completed inside it; follow the edge to the sender.
                let released = tracks.recv[dev]
                    .iter()
                    .rev()
                    .find(|r| r.end <= t + eps && r.end > s.start + eps && r.start < t - eps);
                match released {
                    Some(r) => {
                        let r = r.clone();
                        let hand_off = r.end.min(t);
                        if hand_off < t - eps {
                            // Wait outlived the transfer (e.g. executor
                            // round-robin slack): the tail is plain wait.
                            push(
                                &mut steps,
                                dev,
                                Bucket::Wait,
                                &tracks.names[s.name_idx],
                                hand_off,
                                t,
                            );
                        }
                        push(
                            &mut steps,
                            dev,
                            Bucket::ExposedComm,
                            "recv",
                            r.start,
                            hand_off,
                        );
                        t = r.start;
                        if let Some(from) = r.from {
                            if (from as usize) < tracks.device.len() {
                                dev = from as usize;
                            }
                        }
                    }
                    None => {
                        // No visible transfer: a comm_wait with no recv
                        // track (executor streams) is exposed comm by
                        // definition; a bare wait is a dependency stall.
                        let bucket = if tracks.names[s.name_idx] == "comm_wait" {
                            Bucket::ExposedComm
                        } else {
                            Bucket::Wait
                        };
                        push(
                            &mut steps,
                            dev,
                            bucket,
                            &tracks.names[s.name_idx],
                            s.start,
                            t,
                        );
                        t = s.start;
                    }
                }
            }
        }
    }
    // Residual sliver below eps: fold into the last step (or a wait stub)
    // so the tiling of [0, makespan] is exact.
    if t > 0.0 {
        if let Some(last) = steps.last_mut() {
            last.start_s = 0.0;
        } else {
            push(&mut steps, dev, Bucket::Wait, "idle", 0.0, t);
        }
    }
    // Aggregate buckets in walk order (fixed summation order keeps the
    // result bitwise deterministic).
    let mut per_dev = std::collections::BTreeMap::<u32, DeviceAttribution>::new();
    let mut per_div = std::collections::BTreeMap::<(u32, u32), f64>::new();
    for st in &steps {
        let secs = st.seconds();
        match st.bucket {
            Bucket::Compute => attr.compute += secs,
            Bucket::ExposedComm => attr.exposed_comm += secs,
            Bucket::Wait => attr.wait += secs,
            Bucket::Straggle => attr.straggle += secs,
            Bucket::Recovery => attr.recovery += secs,
        }
        let d = per_dev
            .entry(st.device)
            .or_insert_with(|| DeviceAttribution {
                device: st.device,
                ..DeviceAttribution::default()
            });
        match st.bucket {
            Bucket::Compute => d.compute += secs,
            Bucket::ExposedComm => d.exposed_comm += secs,
            Bucket::Wait => d.wait += secs,
            Bucket::Straggle => d.straggle += secs,
            Bucket::Recovery => d.recovery += secs,
        }
        *per_div.entry((st.device, st.division)).or_insert(0.0) += secs;
    }
    attr.per_device = per_dev.into_values().collect();
    attr.per_division = per_div
        .into_iter()
        .map(|((device, division), seconds)| DivisionAttribution {
            device,
            division,
            seconds,
        })
        .collect();
    attr.steps = steps;
    attr
}

/// Differential mode: blames `faulted.makespan - clean.makespan` on
/// buckets and devices. Positive deltas mean the faulted trace spends
/// more on-path time there.
pub fn diff_attribution(clean: &Attribution, faulted: &Attribution) -> AttributionDelta {
    let mut delta = AttributionDelta {
        makespan_delta: faulted.makespan - clean.makespan,
        compute_delta: faulted.compute - clean.compute,
        exposed_comm_delta: faulted.exposed_comm - clean.exposed_comm,
        wait_delta: faulted.wait - clean.wait,
        straggle_delta: faulted.straggle - clean.straggle,
        recovery_delta: faulted.recovery - clean.recovery,
        ..AttributionDelta::default()
    };
    let mut devices = std::collections::BTreeSet::<u32>::new();
    for d in clean.per_device.iter().chain(&faulted.per_device) {
        devices.insert(d.device);
    }
    for d in devices {
        delta.per_device.push(DeviceDelta {
            device: d,
            delta: faulted.device_total(d) - clean.device_total(d),
        });
    }
    let suspect = delta
        .per_device
        .iter()
        .filter(|d| d.delta > 0.0)
        .max_by(|a, b| a.delta.total_cmp(&b.delta).then(b.device.cmp(&a.device)));
    if let Some(s) = suspect {
        delta.prime_suspect = Some(s.device);
        delta.suspect_share = if delta.makespan_delta > 0.0 {
            s.delta / delta.makespan_delta
        } else {
            0.0
        };
    }
    let buckets = [
        (Bucket::Compute, delta.compute_delta),
        (Bucket::ExposedComm, delta.exposed_comm_delta),
        (Bucket::Wait, delta.wait_delta),
        (Bucket::Straggle, delta.straggle_delta),
        (Bucket::Recovery, delta.recovery_delta),
    ];
    delta.dominant_bucket = buckets
        .iter()
        .filter(|(_, v)| *v > 0.0)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(b, _)| *b);
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, dev: u32, start: f64, end: f64) -> Event {
        Event::span(Source::Sim, name)
            .with_device(dev)
            .with_phase(Phase::Fwd)
            .with_time(start, end - start)
    }

    #[test]
    fn empty_trace_is_zero() {
        let a = critical_path(&[], &AnalysisScope::default());
        assert_eq!(a.makespan, 0.0);
        assert!(a.steps.is_empty());
        assert!(a.sums_to_makespan(1e-9));
    }

    #[test]
    fn single_device_is_all_compute() {
        let events = vec![span("attn", 0, 0.0, 1.0), span("reduce", 0, 1.0, 1.5)];
        let a = critical_path(&events, &AnalysisScope::default());
        assert!((a.makespan - 1.5).abs() < 1e-12);
        assert!((a.compute - 1.5).abs() < 1e-12);
        assert_eq!(a.exposed_comm, 0.0);
        assert!(a.sums_to_makespan(1e-9));
        assert_eq!(a.steps.len(), 2);
        assert_eq!(a.steps[0].name, "reduce");
    }

    #[test]
    fn wait_follows_transfer_to_sender() {
        // dev0 computes [0,1], sends; dev1 waits [0,1.5] for a transfer
        // [0.5,1.5], then computes [1.5,2].
        let events = vec![
            span("attn", 0, 0.0, 1.0),
            span("wait", 1, 0.0, 1.5),
            span("recv", 1, 0.5, 1.5).with_label("from dev0"),
            span("attn", 1, 1.5, 2.0),
        ];
        let a = critical_path(&events, &AnalysisScope::default());
        assert!((a.makespan - 2.0).abs() < 1e-12);
        assert!((a.exposed_comm - 1.0).abs() < 1e-12, "{a:?}");
        assert!((a.compute - 1.0).abs() < 1e-12, "{a:?}");
        assert!(a.sums_to_makespan(1e-9));
        // Path visits dev1 then hops to dev0 through the transfer.
        let devs: Vec<u32> = a.steps.iter().map(|s| s.device).collect();
        assert_eq!(devs, vec![1, 1, 0]);
        assert_eq!(a.steps[1].bucket, Bucket::ExposedComm);
    }

    #[test]
    fn straggle_and_delay_buckets() {
        let events = vec![
            span("delay", 0, 0.0, 0.5),
            span("attn", 0, 0.5, 1.5),
            span("straggle", 0, 1.5, 3.5),
            span("attn", 1, 0.0, 1.0),
        ];
        let a = critical_path(&events, &AnalysisScope::default());
        assert!((a.makespan - 3.5).abs() < 1e-12);
        assert!((a.straggle - 2.0).abs() < 1e-12);
        assert!((a.recovery - 0.5).abs() < 1e-12);
        assert!((a.compute - 1.0).abs() < 1e-12);
        assert!(a.sums_to_makespan(1e-9));
    }

    #[test]
    fn comm_wait_without_recv_is_exposed() {
        let events = vec![
            Event::span(Source::Executor, "comm_wait")
                .with_device(0)
                .with_time(0.0, 1.0),
            Event::span(Source::Executor, "attn")
                .with_device(0)
                .with_time(1.0, 1.0),
        ];
        let a = critical_path(&events, &AnalysisScope::default());
        assert!((a.exposed_comm - 1.0).abs() < 1e-12);
        assert!((a.compute - 1.0).abs() < 1e-12);
        assert!(a.sums_to_makespan(1e-9));
    }

    #[test]
    fn scope_filters_sources() {
        let events = vec![
            span("attn", 0, 0.0, 1.0),
            Event::span(Source::Executor, "attn")
                .with_device(0)
                .with_time(0.0, 9.0),
        ];
        let a = critical_path(&events, &AnalysisScope::sim(Phase::Fwd));
        assert!((a.makespan - 1.0).abs() < 1e-12);
    }

    #[test]
    fn differential_blames_straggler_device() {
        let clean = critical_path(
            &[span("attn", 0, 0.0, 1.0), span("attn", 1, 0.0, 1.0)],
            &AnalysisScope::default(),
        );
        let faulted = critical_path(
            &[
                span("attn", 0, 0.0, 1.0),
                span("straggle", 0, 1.0, 4.0),
                span("attn", 1, 0.0, 1.0),
            ],
            &AnalysisScope::default(),
        );
        let d = diff_attribution(&clean, &faulted);
        assert!((d.makespan_delta - 3.0).abs() < 1e-12);
        assert_eq!(d.prime_suspect, Some(0));
        assert!(d.suspect_share >= 0.99, "{d:?}");
        assert_eq!(d.dominant_bucket, Some(Bucket::Straggle));
    }

    #[test]
    fn division_clock_counts_closed_attn() {
        let events = vec![
            span("attn", 0, 0.0, 1.0),
            span("reduce", 0, 1.0, 1.2),
            span("attn", 0, 1.2, 2.0),
        ];
        let a = critical_path(&events, &AnalysisScope::default());
        // Last attn starts in division 1 (one attn closed before it).
        assert_eq!(a.steps[0].division, 1);
        assert_eq!(a.steps[2].division, 0);
    }
}
