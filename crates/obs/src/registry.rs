//! Metric registry: counters, gauges and fixed-bucket histograms
//! aggregated from an event stream (or updated directly), with a
//! Prometheus-style text snapshot.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// Default duration buckets (seconds): log-spaced 1µs .. 10s, chosen so
/// both real executor kernels and simulated segments land mid-range.
pub const DURATION_BUCKETS: [f64; 16] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 1.0,
    10.0,
];

/// A fixed-bucket histogram: cumulative-free bucket counts over sorted
/// upper bounds plus an overflow bucket, with sum/count for means.
/// Merging requires identical bounds, which the fixed default guarantees
/// across devices and runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&DURATION_BUCKETS)
    }
}

impl Histogram {
    /// A histogram over the given ascending upper bounds (deduplicated;
    /// one overflow bucket is appended implicitly).
    pub fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.to_vec();
        b.sort_by(f64::total_cmp);
        b.dedup();
        let n = b.len();
        Histogram {
            bounds: b,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bounds (without the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile `q` in [0, 1] by linear interpolation within
    /// the containing bucket (0 when empty; overflow clamps to the last
    /// bound).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo_seen = seen as f64;
            seen += c;
            if (seen as f64) >= rank {
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: clamp to the last finite bound.
                    return *self.bounds.last().unwrap_or(&0.0);
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (rank - lo_seen) / c as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
        }
        *self.bounds.last().unwrap_or(&0.0)
    }

    /// Merges `other` into `self`. Errs when bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds differ: {} vs {} buckets",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }
}

/// Aggregated counters, gauges and histograms. Keys are `name` plus the
/// event's dimension labels, so ordering (and the rendered snapshot) is
/// deterministic via `BTreeMap`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`.
    pub fn inc(&mut self, key: impl Into<String>, delta: f64) {
        *self.counters.entry(key.into()).or_insert(0.0) += delta;
    }

    /// Sets gauge `key` to `value` (last write wins).
    pub fn set_gauge(&mut self, key: impl Into<String>, value: f64) {
        self.gauges.insert(key.into(), value);
    }

    /// Counter value, 0 if absent.
    pub fn counter(&self, key: &str) -> f64 {
        self.counters.get(key).copied().unwrap_or(0.0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Records `v` into the histogram at `key`, creating it with the
    /// default duration buckets on first touch.
    pub fn observe(&mut self, key: impl Into<String>, v: f64) {
        self.histograms.entry(key.into()).or_default().record(v);
    }

    /// Histogram at `key`, if any samples were recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All histogram keys, sorted.
    pub fn histogram_keys(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other's value (last write wins), histograms merge bucket-wise.
    /// Errs when a shared histogram key has different bounds.
    pub fn merge(&mut self, other: &Registry) -> Result<(), String> {
        for (k, v) in &other.counters {
            self.inc(k.clone(), *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h).map_err(|e| format!("{k}: {e}"))?,
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// Folds an event stream into a registry:
    ///
    /// - `Counter` events add `value` to the counter keyed by name+labels;
    /// - `Gauge` events set the gauge keyed by name+labels;
    /// - `Span` events additionally accumulate `<name>_seconds_total` and
    ///   `<name>_total` counters, so stage timings are queryable without
    ///   walking the raw stream;
    /// - kernel / comm spans (`attn`, `attn_bwd`, `reduce`, `copy`,
    ///   `comm_wait`, `recv`, `wait`) also feed per-key
    ///   `<name>_duration_seconds` histograms with the default buckets.
    pub fn from_events(events: &[Event]) -> Self {
        let mut reg = Registry::new();
        for e in events {
            let key = metric_key(e);
            match e.kind {
                EventKind::Counter => reg.inc(key, e.value.unwrap_or(1.0)),
                EventKind::Gauge => reg.set_gauge(key, e.value.unwrap_or(0.0)),
                EventKind::Span => {
                    reg.inc(format!("{key}_count"), 1.0);
                    reg.inc(format!("{key}_seconds_total"), e.dur_s);
                    if matches!(
                        e.name.as_str(),
                        "attn" | "attn_bwd" | "reduce" | "copy" | "comm_wait" | "recv" | "wait"
                    ) {
                        reg.observe(duration_key(e), e.dur_s);
                    }
                }
                EventKind::Instant => reg.inc(format!("{key}_count"), 1.0),
            }
        }
        reg
    }

    /// Prometheus-style text exposition: `# TYPE` headers plus one
    /// `name value` line per metric, sorted by key; histograms render as
    /// cumulative `_bucket{le=...}` series plus `_sum` / `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("# TYPE {} counter\n{} {v}\n", base_name(k), k));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n{} {v}\n", base_name(k), k));
        }
        for (k, h) in &self.histograms {
            let base = base_name(k);
            out.push_str(&format!("# TYPE {base} histogram\n"));
            let mut cum = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cum += c;
                let le = if i < h.bounds.len() {
                    format!("{}", h.bounds[i])
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!(
                    "{} {cum}\n",
                    splice_label(k, &format!("le=\"{le}\""), "_bucket")
                ));
            }
            out.push_str(&format!("{} {}\n", suffixed(k, "_sum"), h.sum));
            out.push_str(&format!("{} {}\n", suffixed(k, "_count"), h.count));
        }
        out
    }
}

/// `<name>_duration_seconds{labels}` histogram key for a span event.
fn duration_key(e: &Event) -> String {
    let key = metric_key(e);
    match key.split_once('{') {
        Some((name, rest)) => format!("{name}_duration_seconds{{{rest}"),
        None => format!("{key}_duration_seconds"),
    }
}

/// Moves a metric-name suffix in front of the label braces:
/// `attn{a="b"}` + `_sum` → `attn_sum{a="b"}`.
fn suffixed(key: &str, suffix: &str) -> String {
    match key.split_once('{') {
        Some((name, rest)) => format!("{name}{suffix}{{{rest}"),
        None => format!("{key}{suffix}"),
    }
}

/// Splices an extra label into a `name{labels}` key, appending `suffix`
/// to the metric name: `attn{a="b"}` + `le="1"` + `_bucket` →
/// `attn_bucket{a="b",le="1"}`.
fn splice_label(key: &str, label: &str, suffix: &str) -> String {
    match key.split_once('{') {
        Some((name, rest)) => {
            let inner = rest.trim_end_matches('}');
            if inner.is_empty() {
                format!("{name}{suffix}{{{label}}}")
            } else {
                format!("{name}{suffix}{{{inner},{label}}}")
            }
        }
        None => format!("{key}{suffix}{{{label}}}"),
    }
}

/// `name{source="...",device="...",...}` — Prometheus-flavoured key built
/// from the event's dimensions (timing excluded).
fn metric_key(e: &Event) -> String {
    let mut labels: Vec<String> = vec![format!("source=\"{}\"", e.source.label())];
    if let Some(d) = e.device {
        labels.push(format!("device=\"{d}\""));
    }
    if let Some(p) = e.phase {
        labels.push(format!("phase=\"{}\"", p.label()));
    }
    if let Some(l) = &e.label {
        labels.push(format!("label=\"{l}\""));
    }
    format!("{}{{{}}}", e.name, labels.join(","))
}

fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.inc("a", 1.0);
        r.inc("a", 2.0);
        r.set_gauge("g", 5.0);
        r.set_gauge("g", 7.0);
        assert_eq!(r.counter("a"), 3.0);
        assert_eq!(r.gauge("g"), Some(7.0));
        assert_eq!(r.counter("missing"), 0.0);
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn from_events_aggregates() {
        let events = vec![
            Event::counter(Source::Planner, "plan_cache_hit", 1.0),
            Event::counter(Source::Planner, "plan_cache_hit", 1.0),
            Event::gauge(Source::Executor, "peak_buffer_bytes", 1024.0).with_device(0),
            Event::span(Source::Planner, "coarsen").with_time(0.0, 0.5),
        ];
        let r = Registry::from_events(&events);
        assert_eq!(r.counter("plan_cache_hit{source=\"planner\"}"), 2.0);
        assert_eq!(
            r.gauge("peak_buffer_bytes{source=\"executor\",device=\"0\"}"),
            Some(1024.0)
        );
        assert_eq!(r.counter("coarsen{source=\"planner\"}_count"), 1.0);
        assert!((r.counter("coarsen{source=\"planner\"}_seconds_total") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_record_quantile_merge() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.5).abs() < 1e-12);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        // Median falls in the (1, 2] bucket.
        let p50 = h.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "p50 {p50}");
        // Overflow clamps to the last bound.
        assert_eq!(h.quantile(1.0), 4.0);
        let mut other = Histogram::new(&[1.0, 2.0, 4.0]);
        other.record(0.1);
        h.merge(&other).unwrap();
        assert_eq!(h.count(), 6);
        assert_eq!(h.counts()[0], 2);
        assert!(h.merge(&Histogram::new(&[1.0])).is_err(), "bounds differ");
        assert_eq!(Histogram::new(&[]).quantile(0.5), 0.0);
    }

    #[test]
    fn from_events_builds_duration_histograms() {
        let events = vec![
            Event::span(Source::Executor, "attn")
                .with_device(0)
                .with_time(0.0, 2e-3),
            Event::span(Source::Executor, "attn")
                .with_device(0)
                .with_time(2e-3, 3e-3),
            Event::span(Source::Executor, "coarsen").with_time(0.0, 1.0),
        ];
        let r = Registry::from_events(&events);
        let h = r
            .histogram("attn_duration_seconds{source=\"executor\",device=\"0\"}")
            .expect("kernel histogram");
        assert_eq!(h.count(), 2);
        // Non-kernel spans get no histogram.
        assert!(r
            .histogram_keys()
            .all(|k| !k.starts_with("coarsen_duration")));
        let text = r.render_prometheus();
        assert!(
            text.contains(
                "attn_duration_seconds_bucket{source=\"executor\",device=\"0\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(text.contains("# TYPE attn_duration_seconds histogram"));
        assert!(text.contains("attn_duration_seconds_sum{source=\"executor\",device=\"0\"}"));
    }

    #[test]
    fn registry_merge_combines_all_kinds() {
        let mut a = Registry::new();
        a.inc("c", 1.0);
        a.observe("h", 1e-3);
        let mut b = Registry::new();
        b.inc("c", 2.0);
        b.set_gauge("g", 5.0);
        b.observe("h", 2e-3);
        b.observe("h2", 1.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("c"), 3.0);
        assert_eq!(a.gauge("g"), Some(5.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    fn prometheus_snapshot_is_sorted_text() {
        let mut r = Registry::new();
        r.inc("b_total", 2.0);
        r.inc("a_total", 1.0);
        r.set_gauge("z_gauge", 3.5);
        let text = r.render_prometheus();
        let a = text.find("a_total 1").unwrap();
        let b = text.find("b_total 2").unwrap();
        assert!(a < b, "sorted by key");
        assert!(text.contains("# TYPE z_gauge gauge\nz_gauge 3.5\n"));
    }
}
