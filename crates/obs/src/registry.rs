//! Metric registry: counters and gauges aggregated from an event stream
//! (or updated directly), with a Prometheus-style text snapshot.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Aggregated counters and gauges. Keys are `name` plus the event's
/// dimension labels, so ordering (and the rendered snapshot) is
/// deterministic via `BTreeMap`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key`.
    pub fn inc(&mut self, key: impl Into<String>, delta: f64) {
        *self.counters.entry(key.into()).or_insert(0.0) += delta;
    }

    /// Sets gauge `key` to `value` (last write wins).
    pub fn set_gauge(&mut self, key: impl Into<String>, value: f64) {
        self.gauges.insert(key.into(), value);
    }

    /// Counter value, 0 if absent.
    pub fn counter(&self, key: &str) -> f64 {
        self.counters.get(key).copied().unwrap_or(0.0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Folds an event stream into a registry:
    ///
    /// - `Counter` events add `value` to the counter keyed by name+labels;
    /// - `Gauge` events set the gauge keyed by name+labels;
    /// - `Span` events additionally accumulate `<name>_seconds_total` and
    ///   `<name>_total` counters, so stage timings are queryable without
    ///   walking the raw stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut reg = Registry::new();
        for e in events {
            let key = metric_key(e);
            match e.kind {
                EventKind::Counter => reg.inc(key, e.value.unwrap_or(1.0)),
                EventKind::Gauge => reg.set_gauge(key, e.value.unwrap_or(0.0)),
                EventKind::Span => {
                    reg.inc(format!("{key}_count"), 1.0);
                    reg.inc(format!("{key}_seconds_total"), e.dur_s);
                }
                EventKind::Instant => reg.inc(format!("{key}_count"), 1.0),
            }
        }
        reg
    }

    /// Prometheus-style text exposition: `# TYPE` headers plus one
    /// `name value` line per metric, sorted by key.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("# TYPE {} counter\n{} {v}\n", base_name(k), k));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n{} {v}\n", base_name(k), k));
        }
        out
    }
}

/// `name{source="...",device="...",...}` — Prometheus-flavoured key built
/// from the event's dimensions (timing excluded).
fn metric_key(e: &Event) -> String {
    let mut labels: Vec<String> = vec![format!("source=\"{}\"", e.source.label())];
    if let Some(d) = e.device {
        labels.push(format!("device=\"{d}\""));
    }
    if let Some(p) = e.phase {
        labels.push(format!("phase=\"{}\"", p.label()));
    }
    if let Some(l) = &e.label {
        labels.push(format!("label=\"{l}\""));
    }
    format!("{}{{{}}}", e.name, labels.join(","))
}

fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.inc("a", 1.0);
        r.inc("a", 2.0);
        r.set_gauge("g", 5.0);
        r.set_gauge("g", 7.0);
        assert_eq!(r.counter("a"), 3.0);
        assert_eq!(r.gauge("g"), Some(7.0));
        assert_eq!(r.counter("missing"), 0.0);
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn from_events_aggregates() {
        let events = vec![
            Event::counter(Source::Planner, "plan_cache_hit", 1.0),
            Event::counter(Source::Planner, "plan_cache_hit", 1.0),
            Event::gauge(Source::Executor, "peak_buffer_bytes", 1024.0).with_device(0),
            Event::span(Source::Planner, "coarsen").with_time(0.0, 0.5),
        ];
        let r = Registry::from_events(&events);
        assert_eq!(r.counter("plan_cache_hit{source=\"planner\"}"), 2.0);
        assert_eq!(
            r.gauge("peak_buffer_bytes{source=\"executor\",device=\"0\"}"),
            Some(1024.0)
        );
        assert_eq!(r.counter("coarsen{source=\"planner\"}_count"), 1.0);
        assert!((r.counter("coarsen{source=\"planner\"}_seconds_total") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prometheus_snapshot_is_sorted_text() {
        let mut r = Registry::new();
        r.inc("b_total", 2.0);
        r.inc("a_total", 1.0);
        r.set_gauge("z_gauge", 3.5);
        let text = r.render_prometheus();
        let a = text.find("a_total 1").unwrap();
        let b = text.find("b_total 2").unwrap();
        assert!(a < b, "sorted by key");
        assert!(text.contains("# TYPE z_gauge gauge\nz_gauge 3.5\n"));
    }
}
