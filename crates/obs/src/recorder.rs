//! Flight recorder: a bounded ring-buffer sink that is cheap enough to
//! leave always-on, plus schema-versioned postmortem bundles.
//!
//! [`FlightRecorder`] implements [`ObsSink`] with O(1) per-event cost and
//! bounded memory (a `VecDeque` ring of the last N events). When a
//! *trigger* event arrives — a verifier diagnostic, a planner tier
//! fallback, a device loss / recovery, or a gate failure — it freezes a
//! [`PostmortemBundle`]: the ring contents (triggering event included),
//! the incident timeline fed via [`FlightRecorder::note_incident`], a
//! Prometheus registry snapshot, and a critical-path summary when the
//! ring holds an analyzable timeline. Bundles are buffered in memory
//! (recording never touches the filesystem) and flushed by the owner via
//! [`FlightRecorder::write_all`] to `results/POSTMORTEM_*.json`.
//!
//! File names are deterministic — trigger name plus a per-recorder dump
//! index — so CI artifacts are stable across identical runs.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::analysis::{critical_path, AnalysisScope, Attribution};
use crate::detect::Incident;
use crate::event::{Event, Source};
use crate::registry::Registry;
use crate::sink::ObsSink;

/// Postmortem bundle schema version; bump on breaking layout changes.
pub const POSTMORTEM_SCHEMA_VERSION: u64 = 1;

/// Event names that freeze a postmortem when they arrive.
pub const DEFAULT_TRIGGERS: [&str; 5] = [
    "verify_diagnostic",
    "tier_fallback",
    "device_lost",
    "recovery_plan",
    "gate_failure",
];

/// Flight-recorder tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// Ring capacity: the last N events kept.
    pub capacity: usize,
    /// Event names that trigger a postmortem dump.
    pub triggers: Vec<String>,
    /// Maximum buffered bundles (older triggers win; later ones are
    /// dropped once full so a trigger storm cannot grow memory).
    pub max_pending: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 512,
            triggers: DEFAULT_TRIGGERS.iter().map(|s| s.to_string()).collect(),
            max_pending: 8,
        }
    }
}

/// A schema-versioned snapshot of recorder state at trigger time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostmortemBundle {
    /// [`POSTMORTEM_SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Name of the triggering event.
    pub trigger: String,
    /// The triggering event itself.
    pub trigger_event: Event,
    /// The last-N events in the ring, trigger included, in seq order.
    pub events: Vec<Event>,
    /// Incident timeline noted up to the trigger.
    pub incidents: Vec<Incident>,
    /// Prometheus text snapshot aggregated from `events`.
    pub registry_prom: String,
    /// Critical-path attribution of the ring's timeline, when it holds
    /// analyzable device spans.
    pub critical_path: Option<Attribution>,
    /// Per-recorder dump index (part of the file name).
    pub dump_index: u64,
}

impl PostmortemBundle {
    /// Deterministic artifact file name, e.g.
    /// `POSTMORTEM_verify_diagnostic_0000.json`.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .trigger
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("POSTMORTEM_{safe}_{:04}.json", self.dump_index)
    }

    /// Serializes the bundle to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bundle serializes")
    }

    /// Writes the bundle into `dir` (created if needed); returns the
    /// written path.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Structural validity check used by tests and CI: schema version
    /// matches, the trigger event is present in the ring snapshot, and
    /// any attribution conserves its makespan.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != POSTMORTEM_SCHEMA_VERSION {
            return Err(format!(
                "schema version {} != {POSTMORTEM_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.trigger_event.name != self.trigger {
            return Err(format!(
                "trigger event name {:?} != trigger {:?}",
                self.trigger_event.name, self.trigger
            ));
        }
        if !self
            .events
            .iter()
            .any(|e| e.identity() == self.trigger_event.identity())
        {
            return Err("trigger event missing from ring snapshot".into());
        }
        if let Some(cp) = &self.critical_path {
            if !cp.sums_to_makespan(1e-6) {
                return Err(format!(
                    "critical path residual {} on makespan {}",
                    cp.residual(),
                    cp.makespan
                ));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct RecorderState {
    next_seq: u64,
    ring: VecDeque<Event>,
    incidents: Vec<Incident>,
    pending: Vec<PostmortemBundle>,
    dumps: u64,
}

/// Always-on bounded ring sink with trigger-driven postmortem capture.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    state: Mutex<RecorderState>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(RecorderConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with explicit tuning.
    pub fn new(cfg: RecorderConfig) -> Self {
        FlightRecorder {
            cfg,
            state: Mutex::new(RecorderState::default()),
        }
    }

    /// A recorder keeping the last `capacity` events with default
    /// triggers.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder::new(RecorderConfig {
            capacity,
            ..RecorderConfig::default()
        })
    }

    /// Notes a confirmed incident on the recorder's timeline (detectors
    /// run outside the sink; their confirmed output is folded in here so
    /// postmortems carry it).
    pub fn note_incident(&self, incident: Incident) {
        self.state.lock().unwrap().incidents.push(incident);
    }

    /// Snapshot of the ring, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.state.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Number of buffered postmortem bundles.
    pub fn pending(&self) -> usize {
        self.state.lock().unwrap().pending.len()
    }

    /// Takes the buffered bundles, leaving the recorder running.
    pub fn take_postmortems(&self) -> Vec<PostmortemBundle> {
        std::mem::take(&mut self.state.lock().unwrap().pending)
    }

    /// Manually freezes a bundle (e.g. on a gate failure observed outside
    /// the event stream). The synthetic trigger event is recorded first
    /// so the bundle always contains it.
    pub fn force_dump(&self, trigger: &str) -> PostmortemBundle {
        let ev = Event::instant(Source::Planner, trigger).with_label("forced");
        let mut st = self.state.lock().unwrap();
        let ev = Self::push(&self.cfg, &mut st, ev);
        Self::freeze(&mut st, ev)
    }

    /// Writes all buffered bundles into `dir`; returns the written paths.
    pub fn write_all(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let bundles = self.take_postmortems();
        let mut paths = Vec::with_capacity(bundles.len());
        for b in &bundles {
            paths.push(b.write(dir)?);
        }
        Ok(paths)
    }

    fn push(cfg: &RecorderConfig, st: &mut RecorderState, mut event: Event) -> Event {
        event.seq = st.next_seq;
        st.next_seq += 1;
        if st.ring.len() >= cfg.capacity.max(1) {
            st.ring.pop_front();
        }
        st.ring.push_back(event.clone());
        event
    }

    fn freeze(st: &mut RecorderState, trigger_event: Event) -> PostmortemBundle {
        let events: Vec<Event> = st.ring.iter().cloned().collect();
        // Prefer the simulated timeline when present (consistent clock);
        // fall back to executor spans.
        let scope = if events.iter().any(|e| e.source == Source::Sim) {
            AnalysisScope {
                source: Some(Source::Sim),
                ..AnalysisScope::default()
            }
        } else {
            AnalysisScope {
                source: Some(Source::Executor),
                ..AnalysisScope::default()
            }
        };
        let cp = critical_path(&events, &scope);
        let bundle = PostmortemBundle {
            schema_version: POSTMORTEM_SCHEMA_VERSION,
            trigger: trigger_event.name.clone(),
            trigger_event,
            registry_prom: Registry::from_events(&events).render_prometheus(),
            critical_path: (cp.makespan > 0.0).then_some(cp),
            events,
            incidents: st.incidents.clone(),
            dump_index: st.dumps,
        };
        st.dumps += 1;
        bundle
    }
}

impl ObsSink for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut st = self.state.lock().unwrap();
        let event = Self::push(&self.cfg, &mut st, event);
        let triggered = self.cfg.triggers.iter().any(|t| t == &event.name);
        // Recovery-during-recovery must always leave a postmortem: a
        // `recovery_plan` at cascade depth >= 2 (the event value carries
        // the depth) bypasses the pending cap, so even a trigger storm
        // that filled the buffer cannot swallow a cascade's evidence.
        let cascade = event.name == "recovery_plan" && event.value.is_some_and(|v| v >= 2.0);
        if triggered && (cascade || st.pending.len() < self.cfg.max_pending) {
            let bundle = Self::freeze(&mut st, event);
            st.pending.push(bundle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn sim_span(name: &str, dev: u32, start: f64, end: f64) -> Event {
        Event::span(Source::Sim, name)
            .with_device(dev)
            .with_phase(Phase::Fwd)
            .with_time(start, end - start)
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.record(Event::counter(Source::Planner, format!("c{i}"), 1.0));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].name, "c6");
        assert_eq!(snap[3].name, "c9");
        assert_eq!(snap[3].seq, 9, "seq survives eviction");
    }

    #[test]
    fn trigger_freezes_bundle_with_trigger_event() {
        let rec = FlightRecorder::with_capacity(16);
        rec.record(sim_span("attn", 0, 0.0, 1.0));
        rec.record(Event::instant(Source::Planner, "tier_fallback").with_label("greedy"));
        assert_eq!(rec.pending(), 1);
        let bundles = rec.take_postmortems();
        assert_eq!(rec.pending(), 0);
        let b = &bundles[0];
        b.validate().expect("valid bundle");
        assert_eq!(b.trigger, "tier_fallback");
        assert_eq!(b.events.len(), 2);
        assert!(b.critical_path.is_some());
        assert!(b.registry_prom.contains("attn"));
    }

    #[test]
    fn incidents_ride_along_and_pending_is_capped() {
        let rec = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            max_pending: 2,
            ..RecorderConfig::default()
        });
        rec.note_incident(Incident {
            kind: crate::detect::IncidentKind::Straggler {
                device: 0,
                slowdown: 4.0,
            },
            at_s: 1.0,
            samples: 3,
            score: 2.0,
        });
        for _ in 0..5 {
            rec.record(Event::instant(Source::Planner, "verify_diagnostic").with_label("bad wait"));
        }
        assert_eq!(rec.pending(), 2, "bundle buffer is capped");
        let b = rec.take_postmortems().remove(0);
        assert_eq!(b.incidents.len(), 1);
        b.validate().unwrap();
    }

    #[test]
    fn cascade_recovery_bypasses_pending_cap() {
        let rec = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            max_pending: 1,
            ..RecorderConfig::default()
        });
        // Fill the pending buffer with an ordinary trigger, then a
        // depth-1 recovery (dropped: buffer full), then a depth-2
        // cascade (must freeze anyway).
        rec.record(Event::instant(Source::Planner, "device_lost").with_device(0));
        assert_eq!(rec.pending(), 1);
        rec.record(Event::instant(Source::Planner, "recovery_plan").with_value(1.0));
        assert_eq!(rec.pending(), 1, "depth-1 respects the cap");
        rec.record(Event::instant(Source::Planner, "recovery_plan").with_value(2.0));
        assert_eq!(rec.pending(), 2, "cascade bypasses the cap");
        let bundles = rec.take_postmortems();
        assert_eq!(bundles[1].trigger, "recovery_plan");
        assert_eq!(bundles[1].trigger_event.value, Some(2.0));
        bundles[1].validate().unwrap();
    }

    #[test]
    fn forced_dump_and_round_trip() {
        let rec = FlightRecorder::default();
        rec.record(sim_span("attn", 1, 0.0, 2.0));
        let b = rec.force_dump("gate_failure");
        b.validate().unwrap();
        assert_eq!(b.trigger, "gate_failure");
        let back: PostmortemBundle = serde_json::from_str(&b.to_json()).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.file_name(), "POSTMORTEM_gate_failure_0000.json");
    }

    #[test]
    fn write_creates_files() {
        let dir = std::env::temp_dir().join("dcp_obs_recorder_test");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::default();
        rec.record(Event::instant(Source::Planner, "device_lost").with_device(3));
        let paths = rec.write_all(&dir).unwrap();
        assert_eq!(paths.len(), 1);
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let b: PostmortemBundle = serde_json::from_str(&text).unwrap();
        b.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
