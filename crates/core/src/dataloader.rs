//! The look-ahead planning dataloader (paper Sec. 6.1).
//!
//! The paper overlaps planning with GPU execution: while iteration `i`
//! runs, the plans for iterations `i+1 ..= i+kappa` are computed in
//! parallel on CPU cores and shipped to devices through a key-value store.
//! Here the "KV store" is an in-process channel per iteration and the CPU
//! pool is rayon; the observable contract is the same — `next()` returns
//! `(batch, plan)` pairs in order, with planning latency hidden behind the
//! look-ahead window.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver};
use dcp_data::Batch;
use dcp_types::DcpResult;

use crate::planner::{PlanOutput, Planner};

/// An iterator over `(batch, plan)` pairs with asynchronous look-ahead
/// planning.
///
/// # Examples
///
/// ```
/// use dcp_core::{DcpDataloader, Planner, PlannerConfig};
/// use dcp_data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
/// use dcp_types::{AttnSpec, ClusterSpec};
///
/// let planner = Planner::new(
///     ClusterSpec::p4de(1),
///     AttnSpec::paper_micro(),
///     PlannerConfig::default(),
/// );
/// let lengths = sample_lengths(DatasetKind::LongDataCollections, 20, 1.0, 16384, 0);
/// let batches = pack_batches(&lengths, 32768, |l| MaskSetting::Causal.mask_for(l));
/// let n = batches.len();
/// let loader = DcpDataloader::new(planner, batches, 2);
/// let mut count = 0;
/// for item in loader {
///     let (_batch, plan) = item.unwrap();
///     assert_eq!(plan.num_devices(), 8);
///     count += 1;
/// }
/// assert_eq!(count, n);
/// ```
pub struct DcpDataloader {
    planner: Arc<Planner>,
    batches: Vec<Batch>,
    /// Next batch index to submit for planning.
    submitted: usize,
    /// Next batch index to hand out.
    consumed: usize,
    /// Look-ahead window κ.
    lookahead: usize,
    /// In-flight plan results, in batch order.
    inflight: VecDeque<Receiver<DcpResult<PlanOutput>>>,
}

impl DcpDataloader {
    /// Wraps `batches` with a planner and a look-ahead window of
    /// `lookahead` iterations (κ in the paper; 0 plans synchronously).
    pub fn new(planner: Planner, batches: Vec<Batch>, lookahead: usize) -> Self {
        DcpDataloader {
            planner: Arc::new(planner),
            batches,
            submitted: 0,
            consumed: 0,
            lookahead,
            inflight: VecDeque::new(),
        }
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether there are no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    fn submit_upto(&mut self, target: usize) {
        while self.submitted < target.min(self.batches.len()) {
            let (tx, rx) = bounded(1);
            let planner = Arc::clone(&self.planner);
            let seqs = self.batches[self.submitted].seqs.clone();
            rayon::spawn(move || {
                let _ = tx.send(planner.plan(&seqs));
            });
            self.inflight.push_back(rx);
            self.submitted += 1;
        }
    }
}

impl Iterator for DcpDataloader {
    type Item = DcpResult<(Batch, PlanOutput)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.consumed >= self.batches.len() {
            return None;
        }
        // Keep the window `consumed .. consumed + 1 + kappa` planned.
        self.submit_upto(self.consumed + 1 + self.lookahead);
        let rx = self.inflight.pop_front().expect("submitted above");
        let batch = self.batches[self.consumed].clone();
        self.consumed += 1;
        match rx.recv() {
            Ok(Ok(plan)) => Some(Ok((batch, plan))),
            Ok(Err(e)) => Some(Err(e)),
            Err(_) => Some(Err(dcp_types::DcpError::invalid_plan(
                "planning worker disappeared",
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerConfig;
    use dcp_mask::MaskSpec;
    use dcp_types::{AttnSpec, ClusterSpec};

    fn batches(n: usize) -> Vec<Batch> {
        (0..n)
            .map(|i| Batch {
                seqs: vec![(2048 + 512 * (i as u32 % 4), MaskSpec::Causal)],
            })
            .collect()
    }

    fn planner() -> Planner {
        Planner::new(
            ClusterSpec::single_node(4),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 512,
                ..Default::default()
            },
        )
    }

    #[test]
    fn yields_all_batches_in_order() {
        let bs = batches(7);
        let loader = DcpDataloader::new(planner(), bs.clone(), 3);
        let got: Vec<Batch> = loader.map(|r| r.unwrap().0).collect();
        assert_eq!(got, bs);
    }

    #[test]
    fn plans_match_synchronous_planning() {
        let bs = batches(4);
        let p = planner();
        let direct: Vec<_> = bs.iter().map(|b| p.plan(&b.seqs).unwrap()).collect();
        let loader = DcpDataloader::new(planner(), bs, 2);
        for (item, expect) in loader.zip(direct) {
            let (_, got) = item.unwrap();
            assert_eq!(got.placement, expect.placement);
            assert_eq!(got.plan, expect.plan);
        }
    }

    #[test]
    fn zero_lookahead_still_works() {
        let loader = DcpDataloader::new(planner(), batches(3), 0);
        assert_eq!(loader.count(), 3);
    }

    #[test]
    fn len_and_empty() {
        let loader = DcpDataloader::new(planner(), batches(5), 1);
        assert_eq!(loader.len(), 5);
        assert!(!loader.is_empty());
        let empty = DcpDataloader::new(planner(), vec![], 1);
        assert!(empty.is_empty());
        assert_eq!(empty.count(), 0);
    }
}
