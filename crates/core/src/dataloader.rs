//! The look-ahead planning dataloader (paper Sec. 6.1), hardened.
//!
//! The paper overlaps planning with GPU execution: while iteration `i`
//! runs, the plans for iterations `i+1 ..= i+kappa` are computed in
//! parallel on CPU cores and shipped to devices through a key-value store.
//! Here the "KV store" is an in-process channel per iteration and the CPU
//! pool is rayon; the observable contract is the same — `next()` returns
//! `(batch, plan)` pairs in order, with planning latency hidden behind the
//! look-ahead window.
//!
//! Robustness: a planning worker that panics, times out, or returns an
//! error does not lose the batch. The loader re-plans synchronously (with
//! bounded retries and backoff per [`RetryConfig`]) and only after
//! exhausting the retries surfaces a typed
//! [`DcpError::PlanningFailed`] carrying the batch index and attempt
//! count. A failed batch never poisons later batches: every iteration has
//! its own channel, so the stream keeps yielding. Every recovery incident
//! is recorded as a structured [`ReplanEvent`] (batch index, failure
//! class, attempts, recovery wall time) via
//! [`DcpDataloader::replan_events`].
//!
//! Look-ahead planning runs on a small pool of dedicated worker threads
//! (sized with [`DcpDataloader::with_workers`]) rather than one spawned
//! task per batch: the pool bounds planning CPU, keeps the rayon pool free
//! for intra-plan parallelism, and a panicking plan kills only the batch
//! (the worker catches it and survives for the next job).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use dcp_data::Batch;
use dcp_mask::MaskSpec;
use dcp_obs::{Event, ObsHandle, Source as ObsSource};
use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

use crate::planner::{PlanOutput, Planner};

/// How the dataloader reacts to slow, dead, or failing planning workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Per-batch deadline on the look-ahead worker's result. `None` waits
    /// indefinitely (a dead worker is still detected via channel
    /// disconnect). The deadline also budgets the retry path: backoff
    /// sleeps are clamped to whatever of it the worker wait left unspent,
    /// so one batch's waiting never exceeds roughly two deadlines.
    pub batch_deadline: Option<Duration>,
    /// Synchronous re-plan attempts after the look-ahead result failed.
    pub max_retries: u32,
    /// Sleep between consecutive re-plan attempts (linear backoff:
    /// attempt `k` sleeps `k * backoff`, clamped to the remaining
    /// [`RetryConfig::batch_deadline`] budget when one is set).
    pub backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            batch_deadline: None,
            max_retries: 1,
            backoff: Duration::from_millis(10),
        }
    }
}

/// The planning function the dataloader drives: maps a batch's sequences
/// to a plan. [`DcpDataloader::new`] wraps [`Planner::plan`]; tests and
/// instrumented callers can substitute their own via
/// [`DcpDataloader::with_plan_fn`].
pub type PlanFn = dyn Fn(&[(u32, MaskSpec)]) -> DcpResult<PlanOutput> + Send + Sync;

/// Why a look-ahead plan result was unusable and the batch was re-planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureClass {
    /// The worker's channel disconnected: the planning closure panicked.
    WorkerDied,
    /// The worker missed [`RetryConfig::batch_deadline`].
    Timeout,
    /// The planning function returned an error.
    PlanError,
}

impl FailureClass {
    /// Stable lowercase label (used in benchmark reports).
    pub fn label(&self) -> &'static str {
        match self {
            FailureClass::WorkerDied => "worker_died",
            FailureClass::Timeout => "timeout",
            FailureClass::PlanError => "plan_error",
        }
    }
}

/// A checkpoint of the dataloader's planning progress: the consume cursor
/// plus every planned-but-unconsumed [`PlanOutput`] in the look-ahead
/// window. Restoring after a restart resumes the stream at the same batch
/// without re-planning the window ([`DcpDataloader::snapshot`] /
/// [`DcpDataloader::restore`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataloaderSnapshot {
    /// Number of batches already handed out.
    pub consumed: usize,
    /// Planned-but-unconsumed results, contiguous from `consumed`, as
    /// `(batch_index, plan)` pairs.
    pub planned: Vec<(usize, PlanOutput)>,
}

impl DataloaderSnapshot {
    /// Serializes the snapshot to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::Serialization`] if encoding fails.
    pub fn to_json(&self) -> DcpResult<String> {
        serde_json::to_string(self).map_err(|e| DcpError::Serialization(e.to_string()))
    }

    /// Deserializes a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::Serialization`] on malformed input.
    pub fn from_json(s: &str) -> DcpResult<Self> {
        serde_json::from_str(s).map_err(|e| DcpError::Serialization(e.to_string()))
    }
}

/// One planning-recovery incident: a batch whose look-ahead result was
/// unusable and had to be re-planned synchronously.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanEvent {
    /// Which batch failed.
    pub batch_index: usize,
    /// How the look-ahead result failed.
    pub failure: FailureClass,
    /// Synchronous re-plan attempts performed (≥ 1 whenever retries are
    /// enabled; `0` when `max_retries == 0` and the failure surfaced
    /// directly).
    pub attempts: u32,
    /// Whether a retry produced a usable plan (`false` means the batch
    /// surfaced as [`DcpError::PlanningFailed`]).
    pub recovered: bool,
    /// Wall-clock seconds from detecting the failure to recovery (or to
    /// giving up), including retry backoff sleeps.
    pub recovery_wall_s: f64,
}

/// A fixed pool of detached planning threads consuming look-ahead jobs.
///
/// A panic inside the planning closure is caught so the worker survives;
/// the per-batch result channel is dropped instead, which the consumer
/// observes as a disconnect ([`FailureClass::WorkerDied`]). Workers exit
/// when the job sender (owned by the loader) is dropped.
struct WorkerPool {
    jobs: Sender<PlanJob>,
    size: usize,
}

/// One look-ahead planning job: the batch to plan and the per-batch channel
/// its result (or disconnect, on panic) is delivered on.
type PlanJob = (Vec<(u32, MaskSpec)>, Sender<DcpResult<PlanOutput>>);

impl WorkerPool {
    fn new(size: usize, plan_fn: Arc<PlanFn>) -> Self {
        let size = size.max(1);
        let (jobs, rx) = unbounded::<PlanJob>();
        for w in 0..size {
            let rx = rx.clone();
            let plan_fn = Arc::clone(&plan_fn);
            std::thread::Builder::new()
                .name(format!("dcp-plan-{w}"))
                .spawn(move || {
                    while let Ok((seqs, tx)) = rx.recv() {
                        match catch_unwind(AssertUnwindSafe(|| plan_fn(&seqs))) {
                            Ok(result) => {
                                let _ = tx.send(result);
                            }
                            // Dropping `tx` without sending signals the
                            // panic to the consumer as a disconnect.
                            Err(_) => drop(tx),
                        }
                    }
                })
                .expect("failed to spawn planning worker thread");
        }
        WorkerPool { jobs, size }
    }

    fn submit(&self, seqs: Vec<(u32, MaskSpec)>, tx: Sender<DcpResult<PlanOutput>>) {
        let _ = self.jobs.send((seqs, tx));
    }
}

/// An iterator over `(batch, plan)` pairs with asynchronous look-ahead
/// planning and bounded retry on worker failure.
///
/// # Examples
///
/// ```
/// use dcp_core::{DcpDataloader, Planner, PlannerConfig};
/// use dcp_data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
/// use dcp_types::{AttnSpec, ClusterSpec};
///
/// let planner = Planner::new(
///     ClusterSpec::p4de(1),
///     AttnSpec::paper_micro(),
///     PlannerConfig::default(),
/// );
/// let lengths = sample_lengths(DatasetKind::LongDataCollections, 20, 1.0, 16384, 0);
/// let batches = pack_batches(&lengths, 32768, |l| MaskSetting::Causal.mask_for(l));
/// let n = batches.len();
/// let loader = DcpDataloader::new(planner, batches, 2);
/// let mut count = 0;
/// for item in loader {
///     let (_batch, plan) = item.unwrap();
///     assert_eq!(plan.num_devices(), 8);
///     count += 1;
/// }
/// assert_eq!(count, n);
/// ```
pub struct DcpDataloader {
    plan_fn: Arc<PlanFn>,
    batches: Vec<Batch>,
    /// Next batch index to submit for planning.
    submitted: usize,
    /// Next batch index to hand out.
    consumed: usize,
    /// Look-ahead window κ.
    lookahead: usize,
    /// Retry/timeout policy.
    retry: RetryConfig,
    /// Plans already in hand (restored from a snapshot or drained by one),
    /// contiguous from `consumed`; served before polling workers.
    ready: VecDeque<PlanOutput>,
    /// In-flight plan results, in batch order after `ready`.
    inflight: VecDeque<Receiver<DcpResult<PlanOutput>>>,
    /// The fixed look-ahead planning pool.
    pool: WorkerPool,
    /// Structured log of every recovery incident, in batch order.
    events: Vec<ReplanEvent>,
    /// Observability sink. All emission happens on the consumer thread
    /// inside `next()`, in batch order, never on pool workers — so the
    /// recorded stream stays deterministic regardless of worker count.
    obs: ObsHandle,
}

impl DcpDataloader {
    /// Wraps `batches` with a planner and a look-ahead window of
    /// `lookahead` iterations (κ in the paper; 0 plans synchronously),
    /// using the default [`RetryConfig`].
    pub fn new(planner: Planner, batches: Vec<Batch>, lookahead: usize) -> Self {
        Self::with_retry(planner, batches, lookahead, RetryConfig::default())
    }

    /// Like [`DcpDataloader::new`] with an explicit retry/timeout policy.
    pub fn with_retry(
        planner: Planner,
        batches: Vec<Batch>,
        lookahead: usize,
        retry: RetryConfig,
    ) -> Self {
        let planner = Arc::new(planner);
        Self::with_plan_fn(
            Arc::new(move |seqs: &[(u32, MaskSpec)]| planner.plan(seqs)),
            batches,
            lookahead,
            retry,
        )
    }

    /// Fully general constructor taking the planning function directly.
    /// Used by fault-injection tests and callers wrapping the planner
    /// (e.g. with caching or instrumentation).
    pub fn with_plan_fn(
        plan_fn: Arc<PlanFn>,
        batches: Vec<Batch>,
        lookahead: usize,
        retry: RetryConfig,
    ) -> Self {
        // Pool sized to the look-ahead window (capped): more workers than
        // in-flight batches can never be busy.
        let pool = WorkerPool::new(lookahead.clamp(1, 4), Arc::clone(&plan_fn));
        DcpDataloader {
            plan_fn,
            batches,
            submitted: 0,
            consumed: 0,
            lookahead,
            retry,
            ready: VecDeque::new(),
            inflight: VecDeque::new(),
            pool,
            events: Vec::new(),
            obs: ObsHandle::noop(),
        }
    }

    /// Attaches an observability sink (builder style). The loader emits the
    /// look-ahead job lifecycle (`lookahead_submit` → `plan_wait` →
    /// `plan_ready`), per-attempt `replan_attempt` spans, recovery incidents
    /// (`recovery`/`recovery_failed` spans mirroring [`ReplanEvent`]), and
    /// re-emits the worker-side planner stage breakdown from
    /// [`crate::PlanStats`] in batch order.
    ///
    /// Attach the sink here *or* to the [`Planner`], not both: planner spans
    /// emitted from concurrent pool workers would interleave
    /// nondeterministically, so the loader replays them serially instead.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the planning pool with one of `n` threads (builder style;
    /// call before iterating). The displaced pool's idle workers exit on
    /// their own once their job channel disconnects.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.pool = WorkerPool::new(n, Arc::clone(&self.plan_fn));
        self
    }

    /// Number of planning worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.pool.size
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether there are no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total synchronous re-plans performed so far (each one recovered a
    /// batch whose look-ahead worker died, timed out, or errored). This is
    /// the sum of [`ReplanEvent::attempts`] over [`Self::replan_events`].
    pub fn replans(&self) -> u64 {
        self.events.iter().map(|e| e.attempts as u64).sum()
    }

    /// Structured log of every recovery incident so far, in batch order.
    pub fn replan_events(&self) -> &[ReplanEvent] {
        &self.events
    }

    /// Checkpoints the loader: drains every in-flight look-ahead result
    /// (a barrier, honoring [`RetryConfig::batch_deadline`] per batch) into
    /// the ready queue and returns the consume cursor plus all
    /// planned-but-unconsumed plans. The loader stays usable afterwards —
    /// drained plans are served from memory, nothing is re-planned.
    ///
    /// A worker that failed, timed out, or died during the drain truncates
    /// the snapshot at its batch: that batch and everything after it are
    /// simply re-planned after [`Self::restore`] (or on this loader's own
    /// retry path when iteration continues).
    pub fn snapshot(&mut self) -> DataloaderSnapshot {
        while let Some(rx) = self.inflight.pop_front() {
            match self.await_worker(&rx) {
                Ok(Ok(plan)) => self.ready.push_back(plan),
                _ => {
                    self.inflight.clear();
                    break;
                }
            }
        }
        // Whatever was not drained cleanly must be re-submitted.
        self.submitted = self.consumed + self.ready.len();
        let snap = DataloaderSnapshot {
            consumed: self.consumed,
            planned: self
                .ready
                .iter()
                .enumerate()
                .map(|(i, p)| (self.consumed + i, p.clone()))
                .collect(),
        };
        if self.obs.enabled() {
            self.obs.record(
                Event::instant(ObsSource::Dataloader, "snapshot")
                    .with_iter(self.consumed as u64)
                    .with_value(snap.planned.len() as f64),
            );
        }
        snap
    }

    /// Resumes from a [`DataloaderSnapshot`] (builder style; call before
    /// iterating): the consume cursor jumps to `snapshot.consumed` and the
    /// snapshot's plans are served without re-planning.
    ///
    /// The restored plans must match this loader's batches: each entry is
    /// accepted only while contiguous from the cursor *and* its layout's
    /// sequence lengths equal the corresponding batch's. The first mismatch
    /// (a snapshot taken against a different dataset, or a gap) discards
    /// that entry and everything after it — those batches are re-planned by
    /// the normal look-ahead path, never served a stale plan.
    pub fn restore(mut self, snapshot: &DataloaderSnapshot) -> Self {
        self.consumed = snapshot.consumed.min(self.batches.len());
        self.ready.clear();
        self.inflight.clear();
        let mut expect = self.consumed;
        for (idx, plan) in &snapshot.planned {
            let lens: Vec<u32> = match self.batches.get(*idx) {
                Some(b) => b.seqs.iter().map(|s| s.0).collect(),
                None => break,
            };
            if *idx != expect || plan.layout.seq_lens != lens {
                break;
            }
            self.ready.push_back(plan.clone());
            expect += 1;
        }
        self.submitted = expect;
        if self.obs.enabled() {
            self.obs.record(
                Event::instant(ObsSource::Dataloader, "snapshot_restored")
                    .with_iter(self.consumed as u64)
                    .with_value(self.ready.len() as f64),
            );
        }
        self
    }

    fn submit_upto(&mut self, target: usize) {
        while self.submitted < target.min(self.batches.len()) {
            let (tx, rx) = bounded(1);
            self.pool
                .submit(self.batches[self.submitted].seqs.clone(), tx);
            if self.obs.enabled() {
                self.obs.record(
                    Event::instant(ObsSource::Dataloader, "lookahead_submit")
                        .with_iter(self.submitted as u64),
                );
            }
            self.inflight.push_back(rx);
            self.submitted += 1;
        }
    }

    /// Waits for the look-ahead result of the batch at `index`, honoring
    /// the deadline. `Err((class, msg))` describes a failed/slow/dead
    /// worker.
    fn await_worker(
        &self,
        rx: &Receiver<DcpResult<PlanOutput>>,
    ) -> Result<DcpResult<PlanOutput>, (FailureClass, String)> {
        match self.retry.batch_deadline {
            Some(deadline) => rx.recv_timeout(deadline).map_err(|e| match e {
                RecvTimeoutError::Timeout => (
                    FailureClass::Timeout,
                    format!("planning worker missed the {deadline:?} deadline"),
                ),
                RecvTimeoutError::Disconnected => (
                    FailureClass::WorkerDied,
                    "planning worker died (panicked)".to_string(),
                ),
            }),
            None => rx.recv().map_err(|_| {
                (
                    FailureClass::WorkerDied,
                    "planning worker died (panicked)".to_string(),
                )
            }),
        }
    }

    /// One synchronous re-plan, isolating panics in the planning function.
    fn replan(&self, seqs: &[(u32, MaskSpec)]) -> Result<PlanOutput, String> {
        let plan_fn = Arc::clone(&self.plan_fn);
        match catch_unwind(AssertUnwindSafe(|| plan_fn(seqs))) {
            Ok(Ok(plan)) => Ok(plan),
            Ok(Err(e)) => Err(e.to_string()),
            Err(_) => Err("synchronous re-plan panicked".to_string()),
        }
    }

    /// Re-emits the worker-side planning summary for batch `index` on the
    /// consumer thread: cache outcome, then the stage breakdown recorded in
    /// [`crate::PlanStats`] as consecutive planner-source spans.
    fn emit_plan_summary(&self, index: usize, out: &PlanOutput) {
        let iter = index as u64;
        let s = &out.stats;
        let cache = if s.cache_hit {
            "plan_cache_hit"
        } else {
            "plan_cache_miss"
        };
        self.obs.record(
            Event::counter(ObsSource::Planner, cache, 1.0)
                .with_iter(iter)
                .with_label(out.tier.label()),
        );
        if !s.cache_hit {
            let mut at = 0.0;
            for (name, dur) in [
                ("block_gen", out.times.block_gen),
                ("coarsen", s.coarsen_s),
                ("initial", s.initial_s),
                ("refine", s.refine_s),
                ("schedule", s.schedule_s),
            ] {
                self.obs.record(
                    Event::span(ObsSource::Planner, name)
                        .with_iter(iter)
                        .with_label(out.tier.label())
                        .with_time(at, dur),
                );
                at += dur;
            }
        }
    }
}

impl Iterator for DcpDataloader {
    type Item = DcpResult<(Batch, PlanOutput)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.consumed >= self.batches.len() {
            return None;
        }
        // Keep the window `consumed .. consumed + 1 + kappa` planned.
        // Saturating: κ = usize::MAX means "plan everything", not overflow.
        self.submit_upto(
            self.consumed
                .saturating_add(1)
                .saturating_add(self.lookahead),
        );
        // Plans restored from a snapshot (or drained by one) are served
        // from memory first.
        if let Some(plan) = self.ready.pop_front() {
            let batch = self.batches[self.consumed].clone();
            let index = self.consumed;
            self.consumed += 1;
            if self.obs.enabled() {
                self.emit_plan_summary(index, &plan);
                self.obs.record(
                    Event::instant(ObsSource::Dataloader, "plan_ready")
                        .with_iter(index as u64)
                        .with_label(plan.tier.label()),
                );
            }
            return Some(Ok((batch, plan)));
        }
        let Some(rx) = self.inflight.pop_front() else {
            // Unreachable (submit_upto above guarantees an in-flight entry
            // for a non-exhausted loader), but a malformed internal state
            // must not panic the training stream.
            let idx = self.consumed;
            self.consumed += 1;
            return Some(Err(DcpError::planning_failed(
                idx,
                0,
                "internal error: no in-flight plan for this batch",
            )));
        };
        let batch = self.batches[self.consumed].clone();
        let index = self.consumed;
        self.consumed += 1;

        let obs_on = self.obs.enabled();
        let t_wait = Instant::now();
        let waited = self.await_worker(&rx);
        if obs_on {
            self.obs.record(
                Event::span(ObsSource::Dataloader, "plan_wait")
                    .with_iter(index as u64)
                    .with_time(0.0, t_wait.elapsed().as_secs_f64()),
            );
        }
        let (failure, mut last_error) = match waited {
            Ok(Ok(plan)) => {
                if obs_on {
                    self.emit_plan_summary(index, &plan);
                    self.obs.record(
                        Event::instant(ObsSource::Dataloader, "plan_ready")
                            .with_iter(index as u64)
                            .with_label(plan.tier.label()),
                    );
                }
                return Some(Ok((batch, plan)));
            }
            Ok(Err(e)) => (FailureClass::PlanError, e.to_string()),
            Err((class, msg)) => (class, msg),
        };

        // The look-ahead result is unusable: re-plan synchronously with
        // bounded retries and linear backoff. The failure stays confined to
        // this batch — later batches keep their own workers and channels.
        //
        // Backoff sleeps are charged against the same per-batch deadline the
        // worker wait already consumed: each sleep is clamped to the budget
        // remaining, so a slow worker followed by linear backoff cannot
        // stretch one batch to deadline + sum-of-backoffs. Only the waiting
        // is bounded — every re-plan attempt still runs, even at zero budget
        // (a deadline is a latency contract, not a license to skip work).
        let t_recover = Instant::now();
        let sleep_budget = self
            .retry
            .batch_deadline
            .map(|d| d.saturating_sub(t_wait.elapsed()));
        let mut attempts = 0u32;
        let mut recovered = None;
        for attempt in 1..=self.retry.max_retries {
            if !self.retry.backoff.is_zero() {
                let mut sleep = self.retry.backoff * attempt;
                if let Some(budget) = sleep_budget {
                    sleep = sleep.min(budget.saturating_sub(t_recover.elapsed()));
                }
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
            attempts += 1;
            let t_attempt = Instant::now();
            let replanned = self.replan(&batch.seqs);
            if obs_on {
                self.obs.record(
                    Event::span(ObsSource::Dataloader, "replan_attempt")
                        .with_iter(index as u64)
                        .with_label(failure.label())
                        .with_value(attempt as f64)
                        .with_time(0.0, t_attempt.elapsed().as_secs_f64()),
                );
            }
            match replanned {
                Ok(plan) => {
                    recovered = Some(plan);
                    break;
                }
                Err(msg) => last_error = msg,
            }
        }
        let event = ReplanEvent {
            batch_index: index,
            failure,
            attempts,
            recovered: recovered.is_some(),
            recovery_wall_s: t_recover.elapsed().as_secs_f64(),
        };
        if obs_on {
            // The incident re-emitted as a span mirroring `ReplanEvent`.
            self.obs.record(
                Event::span(
                    ObsSource::Dataloader,
                    if event.recovered {
                        "recovery"
                    } else {
                        "recovery_failed"
                    },
                )
                .with_iter(index as u64)
                .with_label(failure.label())
                .with_value(attempts as f64)
                .with_time(0.0, event.recovery_wall_s),
            );
            if let Some(plan) = &recovered {
                self.emit_plan_summary(index, plan);
            }
        }
        self.events.push(event);
        match recovered {
            Some(plan) => Some(Ok((batch, plan))),
            None => Some(Err(DcpError::planning_failed(
                index,
                1 + self.retry.max_retries,
                last_error,
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerConfig;
    use dcp_mask::MaskSpec;
    use dcp_types::{AttnSpec, ClusterSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn batches(n: usize) -> Vec<Batch> {
        (0..n)
            .map(|i| Batch {
                seqs: vec![(2048 + 512 * (i as u32 % 4), MaskSpec::Causal)],
            })
            .collect()
    }

    fn planner() -> Planner {
        Planner::new(
            ClusterSpec::single_node(4),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 512,
                ..Default::default()
            },
        )
    }

    #[test]
    fn yields_all_batches_in_order() {
        let bs = batches(7);
        let loader = DcpDataloader::new(planner(), bs.clone(), 3);
        let got: Vec<Batch> = loader.map(|r| r.unwrap().0).collect();
        assert_eq!(got, bs);
    }

    #[test]
    fn plans_match_synchronous_planning() {
        let bs = batches(4);
        let p = planner();
        let direct: Vec<_> = bs.iter().map(|b| p.plan(&b.seqs).unwrap()).collect();
        let loader = DcpDataloader::new(planner(), bs, 2);
        for (item, expect) in loader.zip(direct) {
            let (_, got) = item.unwrap();
            assert_eq!(got.placement, expect.placement);
            assert_eq!(got.plan, expect.plan);
        }
    }

    #[test]
    fn zero_lookahead_still_works() {
        let loader = DcpDataloader::new(planner(), batches(3), 0);
        assert_eq!(loader.count(), 3);
    }

    #[test]
    fn huge_lookahead_does_not_overflow() {
        // Regression: `consumed + 1 + lookahead` used to overflow for
        // κ = usize::MAX; the window arithmetic must saturate.
        let bs = batches(3);
        let loader = DcpDataloader::new(planner(), bs.clone(), usize::MAX);
        let got: Vec<Batch> = loader.map(|r| r.unwrap().0).collect();
        assert_eq!(got, bs);
    }

    #[test]
    fn len_and_empty() {
        let loader = DcpDataloader::new(planner(), batches(5), 1);
        assert_eq!(loader.len(), 5);
        assert!(!loader.is_empty());
        let empty = DcpDataloader::new(planner(), vec![], 1);
        assert!(empty.is_empty());
        assert_eq!(empty.count(), 0);
    }

    /// A plan function that panics on one specific batch's first attempt
    /// (killing its look-ahead worker) but succeeds on the retry.
    fn flaky_plan_fn(poison_len: u32) -> Arc<PlanFn> {
        let p = planner();
        let panics = AtomicUsize::new(0);
        Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            if seqs[0].0 == poison_len && panics.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected planning worker crash");
            }
            p.plan(seqs)
        })
    }

    #[test]
    fn dead_worker_recovers_via_sync_replan() {
        let bs = batches(6);
        // Batch index 1 has length 2560; its worker panics once.
        let mut loader = DcpDataloader::with_plan_fn(
            flaky_plan_fn(2560),
            bs.clone(),
            2,
            RetryConfig {
                backoff: Duration::from_millis(1),
                ..Default::default()
            },
        );
        let mut got = Vec::new();
        for item in loader.by_ref() {
            got.push(item.unwrap().0);
        }
        assert_eq!(got, bs, "every batch yields exactly once, in order");
        assert!(loader.replans() >= 1, "the dead worker forced a re-plan");
        let events = loader.replan_events();
        assert_eq!(events.len(), 1, "exactly one incident: {events:?}");
        let ev = &events[0];
        assert_eq!(ev.batch_index, 1);
        assert_eq!(ev.failure, FailureClass::WorkerDied);
        assert_eq!(ev.attempts, 1);
        assert!(ev.recovered);
        assert!(ev.recovery_wall_s >= 0.0);
    }

    #[test]
    fn plan_errors_are_classified_and_unrecovered_incidents_logged() {
        let bs = batches(3);
        let p = planner();
        // Batch index 1 (length 2560) always returns a planning error.
        let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            if seqs[0].0 == 2560 {
                return Err(DcpError::invalid_plan("injected planning error"));
            }
            p.plan(seqs)
        });
        let mut loader = DcpDataloader::with_plan_fn(
            plan_fn,
            bs,
            1,
            RetryConfig {
                max_retries: 2,
                backoff: Duration::ZERO,
                ..Default::default()
            },
        );
        let results: Vec<_> = loader.by_ref().collect();
        assert!(results[1].is_err());
        let ev = &loader.replan_events()[0];
        assert_eq!(ev.batch_index, 1);
        assert_eq!(ev.failure, FailureClass::PlanError);
        assert_eq!(ev.attempts, 2);
        assert!(!ev.recovered);
        assert_eq!(loader.replans(), 2, "sum of attempts across events");
    }

    #[test]
    fn worker_pool_is_bounded_and_configurable() {
        let bs = batches(5);
        let loader = DcpDataloader::new(planner(), bs.clone(), 2);
        assert_eq!(loader.workers(), 2, "pool follows the look-ahead window");
        let loader = loader.with_workers(3);
        assert_eq!(loader.workers(), 3);
        let got: Vec<Batch> = loader.map(|r| r.unwrap().0).collect();
        assert_eq!(got, bs, "in-order delivery with a resized pool");
        // A single worker still drains the whole stream in order.
        let got: Vec<Batch> = DcpDataloader::new(planner(), bs.clone(), 4)
            .with_workers(1)
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(got, bs);
    }

    #[test]
    fn pool_workers_survive_panicking_plans() {
        // Every odd batch panics on its first attempt. With a 1-thread pool
        // the same OS thread must plan all batches — it only survives if
        // panics are caught per job.
        let bs = batches(6);
        let p = planner();
        let seen = std::sync::Mutex::new(std::collections::HashSet::<u32>::new());
        let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            let first = seqs[0].0;
            if !first.is_multiple_of(1024) && seen.lock().unwrap().insert(first) {
                panic!("injected crash for {first}");
            }
            p.plan(seqs)
        });
        let mut loader = DcpDataloader::with_plan_fn(
            plan_fn,
            bs.clone(),
            2,
            RetryConfig {
                backoff: Duration::ZERO,
                ..Default::default()
            },
        )
        .with_workers(1);
        let got: Vec<Batch> = loader.by_ref().map(|r| r.unwrap().0).collect();
        assert_eq!(got, bs);
        for ev in loader.replan_events() {
            assert_eq!(ev.failure, FailureClass::WorkerDied);
            assert!(ev.recovered);
        }
    }

    #[test]
    fn persistent_failure_is_typed_and_does_not_poison_later_batches() {
        let bs = batches(5);
        let p = planner();
        // Batches with length 2560 (index 1) always panic.
        let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            if seqs[0].0 == 2560 {
                panic!("injected permanent planner crash");
            }
            p.plan(seqs)
        });
        let loader = DcpDataloader::with_plan_fn(
            plan_fn,
            bs.clone(),
            2,
            RetryConfig {
                max_retries: 2,
                backoff: Duration::ZERO,
                ..Default::default()
            },
        );
        let results: Vec<_> = loader.collect();
        assert_eq!(results.len(), 5, "failure must not truncate the stream");
        for (i, r) in results.iter().enumerate() {
            if i == 1 {
                match r {
                    Err(DcpError::PlanningFailed {
                        batch_index,
                        attempts,
                        ..
                    }) => {
                        assert_eq!(*batch_index, 1);
                        assert_eq!(*attempts, 3, "initial + 2 retries");
                    }
                    other => panic!("expected PlanningFailed, got {other:?}"),
                }
            } else {
                let (batch, plan) = r.as_ref().unwrap();
                assert_eq!(batch, &bs[i]);
                assert_eq!(plan.num_devices(), 4);
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips_without_replanning() {
        let bs = batches(6);
        // Reference stream: plan everything synchronously.
        let p = planner();
        let expect: Vec<String> = bs
            .iter()
            .map(|b| serde_json::to_string(&p.plan(&b.seqs).unwrap().plan).unwrap())
            .collect();

        // Consume two batches, then checkpoint mid-stream.
        let mut loader = DcpDataloader::new(planner(), bs.clone(), 3);
        let first: Vec<_> = loader.by_ref().take(2).map(|r| r.unwrap()).collect();
        let snap = loader.snapshot();
        assert_eq!(snap.consumed, 2);
        assert!(
            !snap.planned.is_empty(),
            "the look-ahead window was planned and must be captured"
        );
        for (i, (idx, _)) in snap.planned.iter().enumerate() {
            assert_eq!(*idx, 2 + i, "planned entries are contiguous");
        }
        // The snapshotting loader itself keeps streaming, nothing lost.
        let rest: Vec<_> = loader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(first.len() + rest.len(), bs.len());

        // Serialize, restore into a *fresh* loader whose plan function
        // counts invocations: the restored window must not be re-planned.
        let json = snap.to_json().unwrap();
        let back = DataloaderSnapshot::from_json(&json).unwrap();
        assert_eq!(back.consumed, snap.consumed);
        assert_eq!(back.planned.len(), snap.planned.len());

        let p = planner();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            calls2.fetch_add(1, Ordering::SeqCst);
            p.plan(seqs)
        });
        let restored = DcpDataloader::with_plan_fn(plan_fn, bs.clone(), 2, RetryConfig::default())
            .restore(&back);
        let got: Vec<_> = restored.map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), bs.len() - 2, "resumes at the consume cursor");
        for (i, (batch, out)) in got.iter().enumerate() {
            assert_eq!(batch, &bs[2 + i]);
            assert_eq!(
                serde_json::to_string(&out.plan).unwrap(),
                expect[2 + i],
                "restored stream diverges from synchronous planning at {i}"
            );
        }
        assert_eq!(
            calls.load(Ordering::SeqCst),
            bs.len() - 2 - back.planned.len(),
            "the restored window was served from the snapshot, not re-planned"
        );
    }

    #[test]
    fn restore_rejects_plans_for_a_different_dataset() {
        let bs = batches(4);
        let mut loader = DcpDataloader::new(planner(), bs, 3);
        loader.by_ref().take(1).for_each(|r| {
            r.unwrap();
        });
        let snap = loader.snapshot();
        assert!(!snap.planned.is_empty());

        // Different sequence lengths: every restored plan is stale.
        let other: Vec<Batch> = (0..4)
            .map(|_| Batch {
                seqs: vec![(4096, MaskSpec::Causal)],
            })
            .collect();
        let restored = DcpDataloader::new(planner(), other.clone(), 1).restore(&snap);
        let got: Vec<_> = restored.map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), other.len() - 1, "cursor still honored");
        for (batch, out) in &got {
            assert_eq!(
                out.layout.seq_lens,
                batch.seqs.iter().map(|s| s.0).collect::<Vec<u32>>(),
                "stale snapshot plans must be re-planned, not served"
            );
        }
    }

    #[test]
    fn timeout_triggers_sync_replan() {
        let bs = batches(3);
        let p = planner();
        // The look-ahead worker for batches of length 2560 hangs far past
        // the deadline; the synchronous re-plan path must rescue the batch.
        let slow = AtomicUsize::new(0);
        let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            if seqs[0].0 == 2560 && slow.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_secs(5));
            }
            p.plan(seqs)
        });
        let mut loader = DcpDataloader::with_plan_fn(
            plan_fn,
            bs.clone(),
            1,
            RetryConfig {
                batch_deadline: Some(Duration::from_millis(50)),
                max_retries: 1,
                backoff: Duration::ZERO,
            },
        );
        let mut got = Vec::new();
        for item in loader.by_ref() {
            got.push(item.unwrap().0);
        }
        assert_eq!(got, bs);
        assert!(loader.replans() >= 1, "the slow worker forced a re-plan");
        let ev = &loader.replan_events()[0];
        assert_eq!(ev.failure, FailureClass::Timeout);
        assert!(ev.recovered);
        assert!(
            ev.recovery_wall_s < 5.0,
            "recovery must not wait for the hung worker"
        );
    }
}
