//! The look-ahead planning dataloader (paper Sec. 6.1), hardened.
//!
//! The paper overlaps planning with GPU execution: while iteration `i`
//! runs, the plans for iterations `i+1 ..= i+kappa` are computed in
//! parallel on CPU cores and shipped to devices through a key-value store.
//! Here the "KV store" is an in-process channel per iteration and the CPU
//! pool is rayon; the observable contract is the same — `next()` returns
//! `(batch, plan)` pairs in order, with planning latency hidden behind the
//! look-ahead window.
//!
//! Robustness: a planning worker that panics, times out, or returns an
//! error does not lose the batch. The loader re-plans synchronously (with
//! bounded retries and backoff per [`RetryConfig`]) and only after
//! exhausting the retries surfaces a typed
//! [`DcpError::PlanningFailed`] carrying the batch index and attempt
//! count. A failed batch never poisons later batches: every iteration has
//! its own channel, so the stream keeps yielding.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use dcp_data::Batch;
use dcp_mask::MaskSpec;
use dcp_types::{DcpError, DcpResult};

use crate::planner::{PlanOutput, Planner};

/// How the dataloader reacts to slow, dead, or failing planning workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Per-batch deadline on the look-ahead worker's result. `None` waits
    /// indefinitely (a dead worker is still detected via channel
    /// disconnect).
    pub batch_deadline: Option<Duration>,
    /// Synchronous re-plan attempts after the look-ahead result failed.
    pub max_retries: u32,
    /// Sleep between consecutive re-plan attempts (linear backoff:
    /// attempt `k` sleeps `k * backoff`).
    pub backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            batch_deadline: None,
            max_retries: 1,
            backoff: Duration::from_millis(10),
        }
    }
}

/// The planning function the dataloader drives: maps a batch's sequences
/// to a plan. [`DcpDataloader::new`] wraps [`Planner::plan`]; tests and
/// instrumented callers can substitute their own via
/// [`DcpDataloader::with_plan_fn`].
pub type PlanFn = dyn Fn(&[(u32, MaskSpec)]) -> DcpResult<PlanOutput> + Send + Sync;

/// An iterator over `(batch, plan)` pairs with asynchronous look-ahead
/// planning and bounded retry on worker failure.
///
/// # Examples
///
/// ```
/// use dcp_core::{DcpDataloader, Planner, PlannerConfig};
/// use dcp_data::{pack_batches, sample_lengths, DatasetKind, MaskSetting};
/// use dcp_types::{AttnSpec, ClusterSpec};
///
/// let planner = Planner::new(
///     ClusterSpec::p4de(1),
///     AttnSpec::paper_micro(),
///     PlannerConfig::default(),
/// );
/// let lengths = sample_lengths(DatasetKind::LongDataCollections, 20, 1.0, 16384, 0);
/// let batches = pack_batches(&lengths, 32768, |l| MaskSetting::Causal.mask_for(l));
/// let n = batches.len();
/// let loader = DcpDataloader::new(planner, batches, 2);
/// let mut count = 0;
/// for item in loader {
///     let (_batch, plan) = item.unwrap();
///     assert_eq!(plan.num_devices(), 8);
///     count += 1;
/// }
/// assert_eq!(count, n);
/// ```
pub struct DcpDataloader {
    plan_fn: Arc<PlanFn>,
    batches: Vec<Batch>,
    /// Next batch index to submit for planning.
    submitted: usize,
    /// Next batch index to hand out.
    consumed: usize,
    /// Look-ahead window κ.
    lookahead: usize,
    /// Retry/timeout policy.
    retry: RetryConfig,
    /// In-flight plan results, in batch order.
    inflight: VecDeque<Receiver<DcpResult<PlanOutput>>>,
    /// Total synchronous re-plans performed so far (observability).
    replans: u64,
}

impl DcpDataloader {
    /// Wraps `batches` with a planner and a look-ahead window of
    /// `lookahead` iterations (κ in the paper; 0 plans synchronously),
    /// using the default [`RetryConfig`].
    pub fn new(planner: Planner, batches: Vec<Batch>, lookahead: usize) -> Self {
        Self::with_retry(planner, batches, lookahead, RetryConfig::default())
    }

    /// Like [`DcpDataloader::new`] with an explicit retry/timeout policy.
    pub fn with_retry(
        planner: Planner,
        batches: Vec<Batch>,
        lookahead: usize,
        retry: RetryConfig,
    ) -> Self {
        let planner = Arc::new(planner);
        Self::with_plan_fn(
            Arc::new(move |seqs: &[(u32, MaskSpec)]| planner.plan(seqs)),
            batches,
            lookahead,
            retry,
        )
    }

    /// Fully general constructor taking the planning function directly.
    /// Used by fault-injection tests and callers wrapping the planner
    /// (e.g. with caching or instrumentation).
    pub fn with_plan_fn(
        plan_fn: Arc<PlanFn>,
        batches: Vec<Batch>,
        lookahead: usize,
        retry: RetryConfig,
    ) -> Self {
        DcpDataloader {
            plan_fn,
            batches,
            submitted: 0,
            consumed: 0,
            lookahead,
            retry,
            inflight: VecDeque::new(),
            replans: 0,
        }
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether there are no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total synchronous re-plans performed so far (each one recovered a
    /// batch whose look-ahead worker died, timed out, or errored).
    pub fn replans(&self) -> u64 {
        self.replans
    }

    fn submit_upto(&mut self, target: usize) {
        while self.submitted < target.min(self.batches.len()) {
            let (tx, rx) = bounded(1);
            let plan_fn = Arc::clone(&self.plan_fn);
            let seqs = self.batches[self.submitted].seqs.clone();
            rayon::spawn(move || {
                let _ = tx.send(plan_fn(&seqs));
            });
            self.inflight.push_back(rx);
            self.submitted += 1;
        }
    }

    /// Waits for the look-ahead result of the batch at `index`, honoring
    /// the deadline. `Err(msg)` describes a failed/slow/dead worker.
    fn await_worker(
        &self,
        rx: &Receiver<DcpResult<PlanOutput>>,
    ) -> Result<DcpResult<PlanOutput>, String> {
        match self.retry.batch_deadline {
            Some(deadline) => rx.recv_timeout(deadline).map_err(|e| match e {
                RecvTimeoutError::Timeout => {
                    format!("planning worker missed the {deadline:?} deadline")
                }
                RecvTimeoutError::Disconnected => "planning worker died (panicked)".to_string(),
            }),
            None => rx
                .recv()
                .map_err(|_| "planning worker died (panicked)".to_string()),
        }
    }

    /// One synchronous re-plan, isolating panics in the planning function.
    fn replan(&self, seqs: &[(u32, MaskSpec)]) -> Result<PlanOutput, String> {
        let plan_fn = Arc::clone(&self.plan_fn);
        match catch_unwind(AssertUnwindSafe(|| plan_fn(seqs))) {
            Ok(Ok(plan)) => Ok(plan),
            Ok(Err(e)) => Err(e.to_string()),
            Err(_) => Err("synchronous re-plan panicked".to_string()),
        }
    }
}

impl Iterator for DcpDataloader {
    type Item = DcpResult<(Batch, PlanOutput)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.consumed >= self.batches.len() {
            return None;
        }
        // Keep the window `consumed .. consumed + 1 + kappa` planned.
        // Saturating: κ = usize::MAX means "plan everything", not overflow.
        self.submit_upto(
            self.consumed
                .saturating_add(1)
                .saturating_add(self.lookahead),
        );
        let Some(rx) = self.inflight.pop_front() else {
            // Unreachable (submit_upto above guarantees an in-flight entry
            // for a non-exhausted loader), but a malformed internal state
            // must not panic the training stream.
            let idx = self.consumed;
            self.consumed += 1;
            return Some(Err(DcpError::planning_failed(
                idx,
                0,
                "internal error: no in-flight plan for this batch",
            )));
        };
        let batch = self.batches[self.consumed].clone();
        let index = self.consumed;
        self.consumed += 1;

        let mut last_error = match self.await_worker(&rx) {
            Ok(Ok(plan)) => return Some(Ok((batch, plan))),
            Ok(Err(e)) => e.to_string(),
            Err(msg) => msg,
        };

        // The look-ahead result is unusable: re-plan synchronously with
        // bounded retries and linear backoff. The failure stays confined to
        // this batch — later batches keep their own workers and channels.
        for attempt in 1..=self.retry.max_retries {
            if !self.retry.backoff.is_zero() {
                std::thread::sleep(self.retry.backoff * attempt);
            }
            self.replans += 1;
            match self.replan(&batch.seqs) {
                Ok(plan) => return Some(Ok((batch, plan))),
                Err(msg) => last_error = msg,
            }
        }
        Some(Err(DcpError::planning_failed(
            index,
            1 + self.retry.max_retries,
            last_error,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerConfig;
    use dcp_mask::MaskSpec;
    use dcp_types::{AttnSpec, ClusterSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn batches(n: usize) -> Vec<Batch> {
        (0..n)
            .map(|i| Batch {
                seqs: vec![(2048 + 512 * (i as u32 % 4), MaskSpec::Causal)],
            })
            .collect()
    }

    fn planner() -> Planner {
        Planner::new(
            ClusterSpec::single_node(4),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 512,
                ..Default::default()
            },
        )
    }

    #[test]
    fn yields_all_batches_in_order() {
        let bs = batches(7);
        let loader = DcpDataloader::new(planner(), bs.clone(), 3);
        let got: Vec<Batch> = loader.map(|r| r.unwrap().0).collect();
        assert_eq!(got, bs);
    }

    #[test]
    fn plans_match_synchronous_planning() {
        let bs = batches(4);
        let p = planner();
        let direct: Vec<_> = bs.iter().map(|b| p.plan(&b.seqs).unwrap()).collect();
        let loader = DcpDataloader::new(planner(), bs, 2);
        for (item, expect) in loader.zip(direct) {
            let (_, got) = item.unwrap();
            assert_eq!(got.placement, expect.placement);
            assert_eq!(got.plan, expect.plan);
        }
    }

    #[test]
    fn zero_lookahead_still_works() {
        let loader = DcpDataloader::new(planner(), batches(3), 0);
        assert_eq!(loader.count(), 3);
    }

    #[test]
    fn huge_lookahead_does_not_overflow() {
        // Regression: `consumed + 1 + lookahead` used to overflow for
        // κ = usize::MAX; the window arithmetic must saturate.
        let bs = batches(3);
        let loader = DcpDataloader::new(planner(), bs.clone(), usize::MAX);
        let got: Vec<Batch> = loader.map(|r| r.unwrap().0).collect();
        assert_eq!(got, bs);
    }

    #[test]
    fn len_and_empty() {
        let loader = DcpDataloader::new(planner(), batches(5), 1);
        assert_eq!(loader.len(), 5);
        assert!(!loader.is_empty());
        let empty = DcpDataloader::new(planner(), vec![], 1);
        assert!(empty.is_empty());
        assert_eq!(empty.count(), 0);
    }

    /// A plan function that panics on one specific batch's first attempt
    /// (killing its look-ahead worker) but succeeds on the retry.
    fn flaky_plan_fn(poison_len: u32) -> Arc<PlanFn> {
        let p = planner();
        let panics = AtomicUsize::new(0);
        Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            if seqs[0].0 == poison_len && panics.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected planning worker crash");
            }
            p.plan(seqs)
        })
    }

    #[test]
    fn dead_worker_recovers_via_sync_replan() {
        let bs = batches(6);
        // Batch index 1 has length 2560; its worker panics once.
        let mut loader = DcpDataloader::with_plan_fn(
            flaky_plan_fn(2560),
            bs.clone(),
            2,
            RetryConfig {
                backoff: Duration::from_millis(1),
                ..Default::default()
            },
        );
        let mut got = Vec::new();
        for item in loader.by_ref() {
            got.push(item.unwrap().0);
        }
        assert_eq!(got, bs, "every batch yields exactly once, in order");
        assert!(loader.replans() >= 1, "the dead worker forced a re-plan");
    }

    #[test]
    fn persistent_failure_is_typed_and_does_not_poison_later_batches() {
        let bs = batches(5);
        let p = planner();
        // Batches with length 2560 (index 1) always panic.
        let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            if seqs[0].0 == 2560 {
                panic!("injected permanent planner crash");
            }
            p.plan(seqs)
        });
        let loader = DcpDataloader::with_plan_fn(
            plan_fn,
            bs.clone(),
            2,
            RetryConfig {
                max_retries: 2,
                backoff: Duration::ZERO,
                ..Default::default()
            },
        );
        let results: Vec<_> = loader.collect();
        assert_eq!(results.len(), 5, "failure must not truncate the stream");
        for (i, r) in results.iter().enumerate() {
            if i == 1 {
                match r {
                    Err(DcpError::PlanningFailed {
                        batch_index,
                        attempts,
                        ..
                    }) => {
                        assert_eq!(*batch_index, 1);
                        assert_eq!(*attempts, 3, "initial + 2 retries");
                    }
                    other => panic!("expected PlanningFailed, got {other:?}"),
                }
            } else {
                let (batch, plan) = r.as_ref().unwrap();
                assert_eq!(batch, &bs[i]);
                assert_eq!(plan.num_devices(), 4);
            }
        }
    }

    #[test]
    fn timeout_triggers_sync_replan() {
        let bs = batches(3);
        let p = planner();
        // The look-ahead worker for batches of length 2560 hangs far past
        // the deadline; the synchronous re-plan path must rescue the batch.
        let slow = AtomicUsize::new(0);
        let plan_fn: Arc<PlanFn> = Arc::new(move |seqs: &[(u32, MaskSpec)]| {
            if seqs[0].0 == 2560 && slow.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_secs(5));
            }
            p.plan(seqs)
        });
        let mut loader = DcpDataloader::with_plan_fn(
            plan_fn,
            bs.clone(),
            1,
            RetryConfig {
                batch_deadline: Some(Duration::from_millis(50)),
                max_retries: 1,
                backoff: Duration::ZERO,
            },
        );
        let mut got = Vec::new();
        for item in loader.by_ref() {
            got.push(item.unwrap().0);
        }
        assert_eq!(got, bs);
        assert!(loader.replans() >= 1, "the slow worker forced a re-plan");
    }
}
