//! The per-batch DCP planner: block generation, hierarchical hypergraph
//! placement, and division scheduling (paper Sec. 4).

use std::time::Instant;

use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_hypergraph::{partition, Hypergraph, HypergraphBuilder, PartitionConfig};
use dcp_mask::MaskSpec;
use dcp_sched::{build_plan, ExecutionPlan, Placement, ScheduleConfig};
use dcp_types::{AttnSpec, ClusterSpec, DcpError, DcpResult};
use serde::{Deserialize, Serialize};

/// Planner hyper-parameters (the paper's defaults from Sec. 7.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Sequence-dimension block size (the paper searches {512, 1024, 2048,
    /// 4096}).
    pub block_size: u32,
    /// Head groups; `None` uses one group per KV head.
    pub head_blocks: Option<u32>,
    /// Number of divisions for computation/communication overlap.
    pub divisions: u32,
    /// Inter-node computation imbalance tolerance (paper: 0.4).
    pub eps_inter: f64,
    /// Intra-node computation imbalance tolerance (paper: 0.1).
    pub eps_intra: f64,
    /// Partitioner seed (plans are deterministic given the seed).
    pub seed: u64,
    /// Hierarchical (machines → devices) placement; `false` partitions
    /// directly over all devices (ablation).
    pub hierarchical: bool,
    /// Enable FM refinement in the partitioner (ablation).
    pub refine: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            block_size: 1024,
            head_blocks: None,
            divisions: 4,
            eps_inter: 0.4,
            eps_intra: 0.1,
            seed: 0xdc9,
            hierarchical: true,
            refine: true,
        }
    }
}

/// Wall-clock time spent in each planning stage (the paper's Fig. 18).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanningTimes {
    /// Block generation seconds.
    pub block_gen: f64,
    /// Hypergraph construction + partitioning seconds.
    pub partition: f64,
    /// Division scheduling + instruction emission seconds.
    pub schedule: f64,
}

impl PlanningTimes {
    /// Total planning seconds.
    pub fn total(&self) -> f64 {
        self.block_gen + self.partition + self.schedule
    }
}

/// Everything the planner produces for one batch.
#[derive(Debug, Clone)]
pub struct PlanOutput {
    /// The block decomposition.
    pub layout: BatchLayout,
    /// The device placement chosen by hypergraph partitioning.
    pub placement: Placement,
    /// The scheduled instruction streams.
    pub plan: ExecutionPlan,
    /// Stage timings.
    pub times: PlanningTimes,
}

impl PlanOutput {
    /// Number of devices the plan targets.
    pub fn num_devices(&self) -> u32 {
        self.plan.num_devices
    }
}

/// The DCP planner, bound to a cluster and an attention operator shape.
#[derive(Debug, Clone)]
pub struct Planner {
    cluster: ClusterSpec,
    attn: AttnSpec,
    cfg: PlannerConfig,
}

impl Planner {
    /// Creates a planner for `cluster` and `attn` under `cfg`.
    pub fn new(cluster: ClusterSpec, attn: AttnSpec, cfg: PlannerConfig) -> Self {
        Planner { cluster, attn, cfg }
    }

    /// The planner's configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// The cluster this planner targets.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Plans one batch: generates blocks, places them, schedules divisions.
    ///
    /// # Errors
    ///
    /// Propagates layout, partitioning or scheduling failures.
    pub fn plan(&self, seqs: &[(u32, MaskSpec)]) -> DcpResult<PlanOutput> {
        if seqs.is_empty() {
            return Err(DcpError::invalid_argument("empty batch"));
        }
        let t0 = Instant::now();
        let head_blocks = self.cfg.head_blocks.unwrap_or(self.attn.kv_heads);
        let layout = BatchLayout::build(
            self.attn,
            BlockConfig {
                block_size: self.cfg.block_size,
                head_blocks,
            },
            seqs,
        )?;
        let t1 = Instant::now();
        let placement = self.place(&layout)?;
        let t2 = Instant::now();
        let plan = build_plan(
            &layout,
            &placement,
            &ScheduleConfig {
                divisions: self.cfg.divisions,
                ..Default::default()
            },
        )?;
        let t3 = Instant::now();
        Ok(PlanOutput {
            layout,
            placement,
            plan,
            times: PlanningTimes {
                block_gen: (t1 - t0).as_secs_f64(),
                partition: (t2 - t1).as_secs_f64(),
                schedule: (t3 - t2).as_secs_f64(),
            },
        })
    }

    /// Builds the placement hypergraph of `layout`: one vertex per token
    /// block (weight `[0, bytes]`) and per computation block (weight
    /// `[flops, 0]`); per token block one hyperedge for Q+O (weight
    /// `q_bytes + o_bytes` — identical pin sets, so they are merged) and one
    /// for KV (weight `kv_bytes`), each connecting the token vertex to the
    /// consuming computation blocks.
    pub fn build_hypergraph(layout: &BatchLayout) -> Hypergraph {
        let nt = layout.token_blocks.len();
        let nc = layout.comp_blocks.len();
        let mut b = HypergraphBuilder::new(nt + nc);
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            b.set_vertex_weight(i, [0, tb.total_bytes()]);
        }
        for (i, cb) in layout.comp_blocks.iter().enumerate() {
            b.set_vertex_weight(nt + i, [cb.flops, 0]);
        }
        let mut pins: Vec<u32> = Vec::new();
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            // Q + O edge.
            pins.clear();
            pins.push(i as u32);
            pins.extend(layout.q_consumers[i].iter().map(|c| nt as u32 + c.0));
            if pins.len() > 1 {
                b.add_edge(tb.q_bytes + tb.o_bytes, &pins);
            }
            // KV edge.
            pins.clear();
            pins.push(i as u32);
            pins.extend(layout.kv_consumers[i].iter().map(|c| nt as u32 + c.0));
            if pins.len() > 1 {
                b.add_edge(tb.kv_bytes, &pins);
            }
        }
        b.build().expect("pins are in range by construction")
    }

    fn place(&self, layout: &BatchLayout) -> DcpResult<Placement> {
        let hg = Self::build_hypergraph(layout);
        let nt = layout.token_blocks.len();
        let x = self.cluster.nodes;
        let y = self.cluster.devices_per_node;
        let n = x * y;

        let assignment: Vec<u32> = if !self.cfg.hierarchical || x == 1 {
            let mut pc = PartitionConfig::new(n)
                .with_epsilon(self.cfg.eps_intra)
                .with_seed(self.cfg.seed);
            pc.refine_enabled = self.cfg.refine;
            partition(&hg, &pc)?.assignment
        } else {
            // Level 1: machines, minimizing inter-node volume.
            let mut pc = PartitionConfig::new(x)
                .with_epsilon(self.cfg.eps_inter)
                .with_seed(self.cfg.seed);
            pc.refine_enabled = self.cfg.refine;
            let machine = partition(&hg, &pc)?;
            // Level 2: devices within each machine. The per-machine
            // subproblems are independent — solve them on the rayon pool
            // (the paper parallelizes planning across CPU cores, Sec. 6.1).
            use rayon::prelude::*;
            let locals: Vec<DcpResult<(Vec<u32>, Vec<u32>)>> = (0..x)
                .into_par_iter()
                .map(|m| {
                    let verts: Vec<u32> = (0..hg.num_vertices() as u32)
                        .filter(|&v| machine.assignment[v as usize] == m)
                        .collect();
                    if verts.is_empty() {
                        return Ok((Vec::new(), Vec::new()));
                    }
                    let (sub, map) = hg.induced_subgraph(&verts);
                    let mut pc2 = PartitionConfig::new(y)
                        .with_epsilon(self.cfg.eps_intra)
                        .with_seed(self.cfg.seed.wrapping_add(m as u64 + 1));
                    pc2.refine_enabled = self.cfg.refine;
                    let local = partition(&sub, &pc2)?;
                    Ok((map, local.assignment))
                })
                .collect();
            let mut assignment = vec![0u32; hg.num_vertices()];
            for (m, res) in locals.into_iter().enumerate() {
                let (map, local) = res?;
                for (i, &orig) in map.iter().enumerate() {
                    assignment[orig as usize] = m as u32 * y + local[i];
                }
            }
            assignment
        };

        Ok(Placement {
            num_devices: n,
            token_to_dev: assignment[..nt].to_vec(),
            comp_to_dev: assignment[nt..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_sched::schedule::validate_plan;

    fn planner(nodes: u32) -> Planner {
        Planner::new(
            ClusterSpec::p4de(nodes),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
        )
    }

    #[test]
    fn plan_is_valid_and_deterministic() {
        let p = planner(1);
        let seqs = vec![
            (16384, MaskSpec::Causal),
            (4096, MaskSpec::Causal),
            (2048, MaskSpec::paper_lambda()),
        ];
        let a = p.plan(&seqs).unwrap();
        validate_plan(&a.layout, &a.placement, &a.plan).unwrap();
        let b = p.plan(&seqs).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn compute_is_balanced_within_tolerance() {
        let p = planner(1);
        let seqs = vec![(32768, MaskSpec::Causal), (32768, MaskSpec::Causal)];
        let out = p.plan(&seqs).unwrap();
        let loads = out.placement.comp_loads(&out.layout);
        let total: u64 = loads.iter().sum();
        let avg = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().unwrap() as f64;
        // eps_intra = 0.1 plus a block of granularity slack.
        let max_block = out
            .layout
            .comp_blocks
            .iter()
            .map(|c| c.flops)
            .max()
            .unwrap() as f64;
        assert!(
            max <= avg * 1.1 + max_block,
            "max {max} vs avg {avg} (+block {max_block})"
        );
    }

    #[test]
    fn short_sequences_avoid_communication() {
        // A batch of only short sequences (each smaller than a block)
        // should be placeable with zero communication (pure DP).
        let p = planner(1);
        let seqs: Vec<(u32, MaskSpec)> = (0..16).map(|_| (1024, MaskSpec::Causal)).collect();
        let out = p.plan(&seqs).unwrap();
        assert_eq!(
            out.plan.total_comm_bytes(),
            0,
            "every sequence fits on one device"
        );
    }

    #[test]
    fn hierarchical_reduces_inter_node_volume() {
        let seqs = vec![
            (65536, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (8192, MaskSpec::Causal),
        ];
        let cluster = ClusterSpec::p4de(2);
        let mk = |hier: bool| {
            Planner::new(
                cluster.clone(),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    hierarchical: hier,
                    ..Default::default()
                },
            )
        };
        let inter_bytes = |out: &PlanOutput| {
            let c = &cluster;
            out.plan.fwd.comm_bytes_where(|a, b| {
                c.node_of(dcp_types::DeviceId(a)) != c.node_of(dcp_types::DeviceId(b))
            })
        };
        let hier = mk(true).plan(&seqs).unwrap();
        let flat = mk(false).plan(&seqs).unwrap();
        assert!(
            inter_bytes(&hier) <= inter_bytes(&flat),
            "hier {} > flat {}",
            inter_bytes(&hier),
            inter_bytes(&flat)
        );
    }

    #[test]
    fn looser_epsilon_no_more_comm() {
        let seqs = vec![(32768, MaskSpec::Causal), (8192, MaskSpec::Causal)];
        let comm = |eps: f64| {
            let p = Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    eps_intra: eps,
                    ..Default::default()
                },
            );
            p.plan(&seqs).unwrap().plan.fwd.total_comm_bytes()
        };
        let tight = comm(0.02);
        let loose = comm(0.8);
        assert!(loose <= tight, "loose {loose} > tight {tight}");
    }

    #[test]
    fn sparse_masks_cut_comm_vs_causal() {
        let p = planner(2);
        let causal = p.plan(&[(131072, MaskSpec::Causal)]).unwrap();
        let lambda = p.plan(&[(131072, MaskSpec::paper_lambda())]).unwrap();
        assert!(
            lambda.plan.total_comm_bytes() < causal.plan.total_comm_bytes() / 2,
            "lambda {} vs causal {}",
            lambda.plan.total_comm_bytes(),
            causal.plan.total_comm_bytes()
        );
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(planner(1).plan(&[]).is_err());
    }

    #[test]
    fn hypergraph_cost_matches_plan_forward_comm() {
        // The connectivity−1 objective is exactly the forward communication
        // volume the schedule realizes.
        let p = planner(1);
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::paper_lambda())];
        let out = p.plan(&seqs).unwrap();
        let hg = Planner::build_hypergraph(&out.layout);
        let nt = out.layout.token_blocks.len();
        let mut assignment = out.placement.token_to_dev.clone();
        assignment.extend_from_slice(&out.placement.comp_to_dev);
        let cost = hg.connectivity_cost(&assignment, out.placement.num_devices);
        assert_eq!(cost, out.plan.fwd.total_comm_bytes());
        let _ = nt;
    }
}
