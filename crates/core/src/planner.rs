//! The per-batch DCP planner: block generation, hierarchical hypergraph
//! placement, and division scheduling (paper Sec. 4).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_hypergraph::{
    partition_with_stats, Hypergraph, HypergraphBuilder, PartitionConfig, PartitionStats,
    VertexWeight,
};
use dcp_mask::MaskSpec;
use dcp_obs::{Event, ObsHandle, Source as ObsSource};
use dcp_sched::{
    build_plan, verify_plan, ExecutionPlan, PassConfig, PassManager, PassOutcome, Placement,
    ScheduleConfig,
};
use dcp_sim::{simulate_plan, FaultSpec};
use dcp_types::{AttnSpec, ClusterSpec, DcpError, DcpResult, PlanTier};
use serde::{Deserialize, Serialize};

/// Floor on the per-device network weight derived from degraded links, so a
/// near-dead link never drives a placement target to zero.
const MIN_NET_WEIGHT: f64 = 0.05;

/// Planner hyper-parameters (the paper's defaults from Sec. 7.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Sequence-dimension block size (the paper searches {512, 1024, 2048,
    /// 4096}).
    pub block_size: u32,
    /// Head groups; `None` uses one group per KV head.
    pub head_blocks: Option<u32>,
    /// Number of divisions for computation/communication overlap.
    pub divisions: u32,
    /// Inter-node computation imbalance tolerance (paper: 0.4).
    pub eps_inter: f64,
    /// Intra-node computation imbalance tolerance (paper: 0.1).
    pub eps_intra: f64,
    /// Partitioner seed (plans are deterministic given the seed).
    pub seed: u64,
    /// Hierarchical (machines → devices) placement; `false` partitions
    /// directly over all devices (ablation).
    pub hierarchical: bool,
    /// Enable FM refinement in the partitioner (ablation).
    pub refine: bool,
    /// Fall back to greedy and then static placement when hypergraph
    /// partitioning errors or is ε-infeasible (default `true`). When
    /// `false`, the first failure surfaces as an error (strict mode).
    pub fallback: bool,
    /// Enforce the user ε exactly on the achieved device-level compute
    /// balance — no block-granularity slack. A partition violating it counts
    /// as ε-infeasible and triggers the fallback chain. Default `false`
    /// (the partitioner's caps, which grant one block of slack, decide).
    pub strict_epsilon: bool,
    /// Start the fallback chain at this tier, skipping earlier ones
    /// (ablations, tests, or pinning a degraded mode). `None` starts at
    /// [`PlanTier::Partitioned`].
    pub force_tier: Option<PlanTier>,
    /// Capacity of the signature-keyed plan cache (LRU entries). Long-context
    /// corpora repeat batch shapes constantly, so identical (lengths, masks,
    /// cluster, config) batches reuse the finished plan instead of
    /// re-partitioning. `0` disables caching.
    #[serde(default = "default_plan_cache")]
    pub plan_cache: usize,
    /// Quality gate on the fallback chain: a greedy or static plan whose
    /// simulated makespan exceeds this factor times the partitioned tier's
    /// estimate is rejected ([`DcpError::FallbackRejected`]) instead of
    /// silently shipped. The reference is the partitioned placement that
    /// failed the balance check — degraded, but still the best available
    /// estimate. `force_tier` skips the gate (there is no reference).
    #[serde(default = "default_max_fallback_regression")]
    pub max_fallback_regression: f64,
    /// Known cluster degradations the placement should plan *around*:
    /// straggler devices get proportionally less compute, devices behind
    /// degraded or flapping links get proportionally fewer token blocks.
    /// `None` (the default) places for a healthy cluster.
    #[serde(default)]
    pub fault_spec: Option<FaultSpec>,
    /// Post-scheduling pass pipeline over the rendered instruction streams
    /// (`dcp_sched::passes`). Disabled by default: downstream consumers
    /// that splice streams (the recovery patcher) assume the scheduler's
    /// canonical emission shape. Enable with [`PassConfig::optimize`] when
    /// the plan goes straight to the executor or simulator.
    #[serde(default)]
    pub passes: PassConfig,
}

fn default_plan_cache() -> usize {
    64
}

fn default_max_fallback_regression() -> f64 {
    2.0
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            block_size: 1024,
            head_blocks: None,
            divisions: 4,
            eps_inter: 0.4,
            eps_intra: 0.1,
            seed: 0xdc9,
            hierarchical: true,
            refine: true,
            fallback: true,
            strict_epsilon: false,
            force_tier: None,
            plan_cache: default_plan_cache(),
            max_fallback_regression: default_max_fallback_regression(),
            fault_spec: None,
            passes: PassConfig::default(),
        }
    }
}

/// Wall-clock time spent in each planning stage (the paper's Fig. 18).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanningTimes {
    /// Block generation seconds.
    pub block_gen: f64,
    /// Hypergraph construction + partitioning seconds.
    pub partition: f64,
    /// Division scheduling + instruction emission seconds.
    pub schedule: f64,
}

impl PlanningTimes {
    /// Total planning seconds.
    pub fn total(&self) -> f64 {
        self.block_gen + self.partition + self.schedule
    }
}

/// Per-call planning performance counters: cache outcome plus a per-stage
/// breakdown of where partitioning time went. Stage times are summed over
/// every sub-partition of the hierarchy (CPU seconds, not wall-clock, when
/// sub-problems run in parallel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Whether this output was served from the plan cache. On a hit the
    /// stage times below are zero and `total_s` is the lookup time.
    pub cache_hit: bool,
    /// Partitioner coarsening seconds (including V-cycle re-coarsening).
    pub coarsen_s: f64,
    /// Initial-partitioning seconds at the coarsest levels.
    pub initial_s: f64,
    /// FM refinement and balance-repair seconds.
    pub refine_s: f64,
    /// Division scheduling + instruction emission seconds.
    pub schedule_s: f64,
    /// End-to-end seconds for this `plan()` call.
    pub total_s: f64,
}

/// Everything the planner produces for one batch. Serializable so planned
/// batches survive a dataloader snapshot/restore cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanOutput {
    /// The block decomposition.
    pub layout: BatchLayout,
    /// The device placement chosen by hypergraph partitioning.
    pub placement: Placement,
    /// The scheduled instruction streams.
    pub plan: ExecutionPlan,
    /// Stage timings.
    pub times: PlanningTimes,
    /// Which tier of the fallback chain produced this plan.
    pub tier: PlanTier,
    /// Why earlier tiers were skipped, when `tier` is not
    /// [`PlanTier::Partitioned`] (one entry per skipped tier).
    pub fallback_reason: Option<String>,
    /// Cache outcome and per-stage timing for this call.
    pub stats: PlanStats,
    /// What each optimizer pass changed, in pipeline order (empty when the
    /// pipeline is disabled). Deserializes as empty from plans serialized
    /// before the pipeline existed.
    #[serde(default)]
    pub passes: Vec<PassOutcome>,
}

impl PlanOutput {
    /// Number of devices the plan targets.
    pub fn num_devices(&self) -> u32 {
        self.plan.num_devices
    }
}

/// LRU cache of finished plans keyed by the canonical batch signature.
/// Shared (behind `Arc<Mutex<_>>`) across clones of a [`Planner`], so
/// dataloader workers planning on separate threads reuse each other's work.
#[derive(Debug, Default)]
struct PlanCache {
    /// Monotonic access counter used as the recency stamp.
    stamp: u64,
    hits: u64,
    misses: u64,
    entries: HashMap<String, (u64, PlanOutput)>,
}

impl PlanCache {
    fn get(&mut self, key: &str) -> Option<PlanOutput> {
        self.stamp += 1;
        match self.entries.get_mut(key) {
            Some((t, out)) => {
                *t = self.stamp;
                self.hits += 1;
                Some(out.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, cap: usize, key: String, out: PlanOutput) {
        if cap == 0 {
            return;
        }
        self.stamp += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= cap {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(key, (self.stamp, out));
    }
}

/// The DCP planner, bound to a cluster and an attention operator shape.
#[derive(Debug, Clone)]
pub struct Planner {
    cluster: ClusterSpec,
    attn: AttnSpec,
    cfg: PlannerConfig,
    cache: Arc<Mutex<PlanCache>>,
    obs: ObsHandle,
}

impl Planner {
    /// Creates a planner for `cluster` and `attn` under `cfg`.
    pub fn new(cluster: ClusterSpec, attn: AttnSpec, cfg: PlannerConfig) -> Self {
        Planner {
            cluster,
            attn,
            cfg,
            cache: Arc::new(Mutex::new(PlanCache::default())),
            obs: ObsHandle::noop(),
        }
    }

    /// Attaches an observability sink: every subsequent `plan()` call emits
    /// stage spans (block_gen / place / schedule plus the partitioner's
    /// coarsen / initial / refine breakdown), cache hit/miss counters and
    /// fallback-tier transition events. All emission happens on the calling
    /// thread, in plan order, so the stream is deterministic.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Lifetime cache hit / miss counts of this planner (shared across
    /// clones). A degenerate batch rejected before lookup counts as neither.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock().unwrap();
        (c.hits, c.misses)
    }

    /// The canonical batch signature: the *ordered* `(length, mask)` list
    /// plus the cluster shape and full planner config, serialized to JSON.
    /// Order matters — block and vertex numbering follow batch order, so
    /// permuted batches legitimately produce different plans.
    fn signature(&self, seqs: &[(u32, MaskSpec)]) -> String {
        serde_json::to_string(&(seqs, &self.cluster, &self.cfg))
            .expect("planner signature serialization cannot fail")
    }

    /// The planner's configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// The cluster this planner targets.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Plans one batch: generates blocks, places them, schedules divisions.
    ///
    /// Placement walks the fallback chain (paper planner → greedy LPT →
    /// static zigzag) when `cfg.fallback` is on: a partitioner error or an
    /// ε-infeasible partition degrades the tier instead of failing the
    /// batch, and the tier that produced the plan is recorded in
    /// [`PlanOutput::tier`].
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] for degenerate inputs (empty
    /// batch, zero devices, `divisions == 0`); otherwise propagates layout
    /// failures, and placement/scheduling failures only once every enabled
    /// tier has been exhausted.
    pub fn plan(&self, seqs: &[(u32, MaskSpec)]) -> DcpResult<PlanOutput> {
        self.plan_for_iter(seqs, None)
    }

    /// [`Planner::plan`] with an explicit iteration/batch index stamped onto
    /// every emitted observability event (the planner itself has no notion
    /// of iterations; callers that do — the dataloader, the trace harness —
    /// pass it here so planner spans correlate with executor/sim spans).
    pub fn plan_for_iter(
        &self,
        seqs: &[(u32, MaskSpec)],
        iter: Option<u64>,
    ) -> DcpResult<PlanOutput> {
        if seqs.is_empty() {
            return Err(DcpError::invalid_argument("empty batch"));
        }
        let n = self.cluster.num_devices();
        if n == 0 {
            return Err(DcpError::invalid_argument(
                "cluster has zero devices (nodes * devices_per_node == 0)",
            ));
        }
        if self.cfg.divisions == 0 {
            return Err(DcpError::invalid_argument("divisions must be > 0"));
        }
        let t_total = Instant::now();
        // Observability events carry the batch index when known; all
        // emission below is on the calling thread, in plan order.
        let obs_on = self.obs.enabled();
        let stamp = |e: Event| match iter {
            Some(i) => e.with_iter(i),
            None => e,
        };
        let key = if self.cfg.plan_cache > 0 {
            let key = self.signature(seqs);
            if let Some(mut out) = self.cache.lock().unwrap().get(&key) {
                out.stats = PlanStats {
                    cache_hit: true,
                    total_s: t_total.elapsed().as_secs_f64(),
                    ..PlanStats::default()
                };
                if obs_on {
                    self.obs.record(stamp(
                        Event::counter(ObsSource::Planner, "plan_cache_hit", 1.0)
                            .with_label(out.tier.label()),
                    ));
                }
                return Ok(out);
            }
            if obs_on {
                self.obs.record(stamp(Event::counter(
                    ObsSource::Planner,
                    "plan_cache_miss",
                    1.0,
                )));
            }
            Some(key)
        } else {
            None
        };
        let t0 = Instant::now();
        let head_blocks = self.cfg.head_blocks.unwrap_or(self.attn.kv_heads);
        let layout = BatchLayout::build(
            self.attn,
            BlockConfig {
                block_size: self.cfg.block_size,
                head_blocks,
            },
            seqs,
        )?;
        let block_gen = t0.elapsed().as_secs_f64();
        if obs_on {
            self.obs.record(stamp(
                Event::span(ObsSource::Planner, "block_gen")
                    .with_time((t0 - t_total).as_secs_f64(), block_gen),
            ));
        }

        let start = self.cfg.force_tier.unwrap_or(PlanTier::Partitioned);
        let mut partition_s = 0.0;
        let mut schedule_s = 0.0;
        let mut pstats = PartitionStats::default();
        let mut reasons: Vec<String> = Vec::new();
        let mut last_err: Option<DcpError> = None;
        let mut chosen: Option<(Placement, ExecutionPlan, PlanTier)> = None;
        // The partitioned placement that failed the balance check, kept as
        // the makespan reference the fallback quality gate compares against.
        let mut reference: Option<Placement> = None;
        for tier in PlanTier::all() {
            if tier < start {
                continue;
            }
            let tp = Instant::now();
            let placed = self.placement_for_tier(&layout, tier, n, &mut pstats, &mut reference);
            let place_dt = tp.elapsed().as_secs_f64();
            partition_s += place_dt;
            if obs_on {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, "place")
                        .with_label(tier.label())
                        .with_time((tp - t_total).as_secs_f64(), place_dt),
                ));
            }
            let placement = match placed {
                Ok(p) => p,
                Err(e) => {
                    if obs_on {
                        self.obs.record(stamp(
                            Event::instant(ObsSource::Planner, "tier_fallback")
                                .with_label(tier.label())
                                .with_time((t_total.elapsed()).as_secs_f64(), 0.0),
                        ));
                    }
                    reasons.push(format!("{}: {e}", tier.label()));
                    last_err = Some(e);
                    if !self.cfg.fallback {
                        break;
                    }
                    continue;
                }
            };
            let ts = Instant::now();
            let built = build_plan(
                &layout,
                &placement,
                &ScheduleConfig {
                    divisions: self.cfg.divisions,
                    ..Default::default()
                },
            );
            let sched_dt = ts.elapsed().as_secs_f64();
            schedule_s += sched_dt;
            if obs_on {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, "schedule")
                        .with_label(tier.label())
                        .with_time((ts - t_total).as_secs_f64(), sched_dt),
                ));
            }
            match built {
                Ok(plan) => {
                    // Fallback quality gate: a degraded-tier plan must not
                    // regress the simulated makespan past the configured
                    // factor of what the (unbalanced) partitioned placement
                    // would have achieved. `force_tier` has no reference to
                    // compare against and is exempt.
                    if tier != PlanTier::Partitioned && self.cfg.force_tier.is_none() {
                        if let Some(factor) = reference
                            .as_ref()
                            .and_then(|r| self.fallback_regression(&layout, r, &plan))
                        {
                            if factor > self.cfg.max_fallback_regression {
                                let e = DcpError::fallback_rejected(
                                    tier,
                                    factor,
                                    self.cfg.max_fallback_regression,
                                );
                                if obs_on {
                                    self.obs.record(stamp(
                                        Event::instant(ObsSource::Planner, "fallback_rejected")
                                            .with_label(tier.label())
                                            .with_time(t_total.elapsed().as_secs_f64(), 0.0),
                                    ));
                                }
                                reasons.push(format!("{}: {e}", tier.label()));
                                last_err = Some(e);
                                if !self.cfg.fallback {
                                    break;
                                }
                                continue;
                            }
                        }
                    }
                    chosen = Some((placement, plan, tier));
                    break;
                }
                Err(e) => {
                    if obs_on {
                        self.obs.record(stamp(
                            Event::instant(ObsSource::Planner, "tier_fallback")
                                .with_label(tier.label())
                                .with_time((t_total.elapsed()).as_secs_f64(), 0.0),
                        ));
                    }
                    reasons.push(format!("{}: {e}", tier.label()));
                    last_err = Some(e);
                    if !self.cfg.fallback {
                        break;
                    }
                }
            }
        }

        let Some((placement, mut plan, tier)) = chosen else {
            return Err(last_err
                .unwrap_or_else(|| DcpError::invalid_plan("no fallback tier produced a plan")));
        };
        // Optimizer pass pipeline (when enabled), then the stream verifier on
        // every freshly produced plan — optimized or not. Cache hits skip
        // both: the cached plan already passed.
        let mut pass_outcomes: Vec<PassOutcome> = Vec::new();
        if self.cfg.passes.enabled {
            let tp = Instant::now();
            let pm = PassManager::new(self.cfg.passes.clone());
            pass_outcomes = pm.run_plan(&layout, &placement, &mut plan);
            schedule_s += tp.elapsed().as_secs_f64();
            if obs_on {
                let mut at = (tp - t_total).as_secs_f64();
                let per_pass = tp.elapsed().as_secs_f64() / pass_outcomes.len().max(1) as f64;
                for o in &pass_outcomes {
                    self.obs.record(stamp(
                        Event::span(ObsSource::Planner, "pass")
                            .with_label(format!("{}:{}", o.pass, o.phase))
                            .with_time(at, per_pass),
                    ));
                    at += per_pass;
                }
                let saved: u64 = pass_outcomes
                    .iter()
                    .map(PassOutcome::comm_bytes_saved)
                    .sum();
                self.obs.record(stamp(Event::counter(
                    ObsSource::Planner,
                    "pass_comm_bytes_saved",
                    saved as f64,
                )));
            }
        }
        if let Err(diag) = verify_plan(&layout, &placement, &plan) {
            return Err(DcpError::invalid_plan(format!(
                "planner produced an illegal stream ({} tier): {diag}",
                tier.label()
            )));
        }
        if obs_on {
            // Partitioner stage breakdown (CPU seconds summed over the
            // hierarchy, rendered as consecutive segments of one row).
            let mut at = block_gen;
            for (name, dur) in [
                ("coarsen", pstats.coarsen_s),
                ("initial", pstats.initial_s),
                ("refine", pstats.refine_s),
            ] {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, name)
                        .with_label(tier.label())
                        .with_time(at, dur),
                ));
                at += dur;
            }
        }
        let out = PlanOutput {
            layout,
            placement,
            plan,
            times: PlanningTimes {
                block_gen,
                partition: partition_s,
                schedule: schedule_s,
            },
            tier,
            fallback_reason: if reasons.is_empty() {
                None
            } else {
                Some(reasons.join("; "))
            },
            stats: PlanStats {
                cache_hit: false,
                coarsen_s: pstats.coarsen_s,
                initial_s: pstats.initial_s,
                refine_s: pstats.refine_s,
                schedule_s,
                total_s: t_total.elapsed().as_secs_f64(),
            },
            passes: pass_outcomes,
        };
        if let Some(key) = key {
            self.cache
                .lock()
                .unwrap()
                .insert(self.cfg.plan_cache, key, out.clone());
        }
        Ok(out)
    }

    /// Computes the placement for one tier of the fallback chain,
    /// accumulating partitioner stage timings into `pstats` (the greedy and
    /// static tiers do not partition and leave it untouched).
    fn placement_for_tier(
        &self,
        layout: &BatchLayout,
        tier: PlanTier,
        n: u32,
        pstats: &mut PartitionStats,
        reference: &mut Option<Placement>,
    ) -> DcpResult<Placement> {
        match tier {
            PlanTier::Partitioned => {
                let (placement, balanced, stats) = self.place(layout)?;
                pstats.merge(&stats);
                if !balanced {
                    *reference = Some(placement);
                    return Err(DcpError::Infeasible(
                        "partition exceeded the balance caps (ε-infeasible)".into(),
                    ));
                }
                if self.cfg.strict_epsilon {
                    let loads = placement.comp_loads(layout);
                    let total: u64 = loads.iter().sum();
                    let avg = total as f64 / loads.len().max(1) as f64;
                    let max = loads.iter().copied().max().unwrap_or(0) as f64;
                    if max > (1.0 + self.cfg.eps_intra) * avg {
                        *reference = Some(placement);
                        return Err(DcpError::Infeasible(format!(
                            "strict ε violated: max load {max:.0} > (1 + {}) * avg {avg:.0}",
                            self.cfg.eps_intra
                        )));
                    }
                }
                Ok(placement)
            }
            PlanTier::Greedy => Placement::greedy(layout, n),
            PlanTier::Static => dcp_baselines::static_placement(layout, n, true),
        }
    }

    /// Makespan ratio of a fallback candidate to the partitioned reference
    /// placement, both simulated on the planner's cluster. `None` (gate
    /// skipped) when the reference cannot be scheduled or either simulation
    /// fails — the gate only ever vetoes with positive evidence.
    fn fallback_regression(
        &self,
        layout: &BatchLayout,
        reference: &Placement,
        candidate: &ExecutionPlan,
    ) -> Option<f64> {
        let sched = ScheduleConfig {
            divisions: self.cfg.divisions,
            ..Default::default()
        };
        let ref_plan = build_plan(layout, reference, &sched).ok()?;
        let ref_t = simulate_plan(&self.cluster, &ref_plan).ok()?.total();
        let cand_t = simulate_plan(&self.cluster, candidate).ok()?.total();
        if !ref_t.is_finite() || ref_t <= 0.0 || !cand_t.is_finite() {
            return None;
        }
        Some(cand_t / ref_t)
    }

    /// Builds the placement hypergraph of `layout`: one vertex per token
    /// block (weight `[0, bytes]`) and per computation block (weight
    /// `[flops, 0]`); per token block one hyperedge for Q+O (weight
    /// `q_bytes + o_bytes` — identical pin sets, so they are merged) and one
    /// for KV (weight `kv_bytes`), each connecting the token vertex to the
    /// consuming computation blocks.
    pub fn build_hypergraph(layout: &BatchLayout) -> Hypergraph {
        let nt = layout.token_blocks.len();
        let nc = layout.comp_blocks.len();
        let mut b = HypergraphBuilder::new(nt + nc);
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            b.set_vertex_weight(i, [0, tb.total_bytes()]);
        }
        for (i, cb) in layout.comp_blocks.iter().enumerate() {
            b.set_vertex_weight(nt + i, [cb.flops, 0]);
        }
        let mut pins: Vec<u32> = Vec::new();
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            // Q + O edge.
            pins.clear();
            pins.push(i as u32);
            pins.extend(layout.q_consumers[i].iter().map(|c| nt as u32 + c.0));
            if pins.len() > 1 {
                b.add_edge(tb.q_bytes + tb.o_bytes, &pins);
            }
            // KV edge.
            pins.clear();
            pins.push(i as u32);
            pins.extend(layout.kv_consumers[i].iter().map(|c| nt as u32 + c.0));
            if pins.len() > 1 {
                b.add_edge(tb.kv_bytes, &pins);
            }
        }
        b.build().expect("pins are in range by construction")
    }

    /// Per-device capacity weights derived from `cfg.fault_spec`:
    /// `[compute, bytes]` — compute ∝ 1/slowdown, bytes ∝ the rate factor of
    /// the device's worst incident link (flapping links contribute their
    /// duty-weighted mean). `None` when no spec is set or it changes nothing,
    /// so the healthy path is byte-identical to a fault-blind planner.
    fn fault_weights(&self, n: u32) -> Option<Vec<[f64; 2]>> {
        let spec = self.cfg.fault_spec.as_ref()?;
        let n = n as usize;
        let slow = spec.slowdowns(n);
        let mut net = vec![1.0f64; n];
        for (src, dst, factor) in spec.link_factors() {
            for d in [src, dst] {
                if (d as usize) < n {
                    net[d as usize] = net[d as usize].min(factor.max(MIN_NET_WEIGHT));
                }
            }
        }
        for (src, dst, _period, duty, factor) in spec.flapping_links() {
            let mean = duty * factor + (1.0 - duty);
            for d in [src, dst] {
                if (d as usize) < n {
                    net[d as usize] = net[d as usize].min(mean.max(MIN_NET_WEIGHT));
                }
            }
        }
        let w: Vec<[f64; 2]> = (0..n).map(|d| [1.0 / slow[d].max(1.0), net[d]]).collect();
        if w.iter().all(|x| x[0] >= 1.0 - 1e-12 && x[1] >= 1.0 - 1e-12) {
            return None;
        }
        Some(w)
    }

    /// Splits `totals` across parts proportionally to `weights` (per
    /// dimension, floored at 1 so downstream caps stay positive).
    fn targets_from_weights(totals: VertexWeight, weights: &[[f64; 2]]) -> Vec<VertexWeight> {
        let mut t = vec![[0u64; 2]; weights.len()];
        for dim in 0..2 {
            let sum: f64 = weights.iter().map(|w| w[dim]).sum();
            for (ti, w) in t.iter_mut().zip(weights) {
                ti[dim] = ((totals[dim] as f64 * w[dim] / sum).round() as u64).max(1);
            }
        }
        t
    }

    fn place(&self, layout: &BatchLayout) -> DcpResult<(Placement, bool, PartitionStats)> {
        // Per-machine sub-partition: vertex map, local assignment, balanced,
        // stage timings.
        type LocalPartition = (Vec<u32>, Vec<u32>, bool, PartitionStats);
        let hg = Self::build_hypergraph(layout);
        let nt = layout.token_blocks.len();
        let x = self.cluster.nodes;
        let y = self.cluster.devices_per_node;
        let n = x * y;
        let fw = self.fault_weights(n);
        let totals = hg.part_weights(&vec![0u32; hg.num_vertices()], 1)[0];

        let mut stats = PartitionStats::default();
        let (assignment, balanced): (Vec<u32>, bool) = if !self.cfg.hierarchical || x == 1 {
            let mut pc = PartitionConfig::new(n)
                .with_epsilon(self.cfg.eps_intra)
                .with_seed(self.cfg.seed);
            pc.refine_enabled = self.cfg.refine;
            if let Some(w) = &fw {
                pc = pc.with_part_targets(Self::targets_from_weights(totals, w));
            }
            let (part, s) = partition_with_stats(&hg, &pc)?;
            stats.merge(&s);
            (part.assignment, part.balanced)
        } else {
            // Level 1: machines, minimizing inter-node volume.
            let mut pc = PartitionConfig::new(x)
                .with_epsilon(self.cfg.eps_inter)
                .with_seed(self.cfg.seed);
            pc.refine_enabled = self.cfg.refine;
            if let Some(w) = &fw {
                // A machine's capacity is the sum of its member devices'.
                let mw: Vec<[f64; 2]> = (0..x as usize)
                    .map(|m| {
                        let mut s = [0.0f64; 2];
                        for j in 0..y as usize {
                            s[0] += w[m * y as usize + j][0];
                            s[1] += w[m * y as usize + j][1];
                        }
                        s
                    })
                    .collect();
                pc = pc.with_part_targets(Self::targets_from_weights(totals, &mw));
            }
            let (machine, s1) = partition_with_stats(&hg, &pc)?;
            stats.merge(&s1);
            let mut balanced = machine.balanced;
            // Level 2: devices within each machine. The per-machine
            // subproblems are independent — solve them on the rayon pool
            // (the paper parallelizes planning across CPU cores, Sec. 6.1).
            use rayon::prelude::*;
            let locals: Vec<DcpResult<LocalPartition>> = (0..x)
                .into_par_iter()
                .map(|m| {
                    let verts: Vec<u32> = (0..hg.num_vertices() as u32)
                        .filter(|&v| machine.assignment[v as usize] == m)
                        .collect();
                    if verts.is_empty() {
                        return Ok((Vec::new(), Vec::new(), true, PartitionStats::default()));
                    }
                    let (sub, map) = hg.induced_subgraph(&verts);
                    let mut pc2 = PartitionConfig::new(y)
                        .with_epsilon(self.cfg.eps_intra)
                        .with_seed(self.cfg.seed.wrapping_add(m as u64 + 1));
                    pc2.refine_enabled = self.cfg.refine;
                    if let Some(w) = &fw {
                        // Re-scale the member devices' weights to the load
                        // level 1 actually assigned to this machine.
                        let sub_totals = sub.part_weights(&vec![0u32; sub.num_vertices()], 1)[0];
                        let dw = &w[m as usize * y as usize..(m as usize + 1) * y as usize];
                        pc2 = pc2.with_part_targets(Self::targets_from_weights(sub_totals, dw));
                    }
                    let (local, s2) = partition_with_stats(&sub, &pc2)?;
                    Ok((map, local.assignment, local.balanced, s2))
                })
                .collect();
            let mut assignment = vec![0u32; hg.num_vertices()];
            for (m, res) in locals.into_iter().enumerate() {
                let (map, local, local_balanced, s2) = res?;
                balanced &= local_balanced;
                stats.merge(&s2);
                for (i, &orig) in map.iter().enumerate() {
                    assignment[orig as usize] = m as u32 * y + local[i];
                }
            }
            (assignment, balanced)
        };

        Ok((
            Placement {
                num_devices: n,
                token_to_dev: assignment[..nt].to_vec(),
                comp_to_dev: assignment[nt..].to_vec(),
            },
            balanced,
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_sched::schedule::validate_plan;

    fn planner(nodes: u32) -> Planner {
        Planner::new(
            ClusterSpec::p4de(nodes),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
        )
    }

    #[test]
    fn plan_is_valid_and_deterministic() {
        let p = planner(1);
        let seqs = vec![
            (16384, MaskSpec::Causal),
            (4096, MaskSpec::Causal),
            (2048, MaskSpec::paper_lambda()),
        ];
        let a = p.plan(&seqs).unwrap();
        validate_plan(&a.layout, &a.placement, &a.plan).unwrap();
        let b = p.plan(&seqs).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn compute_is_balanced_within_tolerance() {
        let p = planner(1);
        let seqs = vec![(32768, MaskSpec::Causal), (32768, MaskSpec::Causal)];
        let out = p.plan(&seqs).unwrap();
        let loads = out.placement.comp_loads(&out.layout);
        let total: u64 = loads.iter().sum();
        let avg = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().unwrap() as f64;
        // eps_intra = 0.1 plus a block of granularity slack.
        let max_block = out
            .layout
            .comp_blocks
            .iter()
            .map(|c| c.flops)
            .max()
            .unwrap() as f64;
        assert!(
            max <= avg * 1.1 + max_block,
            "max {max} vs avg {avg} (+block {max_block})"
        );
    }

    #[test]
    fn short_sequences_avoid_communication() {
        // A batch of only short sequences (each smaller than a block)
        // should be placeable with zero communication (pure DP).
        let p = planner(1);
        let seqs: Vec<(u32, MaskSpec)> = (0..16).map(|_| (1024, MaskSpec::Causal)).collect();
        let out = p.plan(&seqs).unwrap();
        assert_eq!(
            out.plan.total_comm_bytes(),
            0,
            "every sequence fits on one device"
        );
    }

    #[test]
    fn hierarchical_reduces_inter_node_volume() {
        let seqs = vec![
            (65536, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (8192, MaskSpec::Causal),
        ];
        let cluster = ClusterSpec::p4de(2);
        let mk = |hier: bool| {
            Planner::new(
                cluster.clone(),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    hierarchical: hier,
                    ..Default::default()
                },
            )
        };
        let inter_bytes = |out: &PlanOutput| {
            let c = &cluster;
            out.plan.fwd.comm_bytes_where(|a, b| {
                c.node_of(dcp_types::DeviceId(a)) != c.node_of(dcp_types::DeviceId(b))
            })
        };
        let hier = mk(true).plan(&seqs).unwrap();
        let flat = mk(false).plan(&seqs).unwrap();
        assert!(
            inter_bytes(&hier) <= inter_bytes(&flat),
            "hier {} > flat {}",
            inter_bytes(&hier),
            inter_bytes(&flat)
        );
    }

    #[test]
    fn looser_epsilon_no_more_comm() {
        let seqs = vec![(32768, MaskSpec::Causal), (8192, MaskSpec::Causal)];
        let comm = |eps: f64| {
            let p = Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    eps_intra: eps,
                    ..Default::default()
                },
            );
            p.plan(&seqs).unwrap().plan.fwd.total_comm_bytes()
        };
        let tight = comm(0.02);
        let loose = comm(0.8);
        assert!(loose <= tight, "loose {loose} > tight {tight}");
    }

    #[test]
    fn sparse_masks_cut_comm_vs_causal() {
        let p = planner(2);
        let causal = p.plan(&[(131072, MaskSpec::Causal)]).unwrap();
        let lambda = p.plan(&[(131072, MaskSpec::paper_lambda())]).unwrap();
        assert!(
            lambda.plan.total_comm_bytes() < causal.plan.total_comm_bytes() / 2,
            "lambda {} vs causal {}",
            lambda.plan.total_comm_bytes(),
            causal.plan.total_comm_bytes()
        );
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(planner(1).plan(&[]).is_err());
    }

    #[test]
    fn zero_devices_is_an_error_not_a_panic() {
        let p = Planner::new(
            ClusterSpec::single_node(0),
            AttnSpec::paper_micro(),
            PlannerConfig::default(),
        );
        let err = p.plan(&[(4096, MaskSpec::Causal)]).unwrap_err();
        assert!(matches!(err, DcpError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn zero_divisions_is_an_error_not_a_panic() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                divisions: 0,
                ..Default::default()
            },
        );
        let err = p.plan(&[(4096, MaskSpec::Causal)]).unwrap_err();
        assert!(matches!(err, DcpError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn zero_block_size_is_an_error_not_a_panic() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 0,
                ..Default::default()
            },
        );
        assert!(p.plan(&[(4096, MaskSpec::Causal)]).is_err());
    }

    #[test]
    fn default_plans_use_the_partitioned_tier() {
        let p = planner(1);
        let out = p.plan(&[(16384, MaskSpec::Causal)]).unwrap();
        assert_eq!(out.tier, PlanTier::Partitioned);
        assert!(out.fallback_reason.is_none());
    }

    #[test]
    fn forced_greedy_and_static_tiers_produce_valid_plans() {
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        for tier in [PlanTier::Greedy, PlanTier::Static] {
            let p = Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    force_tier: Some(tier),
                    ..Default::default()
                },
            );
            let out = p.plan(&seqs).unwrap();
            assert_eq!(out.tier, tier);
            validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
            assert_eq!(out.num_devices(), 8);
        }
    }

    #[test]
    fn infeasible_epsilon_falls_back_instead_of_erroring() {
        // strict ε = 0 with coarse blocks cannot be met exactly (block
        // granularity), so the partitioned tier is ε-infeasible; with
        // fallback enabled the plan must still come back valid, from a
        // degraded tier, with the reason recorded.
        let seqs = vec![(16384, MaskSpec::Causal), (2048, MaskSpec::Causal)];
        let mk = |fallback: bool| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 4096,
                    eps_intra: 0.0,
                    strict_epsilon: true,
                    fallback,
                    ..Default::default()
                },
            )
        };
        let out = mk(true).plan(&seqs).unwrap();
        assert_ne!(out.tier, PlanTier::Partitioned, "ε = 0 must be infeasible");
        validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
        let reason = out.fallback_reason.expect("reason recorded");
        assert!(reason.contains("partitioned"), "{reason}");
        // Strict mode surfaces the infeasibility instead.
        let err = mk(false).plan(&seqs).unwrap_err();
        assert!(matches!(err, DcpError::Infeasible(_)), "{err}");
    }

    #[test]
    fn tiny_regression_limit_rejects_every_fallback_tier() {
        // Same ε-infeasible setup as `infeasible_epsilon_falls_back...`, but
        // with an absurdly tight quality gate: every fallback candidate
        // regresses past it, the chain exhausts, and the typed rejection
        // surfaces instead of a silently degraded plan.
        let seqs = vec![(16384, MaskSpec::Causal), (2048, MaskSpec::Causal)];
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 4096,
                eps_intra: 0.0,
                strict_epsilon: true,
                max_fallback_regression: 1e-6,
                ..Default::default()
            },
        );
        let err = p.plan(&seqs).unwrap_err();
        assert!(matches!(err, DcpError::FallbackRejected { .. }), "{err}");
    }

    #[test]
    fn force_tier_skips_the_fallback_gate() {
        // Pinning a tier is an explicit user decision; there is no
        // partitioned reference to compare against, so the gate must not
        // veto it even at an impossible limit.
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                force_tier: Some(PlanTier::Static),
                max_fallback_regression: 1e-6,
                ..Default::default()
            },
        );
        let out = p.plan(&[(16384, MaskSpec::Causal)]).unwrap();
        assert_eq!(out.tier, PlanTier::Static);
    }

    #[test]
    fn fault_aware_placement_shifts_load_off_straggler() {
        use dcp_sim::Fault;
        let seqs = vec![(32768, MaskSpec::Causal), (32768, MaskSpec::Causal)];
        let mk = |spec: Option<FaultSpec>| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    fault_spec: spec,
                    ..Default::default()
                },
            )
        };
        let healthy = mk(None).plan(&seqs).unwrap();
        let spec = FaultSpec {
            seed: 0,
            faults: vec![Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            }],
        };
        let aware = mk(Some(spec)).plan(&seqs).unwrap();
        assert_eq!(
            aware.tier,
            PlanTier::Partitioned,
            "{:?}",
            aware.fallback_reason
        );
        let hl = healthy.placement.comp_loads(&healthy.layout);
        let al = aware.placement.comp_loads(&aware.layout);
        assert!(
            (al[0] as f64) < 0.6 * hl[0] as f64,
            "straggler kept its load: {} vs healthy {}",
            al[0],
            hl[0]
        );
    }

    #[test]
    fn empty_fault_spec_places_identically_to_none() {
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        let mk = |spec: Option<FaultSpec>| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    fault_spec: spec,
                    ..Default::default()
                },
            )
        };
        let a = mk(None).plan(&seqs).unwrap();
        let b = mk(Some(FaultSpec {
            seed: 0,
            faults: Vec::new(),
        }))
        .plan(&seqs)
        .unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn plan_output_roundtrips_through_json() {
        let p = planner(1);
        let out = p.plan(&[(8192, MaskSpec::Causal)]).unwrap();
        let j = serde_json::to_string(&out).unwrap();
        let back: PlanOutput = serde_json::from_str(&j).unwrap();
        assert_eq!(back.placement, out.placement);
        assert_eq!(back.plan, out.plan);
        assert_eq!(back.tier, out.tier);
    }

    #[test]
    fn greedy_fallback_balances_compute() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                force_tier: Some(PlanTier::Greedy),
                ..Default::default()
            },
        );
        let out = p.plan(&[(32768, MaskSpec::Causal)]).unwrap();
        let loads = out.placement.comp_loads(&out.layout);
        let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        let max_block = out
            .layout
            .comp_blocks
            .iter()
            .map(|c| c.flops)
            .max()
            .unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(
            (max as f64) <= avg + max_block as f64,
            "greedy LPT bound violated: max {max} avg {avg}"
        );
    }

    #[test]
    fn cache_hit_is_bitwise_equal_to_fresh_plan() {
        let p = planner(2);
        let seqs = vec![
            (16384, MaskSpec::Causal),
            (4096, MaskSpec::paper_lambda()),
            (2048, MaskSpec::Causal),
        ];
        let cold = p.plan(&seqs).unwrap();
        assert!(!cold.stats.cache_hit);
        let warm = p.plan(&seqs).unwrap();
        assert!(warm.stats.cache_hit);
        // A fresh planner (empty cache) must produce the identical plan.
        let fresh = planner(2).plan(&seqs).unwrap();
        for out in [&warm, &fresh] {
            assert_eq!(out.placement, cold.placement);
            assert_eq!(out.plan, cold.plan);
            assert_eq!(out.tier, cold.tier);
        }
        assert_eq!(p.cache_stats(), (1, 1));
    }

    #[test]
    fn differing_masks_or_configs_never_collide() {
        // Same lengths, different mask: must be a miss, not a false hit.
        let p = planner(1);
        let a = p.plan(&[(16384, MaskSpec::Causal)]).unwrap();
        let b = p.plan(&[(16384, MaskSpec::paper_lambda())]).unwrap();
        assert!(!a.stats.cache_hit && !b.stats.cache_hit);
        assert_eq!(p.cache_stats(), (0, 2));
        // Same batch, different config: separate planners share nothing,
        // but even the signature must differ.
        let mk = |seed: u64| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    seed,
                    ..Default::default()
                },
            )
        };
        let seqs = [(8192, MaskSpec::Causal)];
        assert_ne!(mk(1).signature(&seqs), mk(2).signature(&seqs));
        // Batch order is part of the signature (plans are order-sensitive).
        let fwd = [(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        let rev = [(4096, MaskSpec::Causal), (16384, MaskSpec::Causal)];
        assert_ne!(mk(1).signature(&fwd), mk(1).signature(&rev));
    }

    #[test]
    fn cache_is_shared_across_clones_and_lru_bounded() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                plan_cache: 2,
                ..Default::default()
            },
        );
        let s1 = [(8192, MaskSpec::Causal)];
        let s2 = [(12288, MaskSpec::Causal)];
        let s3 = [(16384, MaskSpec::Causal)];
        p.plan(&s1).unwrap();
        // A clone sees the entry (shared cache).
        assert!(p.clone().plan(&s1).unwrap().stats.cache_hit);
        // Fill past capacity: s3 evicts the least-recently-used entry (s1).
        p.plan(&s2).unwrap();
        p.plan(&s3).unwrap();
        assert!(p.plan(&s3).unwrap().stats.cache_hit);
        assert!(p.plan(&s2).unwrap().stats.cache_hit);
        assert!(!p.plan(&s1).unwrap().stats.cache_hit, "s1 was evicted");
    }

    #[test]
    fn plan_cache_zero_disables_caching() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                plan_cache: 0,
                ..Default::default()
            },
        );
        let seqs = [(8192, MaskSpec::Causal)];
        assert!(!p.plan(&seqs).unwrap().stats.cache_hit);
        assert!(!p.plan(&seqs).unwrap().stats.cache_hit);
        assert_eq!(p.cache_stats(), (0, 0));
    }

    #[test]
    fn stats_record_stage_times_on_miss() {
        let p = planner(2);
        let out = p.plan(&[(32768, MaskSpec::Causal)]).unwrap();
        let s = out.stats;
        assert!(!s.cache_hit);
        assert!(s.coarsen_s > 0.0, "coarsening must be timed: {s:?}");
        assert!(s.refine_s > 0.0, "refinement must be timed: {s:?}");
        assert!(s.total_s >= s.schedule_s, "{s:?}");
    }

    #[test]
    fn hypergraph_cost_matches_plan_forward_comm() {
        // The connectivity−1 objective is exactly the forward communication
        // volume the schedule realizes.
        let p = planner(1);
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::paper_lambda())];
        let out = p.plan(&seqs).unwrap();
        let hg = Planner::build_hypergraph(&out.layout);
        let nt = out.layout.token_blocks.len();
        let mut assignment = out.placement.token_to_dev.clone();
        assignment.extend_from_slice(&out.placement.comp_to_dev);
        let cost = hg.connectivity_cost(&assignment, out.placement.num_devices);
        assert_eq!(cost, out.plan.fwd.total_comm_bytes());
        let _ = nt;
    }
}
