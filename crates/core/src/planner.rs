//! The per-batch DCP planner: block generation, hierarchical hypergraph
//! placement, and division scheduling (paper Sec. 4).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use dcp_blocks::{BatchLayout, BlockConfig};
use dcp_hypergraph::{
    partition_warm_with_stats, partition_with_stats, HgArena, Hypergraph, HypergraphBuilder,
    PartitionConfig, PartitionStats, VertexWeight,
};
use dcp_mask::MaskSpec;
use dcp_obs::{Event, ObsHandle, Source as ObsSource};
use dcp_sched::{
    build_plan, verify_plan, ExecutionPlan, PassConfig, PassManager, PassOutcome, Placement,
    ScheduleConfig,
};
use dcp_sim::{simulate_plan, FaultSpec};
use dcp_types::{AttnSpec, ClusterSpec, DcpError, DcpResult, PlanTier};
use serde::{Deserialize, Serialize};

/// Floor on the per-device network weight derived from degraded links, so a
/// near-dead link never drives a placement target to zero.
const MIN_NET_WEIGHT: f64 = 0.05;

/// Planner hyper-parameters (the paper's defaults from Sec. 7.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Sequence-dimension block size (the paper searches {512, 1024, 2048,
    /// 4096}).
    pub block_size: u32,
    /// Head groups; `None` uses one group per KV head.
    pub head_blocks: Option<u32>,
    /// Number of divisions for computation/communication overlap.
    pub divisions: u32,
    /// Inter-node computation imbalance tolerance (paper: 0.4).
    pub eps_inter: f64,
    /// Intra-node computation imbalance tolerance (paper: 0.1).
    pub eps_intra: f64,
    /// Partitioner seed (plans are deterministic given the seed).
    pub seed: u64,
    /// Hierarchical (machines → devices) placement; `false` partitions
    /// directly over all devices (ablation).
    pub hierarchical: bool,
    /// Enable FM refinement in the partitioner (ablation).
    pub refine: bool,
    /// Fall back to greedy and then static placement when hypergraph
    /// partitioning errors or is ε-infeasible (default `true`). When
    /// `false`, the first failure surfaces as an error (strict mode).
    pub fallback: bool,
    /// Enforce the user ε exactly on the achieved device-level compute
    /// balance — no block-granularity slack. A partition violating it counts
    /// as ε-infeasible and triggers the fallback chain. Default `false`
    /// (the partitioner's caps, which grant one block of slack, decide).
    pub strict_epsilon: bool,
    /// Start the fallback chain at this tier, skipping earlier ones
    /// (ablations, tests, or pinning a degraded mode). `None` starts at
    /// [`PlanTier::Partitioned`].
    pub force_tier: Option<PlanTier>,
    /// Capacity of the signature-keyed plan cache (LRU entries). Long-context
    /// corpora repeat batch shapes constantly, so identical (lengths, masks,
    /// cluster, config) batches reuse the finished plan instead of
    /// re-partitioning. `0` disables caching.
    #[serde(default = "default_plan_cache")]
    pub plan_cache: usize,
    /// Quality gate on the fallback chain: a greedy or static plan whose
    /// simulated makespan exceeds this factor times the partitioned tier's
    /// estimate is rejected ([`DcpError::FallbackRejected`]) instead of
    /// silently shipped. The reference is the partitioned placement that
    /// failed the balance check — degraded, but still the best available
    /// estimate. `force_tier` skips the gate (there is no reference).
    #[serde(default = "default_max_fallback_regression")]
    pub max_fallback_regression: f64,
    /// Known cluster degradations the placement should plan *around*:
    /// straggler devices get proportionally less compute, devices behind
    /// degraded or flapping links get proportionally fewer token blocks.
    /// `None` (the default) places for a healthy cluster.
    #[serde(default)]
    pub fault_spec: Option<FaultSpec>,
    /// Post-scheduling pass pipeline over the rendered instruction streams
    /// (`dcp_sched::passes`). Disabled by default: downstream consumers
    /// that splice streams (the recovery patcher) assume the scheduler's
    /// canonical emission shape. Enable with [`PassConfig::optimize`] when
    /// the plan goes straight to the executor or simulator.
    #[serde(default)]
    pub passes: PassConfig,
    /// Incremental re-planning: warm-start the partitioner from a similar
    /// previous batch's placement instead of re-coarsening from scratch.
    /// Disabled by default (cold planning everywhere).
    #[serde(default)]
    pub incremental: IncrementalConfig,
}

fn default_plan_cache() -> usize {
    64
}

fn default_max_fallback_regression() -> f64 {
    2.0
}

/// Configuration of the incremental (warm-start) planning path.
///
/// On an exact-cache miss, a similarity-keyed *near hit* (same bucketed
/// length histogram, mask multiset, cluster and semantic config) supplies
/// the previous batch's placement as a warm-start seed: blocks are mapped to
/// their old parts by identity, the FM refiner polishes only the delta, and
/// coarsening plus initial partitioning are skipped entirely. The result is
/// accepted only when balanced and within [`Self::max_regression`] of the
/// seeding plan's volume-scaled communication cost — otherwise the planner
/// falls back to cold planning, so the warm path can never ship a bad plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Master switch; `false` (the default) plans every batch cold.
    #[serde(default)]
    pub enabled: bool,
    /// Accept a warm-started placement only while its communication bytes
    /// stay within this factor of the seeding plan's cost, scaled by the
    /// ratio of total hyperedge weight between the two batches (a bigger
    /// batch is allowed proportionally more volume).
    #[serde(default = "default_incremental_regression")]
    pub max_regression: f64,
    /// Capacity of the near-hit seed cache (LRU entries). `0` disables the
    /// near-hit tier even when `enabled` is set.
    #[serde(default = "default_near_cache")]
    pub near_cache: usize,
}

fn default_incremental_regression() -> f64 {
    1.25
}

fn default_near_cache() -> usize {
    8
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            enabled: false,
            max_regression: default_incremental_regression(),
            near_cache: default_near_cache(),
        }
    }
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            block_size: 1024,
            head_blocks: None,
            divisions: 4,
            eps_inter: 0.4,
            eps_intra: 0.1,
            seed: 0xdc9,
            hierarchical: true,
            refine: true,
            fallback: true,
            strict_epsilon: false,
            force_tier: None,
            plan_cache: default_plan_cache(),
            max_fallback_regression: default_max_fallback_regression(),
            fault_spec: None,
            passes: PassConfig::default(),
            incremental: IncrementalConfig::default(),
        }
    }
}

/// The subset of [`PlannerConfig`] that determines plan *content*, borrowed
/// for serialization into cache signatures. Keying on this instead of the
/// full config keeps plan-irrelevant knobs — the cache capacities themselves
/// — from forcing artificial cold misses when toggled.
#[derive(Serialize)]
struct SignatureConfig<'a> {
    block_size: u32,
    head_blocks: Option<u32>,
    divisions: u32,
    eps_inter: f64,
    eps_intra: f64,
    seed: u64,
    hierarchical: bool,
    refine: bool,
    fallback: bool,
    strict_epsilon: bool,
    force_tier: Option<PlanTier>,
    max_fallback_regression: f64,
    fault_spec: &'a Option<FaultSpec>,
    passes: &'a PassConfig,
    /// Warm-started plans may legitimately differ from cold plans (within
    /// the quality bound), so whether the incremental path is live — and how
    /// tight its bound is — is part of the semantic key. Its cache capacity
    /// is not.
    incremental_enabled: bool,
    incremental_max_regression: f64,
}

impl PlannerConfig {
    fn signature_cfg(&self) -> SignatureConfig<'_> {
        SignatureConfig {
            block_size: self.block_size,
            head_blocks: self.head_blocks,
            divisions: self.divisions,
            eps_inter: self.eps_inter,
            eps_intra: self.eps_intra,
            seed: self.seed,
            hierarchical: self.hierarchical,
            refine: self.refine,
            fallback: self.fallback,
            strict_epsilon: self.strict_epsilon,
            force_tier: self.force_tier,
            max_fallback_regression: self.max_fallback_regression,
            fault_spec: &self.fault_spec,
            passes: &self.passes,
            incremental_enabled: self.incremental.enabled,
            incremental_max_regression: self.incremental.max_regression,
        }
    }
}

/// Wall-clock time spent in each planning stage (the paper's Fig. 18).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanningTimes {
    /// Block generation seconds.
    pub block_gen: f64,
    /// Hypergraph construction + partitioning seconds.
    pub partition: f64,
    /// Division scheduling + instruction emission seconds.
    pub schedule: f64,
}

impl PlanningTimes {
    /// Total planning seconds.
    pub fn total(&self) -> f64 {
        self.block_gen + self.partition + self.schedule
    }
}

/// Per-call planning performance counters: cache outcome plus a per-stage
/// breakdown of where partitioning time went. Stage times are summed over
/// every sub-partition of the hierarchy (CPU seconds, not wall-clock, when
/// sub-problems run in parallel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Whether this output was served from the plan cache. On a hit the
    /// stage times below are zero and `total_s` is the lookup time.
    pub cache_hit: bool,
    /// Whether this plan was produced by the incremental path: a near-hit
    /// seed warm-started the partitioner and the result passed the quality
    /// bound. Exact cache hits and cold plans leave this `false`.
    #[serde(default)]
    pub near_hit: bool,
    /// Partitioner coarsening seconds (including V-cycle re-coarsening).
    pub coarsen_s: f64,
    /// Initial-partitioning seconds at the coarsest levels.
    pub initial_s: f64,
    /// FM refinement and balance-repair seconds.
    pub refine_s: f64,
    /// Division scheduling + instruction emission seconds.
    pub schedule_s: f64,
    /// End-to-end seconds for this `plan()` call.
    pub total_s: f64,
}

/// Everything the planner produces for one batch. Serializable so planned
/// batches survive a dataloader snapshot/restore cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanOutput {
    /// The block decomposition.
    pub layout: BatchLayout,
    /// The device placement chosen by hypergraph partitioning.
    pub placement: Placement,
    /// The scheduled instruction streams.
    pub plan: ExecutionPlan,
    /// Stage timings.
    pub times: PlanningTimes,
    /// Which tier of the fallback chain produced this plan.
    pub tier: PlanTier,
    /// Why earlier tiers were skipped, when `tier` is not
    /// [`PlanTier::Partitioned`] (one entry per skipped tier).
    pub fallback_reason: Option<String>,
    /// Cache outcome and per-stage timing for this call.
    pub stats: PlanStats,
    /// What each optimizer pass changed, in pipeline order (empty when the
    /// pipeline is disabled). Deserializes as empty from plans serialized
    /// before the pipeline existed.
    #[serde(default)]
    pub passes: Vec<PassOutcome>,
}

impl PlanOutput {
    /// Number of devices the plan targets.
    pub fn num_devices(&self) -> u32 {
        self.plan.num_devices
    }
}

/// A warm-start seed retained from a previously planned batch: the part of
/// every block, keyed by block identity so surviving blocks of a similar
/// batch map back to their old parts, plus the cost context the quality
/// bound scales against.
#[derive(Debug, Clone)]
struct NearEntry {
    /// Device count the seeding placement targeted.
    num_devices: u32,
    /// Token-block part by `(seq, head_block, start)`.
    token_parts: HashMap<(u32, u32, u32, u32), u32>,
    /// Comp-block part by `(seq, head_block, q_start, kv_start)`.
    comp_parts: HashMap<(u32, u32, u32, u32), u32>,
    /// Forward communication bytes of the seeding plan (pre-pass), i.e. its
    /// connectivity−1 cost.
    cost: u64,
    /// Total multi-pin hyperedge weight of the seeding batch, used to scale
    /// `cost` to the new batch's volume.
    edge_total: u64,
    /// The seeding plan itself (post-pass, verified). When a layout is
    /// block-identical to the seeding batch the schedule is a deterministic
    /// replay, so the stored plan is returned directly instead of being
    /// rebuilt — this is what makes the identical-re-plan path
    /// sub-millisecond.
    plan: ExecutionPlan,
}

/// LRU cache of finished plans keyed by the canonical batch signature,
/// plus the similarity-keyed near-hit tier of warm-start seeds.
/// Shared (behind `Arc<Mutex<_>>`) across clones of a [`Planner`], so
/// dataloader workers planning on separate threads reuse each other's work.
#[derive(Debug, Default)]
struct PlanCache {
    /// Monotonic access counter used as the recency stamp.
    stamp: u64,
    hits: u64,
    misses: u64,
    entries: HashMap<String, (u64, PlanOutput)>,
    near_hits: u64,
    near_misses: u64,
    near: HashMap<String, (u64, NearEntry)>,
}

impl PlanCache {
    fn get(&mut self, key: &str) -> Option<PlanOutput> {
        self.stamp += 1;
        match self.entries.get_mut(key) {
            Some((t, out)) => {
                *t = self.stamp;
                self.hits += 1;
                Some(out.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, cap: usize, key: String, out: PlanOutput) {
        if cap == 0 {
            return;
        }
        self.stamp += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= cap {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(key, (self.stamp, out));
    }

    fn near_get(&mut self, key: &str) -> Option<NearEntry> {
        self.stamp += 1;
        match self.near.get_mut(key) {
            Some((t, e)) => {
                *t = self.stamp;
                self.near_hits += 1;
                Some(e.clone())
            }
            None => {
                self.near_misses += 1;
                None
            }
        }
    }

    fn near_insert(&mut self, cap: usize, key: String, entry: NearEntry) {
        if cap == 0 {
            return;
        }
        self.stamp += 1;
        if !self.near.contains_key(&key) && self.near.len() >= cap {
            let victim = self
                .near
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                self.near.remove(&k);
            }
        }
        self.near.insert(key, (self.stamp, entry));
    }
}

/// The DCP planner, bound to a cluster and an attention operator shape.
#[derive(Debug, Clone)]
pub struct Planner {
    cluster: ClusterSpec,
    attn: AttnSpec,
    cfg: PlannerConfig,
    cache: Arc<Mutex<PlanCache>>,
    /// Reusable hypergraph build buffers (shared across clones; a worker
    /// that cannot take the lock immediately builds with fresh buffers).
    arena: Arc<Mutex<HgArena>>,
    obs: ObsHandle,
}

impl Planner {
    /// Creates a planner for `cluster` and `attn` under `cfg`.
    pub fn new(cluster: ClusterSpec, attn: AttnSpec, cfg: PlannerConfig) -> Self {
        Planner {
            cluster,
            attn,
            cfg,
            cache: Arc::new(Mutex::new(PlanCache::default())),
            arena: Arc::new(Mutex::new(HgArena::default())),
            obs: ObsHandle::noop(),
        }
    }

    /// Locks the shared plan cache, recovering from a poisoned mutex: a plan
    /// that panicked while holding the lock (the dataloader catches such
    /// panics and retries) must not brick every subsequent `plan()` on all
    /// clones. The cache contents may be mid-mutation at poison time, so
    /// recovery clears them — losing cached plans, never correctness. The
    /// poison flag is cleared too, so recovery happens once, not on every
    /// subsequent lock.
    fn lock_cache(&self) -> MutexGuard<'_, PlanCache> {
        self.cache.lock().unwrap_or_else(|poison| {
            self.cache.clear_poison();
            let mut g = poison.into_inner();
            *g = PlanCache::default();
            g
        })
    }

    /// Attaches an observability sink: every subsequent `plan()` call emits
    /// stage spans (block_gen / place / schedule plus the partitioner's
    /// coarsen / initial / refine breakdown), cache hit/miss counters and
    /// fallback-tier transition events. All emission happens on the calling
    /// thread, in plan order, so the stream is deterministic.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Lifetime cache hit / miss counts of this planner (shared across
    /// clones). A degenerate batch rejected before lookup counts as neither.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.lock_cache();
        (c.hits, c.misses)
    }

    /// Lifetime near-hit-tier hit / miss counts (shared across clones).
    /// Counts lookups only — a near hit whose warm plan fails the quality
    /// bound still counts as a hit here (the seed was found and tried).
    pub fn near_cache_stats(&self) -> (u64, u64) {
        let c = self.lock_cache();
        (c.near_hits, c.near_misses)
    }

    /// The canonical batch signature: the *ordered* `(length, mask)` list
    /// plus the cluster shape and the semantic config subset
    /// ([`SignatureConfig`]), serialized to JSON. Order matters — block and
    /// vertex numbering follow batch order, so permuted batches legitimately
    /// produce different plans.
    fn signature(&self, seqs: &[(u32, MaskSpec)]) -> String {
        serde_json::to_string(&(seqs, &self.cluster, &self.cfg.signature_cfg()))
            .expect("planner signature serialization cannot fail")
    }

    /// The similarity key of the near-hit tier: the *bucketed* batch shape —
    /// per-sequence block counts as a sorted histogram plus the multiset of
    /// masks — with the cluster and semantic config. Batches with the same
    /// block-count histogram and mask mix share a key even when raw lengths
    /// differ within a block, which is exactly when the previous placement
    /// transfers well as a warm-start seed.
    fn near_signature(&self, seqs: &[(u32, MaskSpec)]) -> String {
        let bs = self.cfg.block_size.max(1);
        let mut lens: Vec<u32> = seqs.iter().map(|(len, _)| len.div_ceil(bs)).collect();
        lens.sort_unstable();
        let mut masks: Vec<String> = seqs
            .iter()
            .map(|(_, m)| serde_json::to_string(m).expect("mask serialization cannot fail"))
            .collect();
        masks.sort_unstable();
        serde_json::to_string(&(lens, masks, &self.cluster, &self.cfg.signature_cfg()))
            .expect("planner near-signature serialization cannot fail")
    }

    /// The planner's configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// The cluster this planner targets.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Plans one batch: generates blocks, places them, schedules divisions.
    ///
    /// Placement walks the fallback chain (paper planner → greedy LPT →
    /// static zigzag) when `cfg.fallback` is on: a partitioner error or an
    /// ε-infeasible partition degrades the tier instead of failing the
    /// batch, and the tier that produced the plan is recorded in
    /// [`PlanOutput::tier`].
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] for degenerate inputs (empty
    /// batch, zero devices, `divisions == 0`); otherwise propagates layout
    /// failures, and placement/scheduling failures only once every enabled
    /// tier has been exhausted.
    pub fn plan(&self, seqs: &[(u32, MaskSpec)]) -> DcpResult<PlanOutput> {
        self.plan_for_iter(seqs, None)
    }

    /// [`Planner::plan`] with an explicit iteration/batch index stamped onto
    /// every emitted observability event (the planner itself has no notion
    /// of iterations; callers that do — the dataloader, the trace harness —
    /// pass it here so planner spans correlate with executor/sim spans).
    pub fn plan_for_iter(
        &self,
        seqs: &[(u32, MaskSpec)],
        iter: Option<u64>,
    ) -> DcpResult<PlanOutput> {
        if seqs.is_empty() {
            return Err(DcpError::invalid_argument("empty batch"));
        }
        self.cluster.validate()?;
        let n = self.cluster.num_devices();
        if self.cfg.divisions == 0 {
            return Err(DcpError::invalid_argument("divisions must be > 0"));
        }
        let t_total = Instant::now();
        // Observability events carry the batch index when known; all
        // emission below is on the calling thread, in plan order.
        let obs_on = self.obs.enabled();
        let stamp = |e: Event| match iter {
            Some(i) => e.with_iter(i),
            None => e,
        };
        let key = if self.cfg.plan_cache > 0 {
            let key = self.signature(seqs);
            if let Some(mut out) = self.lock_cache().get(&key) {
                out.stats = PlanStats {
                    cache_hit: true,
                    total_s: t_total.elapsed().as_secs_f64(),
                    ..PlanStats::default()
                };
                if obs_on {
                    self.obs.record(stamp(
                        Event::counter(ObsSource::Planner, "plan_cache_hit", 1.0)
                            .with_label(out.tier.label()),
                    ));
                }
                return Ok(out);
            }
            if obs_on {
                self.obs.record(stamp(Event::counter(
                    ObsSource::Planner,
                    "plan_cache_miss",
                    1.0,
                )));
            }
            Some(key)
        } else {
            None
        };
        // Near-hit tier: on an exact miss, a batch with the same bucketed
        // shape may have left a placement to warm-start from. The lookup is
        // independent of the exact cache so incremental planning works even
        // with exact caching disabled.
        let incremental_on = self.cfg.incremental.enabled && self.cfg.incremental.near_cache > 0;
        let near_key = incremental_on.then(|| self.near_signature(seqs));
        let near_entry = near_key
            .as_ref()
            .and_then(|k| self.lock_cache().near_get(k));
        let t0 = Instant::now();
        let head_blocks = self.cfg.head_blocks.unwrap_or(self.attn.kv_heads);
        let layout = BatchLayout::build(
            self.attn,
            BlockConfig {
                block_size: self.cfg.block_size,
                head_blocks,
            },
            seqs,
        )?;
        let block_gen = t0.elapsed().as_secs_f64();
        if obs_on {
            self.obs.record(stamp(
                Event::span(ObsSource::Planner, "block_gen")
                    .with_time((t0 - t_total).as_secs_f64(), block_gen),
            ));
        }

        let start = self.cfg.force_tier.unwrap_or(PlanTier::Partitioned);
        let mut partition_s = 0.0;
        let mut schedule_s = 0.0;
        let mut pstats = PartitionStats::default();
        let mut reasons: Vec<String> = Vec::new();
        let mut last_err: Option<DcpError> = None;
        let mut chosen: Option<(Placement, ExecutionPlan, PlanTier)> = None;
        // The partitioned placement that failed the balance check, kept as
        // the makespan reference the fallback quality gate compares against.
        let mut reference: Option<Placement> = None;
        // Incremental path: warm-start from a near-hit seed. Pinned tiers
        // and fault-aware placements always plan cold (a forced tier is an
        // explicit user decision; fault targets change the caps the seed was
        // balanced under).
        let mut near_hit = false;
        if let Some(entry) = near_entry.filter(|e| {
            self.cfg.force_tier.is_none() && e.num_devices == n && self.fault_weights(n).is_none()
        }) {
            let t_seed = Instant::now();
            let (seed, exact) = Self::warm_seed(&layout, &entry);
            let exact = exact && entry.edge_total == Self::total_edge_weight(&layout);
            let seed_dt = t_seed.elapsed().as_secs_f64();
            if obs_on {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, "warm_seed")
                        .with_time((t_seed - t_total).as_secs_f64(), seed_dt),
                ));
            }
            // Block-identical layout: the seed IS the seeding placement,
            // and the retained plan is exactly what the pipeline would
            // rebuild for it (layout, placement and config all identical) —
            // so partitioning, scheduling and the pass pipeline are all
            // skipped and the stored plan is replayed through the verifier.
            // Re-planning an unchanged batch reproduces the prior plan bit
            // for bit at near-lookup cost. Anything else goes through
            // warm-started delta refinement.
            if exact {
                let nt = layout.token_blocks.len();
                let placement = Placement {
                    num_devices: n,
                    token_to_dev: seed[..nt].to_vec(),
                    comp_to_dev: seed[nt..].to_vec(),
                };
                let plan = entry.plan.clone();
                if verify_plan(&layout, &placement, &plan).is_ok() {
                    if obs_on {
                        self.obs
                            .record(stamp(Event::counter(ObsSource::Planner, "near_hit", 1.0)));
                    }
                    let out = PlanOutput {
                        layout,
                        placement,
                        plan,
                        times: PlanningTimes {
                            block_gen,
                            partition: seed_dt,
                            schedule: 0.0,
                        },
                        tier: PlanTier::Partitioned,
                        fallback_reason: None,
                        stats: PlanStats {
                            cache_hit: false,
                            near_hit: true,
                            total_s: t_total.elapsed().as_secs_f64(),
                            ..PlanStats::default()
                        },
                        passes: Vec::new(),
                    };
                    if let Some(key) = key {
                        self.lock_cache()
                            .insert(self.cfg.plan_cache, key, out.clone());
                    }
                    return Ok(out);
                }
                // A stored plan that no longer verifies (e.g. a poisoned
                // entry) falls through to warm delta refinement.
            }
            let t_warm = Instant::now();
            let warm = self.place_warm(&layout, &seed);
            let warm_dt = t_warm.elapsed().as_secs_f64();
            partition_s += seed_dt + warm_dt;
            if obs_on {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, "delta_refine")
                        .with_time((t_warm - t_total).as_secs_f64(), warm_dt),
                ));
            }
            if let Ok((placement, balanced, wstats, cost)) = warm {
                // Quality bound: comm bytes within the configured factor of
                // the seeding plan's cost, scaled to this batch's hyperedge
                // volume. A zero-cost seed must stay zero-cost.
                let edge_total = Self::total_edge_weight(&layout);
                let scaled =
                    entry.cost as f64 * (edge_total as f64 / entry.edge_total.max(1) as f64);
                let within = if entry.cost == 0 {
                    cost == 0
                } else {
                    cost as f64 <= self.cfg.incremental.max_regression * scaled
                };
                if balanced && within {
                    let ts = Instant::now();
                    let built = build_plan(
                        &layout,
                        &placement,
                        &ScheduleConfig {
                            divisions: self.cfg.divisions,
                            ..Default::default()
                        },
                    );
                    let sched_dt = ts.elapsed().as_secs_f64();
                    schedule_s += sched_dt;
                    if obs_on {
                        self.obs.record(stamp(
                            Event::span(ObsSource::Planner, "schedule")
                                .with_label("warm")
                                .with_time((ts - t_total).as_secs_f64(), sched_dt),
                        ));
                    }
                    if let Ok(plan) = built {
                        pstats.merge(&wstats);
                        chosen = Some((placement, plan, PlanTier::Partitioned));
                        near_hit = true;
                        if obs_on {
                            self.obs.record(stamp(Event::counter(
                                ObsSource::Planner,
                                "near_hit",
                                1.0,
                            )));
                        }
                    }
                }
            }
            if !near_hit && obs_on {
                self.obs.record(stamp(
                    Event::instant(ObsSource::Planner, "warm_fallback")
                        .with_time(t_total.elapsed().as_secs_f64(), 0.0),
                ));
            }
        }
        for tier in PlanTier::all() {
            if chosen.is_some() {
                break;
            }
            if tier < start {
                continue;
            }
            let tp = Instant::now();
            let placed = self.placement_for_tier(&layout, tier, n, &mut pstats, &mut reference);
            let place_dt = tp.elapsed().as_secs_f64();
            partition_s += place_dt;
            if obs_on {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, "place")
                        .with_label(tier.label())
                        .with_time((tp - t_total).as_secs_f64(), place_dt),
                ));
            }
            let placement = match placed {
                Ok(p) => p,
                Err(e) => {
                    if obs_on {
                        self.obs.record(stamp(
                            Event::instant(ObsSource::Planner, "tier_fallback")
                                .with_label(tier.label())
                                .with_time((t_total.elapsed()).as_secs_f64(), 0.0),
                        ));
                    }
                    reasons.push(format!("{}: {e}", tier.label()));
                    last_err = Some(e);
                    if !self.cfg.fallback {
                        break;
                    }
                    continue;
                }
            };
            let ts = Instant::now();
            let built = build_plan(
                &layout,
                &placement,
                &ScheduleConfig {
                    divisions: self.cfg.divisions,
                    ..Default::default()
                },
            );
            let sched_dt = ts.elapsed().as_secs_f64();
            schedule_s += sched_dt;
            if obs_on {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, "schedule")
                        .with_label(tier.label())
                        .with_time((ts - t_total).as_secs_f64(), sched_dt),
                ));
            }
            match built {
                Ok(plan) => {
                    // Fallback quality gate: a degraded-tier plan must not
                    // regress the simulated makespan past the configured
                    // factor of what the (unbalanced) partitioned placement
                    // would have achieved. `force_tier` has no reference to
                    // compare against and is exempt.
                    if tier != PlanTier::Partitioned && self.cfg.force_tier.is_none() {
                        if let Some(factor) = reference
                            .as_ref()
                            .and_then(|r| self.fallback_regression(&layout, r, &plan))
                        {
                            if factor > self.cfg.max_fallback_regression {
                                let e = DcpError::fallback_rejected(
                                    tier,
                                    factor,
                                    self.cfg.max_fallback_regression,
                                );
                                if obs_on {
                                    self.obs.record(stamp(
                                        Event::instant(ObsSource::Planner, "fallback_rejected")
                                            .with_label(tier.label())
                                            .with_time(t_total.elapsed().as_secs_f64(), 0.0),
                                    ));
                                }
                                reasons.push(format!("{}: {e}", tier.label()));
                                last_err = Some(e);
                                if !self.cfg.fallback {
                                    break;
                                }
                                continue;
                            }
                        }
                    }
                    chosen = Some((placement, plan, tier));
                    break;
                }
                Err(e) => {
                    if obs_on {
                        self.obs.record(stamp(
                            Event::instant(ObsSource::Planner, "tier_fallback")
                                .with_label(tier.label())
                                .with_time((t_total.elapsed()).as_secs_f64(), 0.0),
                        ));
                    }
                    reasons.push(format!("{}: {e}", tier.label()));
                    last_err = Some(e);
                    if !self.cfg.fallback {
                        break;
                    }
                }
            }
        }

        let Some((placement, mut plan, tier)) = chosen else {
            return Err(last_err
                .unwrap_or_else(|| DcpError::invalid_plan("no fallback tier produced a plan")));
        };
        // Forward comm bytes before any pass rewrites them: this equals the
        // hypergraph connectivity cost and is what future warm starts scale
        // their quality bound against.
        let pre_pass_fwd_comm = plan.fwd.total_comm_bytes();
        // Optimizer pass pipeline (when enabled), then the stream verifier on
        // every freshly produced plan — optimized or not. Cache hits skip
        // both: the cached plan already passed.
        let mut pass_outcomes: Vec<PassOutcome> = Vec::new();
        if self.cfg.passes.enabled {
            let tp = Instant::now();
            let pm = PassManager::new(self.cfg.passes.clone());
            pass_outcomes = pm.run_plan(&layout, &placement, &mut plan);
            schedule_s += tp.elapsed().as_secs_f64();
            if obs_on {
                let mut at = (tp - t_total).as_secs_f64();
                let per_pass = tp.elapsed().as_secs_f64() / pass_outcomes.len().max(1) as f64;
                for o in &pass_outcomes {
                    self.obs.record(stamp(
                        Event::span(ObsSource::Planner, "pass")
                            .with_label(format!("{}:{}", o.pass, o.phase))
                            .with_time(at, per_pass),
                    ));
                    at += per_pass;
                }
                let saved: u64 = pass_outcomes
                    .iter()
                    .map(PassOutcome::comm_bytes_saved)
                    .sum();
                self.obs.record(stamp(Event::counter(
                    ObsSource::Planner,
                    "pass_comm_bytes_saved",
                    saved as f64,
                )));
            }
        }
        if let Err(diag) = verify_plan(&layout, &placement, &plan) {
            if obs_on {
                // Flight-recorder trigger: a postmortem bundle captures the
                // events leading up to the illegal stream.
                let mut ev = Event::instant(ObsSource::Planner, "verify_diagnostic")
                    .with_label(diag.to_string());
                if let Some(d) = diag.device {
                    ev = ev.with_device(d);
                }
                self.obs.record(stamp(ev));
            }
            return Err(DcpError::invalid_plan(format!(
                "planner produced an illegal stream ({} tier): {diag}",
                tier.label()
            )));
        }
        if obs_on {
            // Partitioner stage breakdown (CPU seconds summed over the
            // hierarchy, rendered as consecutive segments of one row).
            let mut at = block_gen;
            for (name, dur) in [
                ("coarsen", pstats.coarsen_s),
                ("initial", pstats.initial_s),
                ("refine", pstats.refine_s),
            ] {
                self.obs.record(stamp(
                    Event::span(ObsSource::Planner, name)
                        .with_label(tier.label())
                        .with_time(at, dur),
                ));
                at += dur;
            }
        }
        let out = PlanOutput {
            layout,
            placement,
            plan,
            times: PlanningTimes {
                block_gen,
                partition: partition_s,
                schedule: schedule_s,
            },
            tier,
            fallback_reason: if reasons.is_empty() {
                None
            } else {
                Some(reasons.join("; "))
            },
            stats: PlanStats {
                cache_hit: false,
                near_hit,
                coarsen_s: pstats.coarsen_s,
                initial_s: pstats.initial_s,
                refine_s: pstats.refine_s,
                schedule_s,
                total_s: t_total.elapsed().as_secs_f64(),
            },
            passes: pass_outcomes,
        };
        // Retain this placement as a warm-start seed for similar future
        // batches (warm-accepted plans included, so the seed chain follows
        // distribution drift). Only the partitioned tier seeds: greedy and
        // static placements are not worth warm-starting from.
        if let Some(near_key) = near_key {
            if out.tier == PlanTier::Partitioned {
                let entry =
                    Self::near_entry_of(&out.layout, &out.placement, &out.plan, pre_pass_fwd_comm);
                self.lock_cache()
                    .near_insert(self.cfg.incremental.near_cache, near_key, entry);
            }
        }
        if let Some(key) = key {
            self.lock_cache()
                .insert(self.cfg.plan_cache, key, out.clone());
        }
        Ok(out)
    }

    /// Computes the placement for one tier of the fallback chain,
    /// accumulating partitioner stage timings into `pstats` (the greedy and
    /// static tiers do not partition and leave it untouched).
    fn placement_for_tier(
        &self,
        layout: &BatchLayout,
        tier: PlanTier,
        n: u32,
        pstats: &mut PartitionStats,
        reference: &mut Option<Placement>,
    ) -> DcpResult<Placement> {
        match tier {
            PlanTier::Partitioned => {
                let (placement, balanced, stats) = self.place(layout)?;
                pstats.merge(&stats);
                if !balanced {
                    *reference = Some(placement);
                    return Err(DcpError::Infeasible(
                        "partition exceeded the balance caps (ε-infeasible)".into(),
                    ));
                }
                if self.cfg.strict_epsilon {
                    let loads = placement.comp_loads(layout);
                    let total: u64 = loads.iter().sum();
                    let avg = total as f64 / loads.len().max(1) as f64;
                    let max = loads.iter().copied().max().unwrap_or(0) as f64;
                    if max > (1.0 + self.cfg.eps_intra) * avg {
                        *reference = Some(placement);
                        return Err(DcpError::Infeasible(format!(
                            "strict ε violated: max load {max:.0} > (1 + {}) * avg {avg:.0}",
                            self.cfg.eps_intra
                        )));
                    }
                }
                Ok(placement)
            }
            PlanTier::Greedy => Placement::greedy(layout, n),
            PlanTier::Static => dcp_baselines::static_placement(layout, n, true),
        }
    }

    /// Makespan ratio of a fallback candidate to the partitioned reference
    /// placement, both simulated on the planner's cluster. `None` (gate
    /// skipped) when the reference cannot be scheduled or either simulation
    /// fails — the gate only ever vetoes with positive evidence.
    fn fallback_regression(
        &self,
        layout: &BatchLayout,
        reference: &Placement,
        candidate: &ExecutionPlan,
    ) -> Option<f64> {
        let sched = ScheduleConfig {
            divisions: self.cfg.divisions,
            ..Default::default()
        };
        let ref_plan = build_plan(layout, reference, &sched).ok()?;
        let ref_t = simulate_plan(&self.cluster, &ref_plan).ok()?.total();
        let cand_t = simulate_plan(&self.cluster, candidate).ok()?.total();
        if !ref_t.is_finite() || ref_t <= 0.0 || !cand_t.is_finite() {
            return None;
        }
        Some(cand_t / ref_t)
    }

    /// Builds the placement hypergraph of `layout`: one vertex per token
    /// block (weight `[0, bytes]`) and per computation block (weight
    /// `[flops, 0]`); per token block one hyperedge for Q+O (weight
    /// `q_bytes + o_bytes` — identical pin sets, so they are merged) and one
    /// for KV (weight `kv_bytes`), each connecting the token vertex to the
    /// consuming computation blocks.
    pub fn build_hypergraph(layout: &BatchLayout) -> Hypergraph {
        let nt = layout.token_blocks.len();
        let nc = layout.comp_blocks.len();
        Self::fill_builder(HypergraphBuilder::new(nt + nc), layout)
    }

    /// [`Planner::build_hypergraph`] routed through the planner's reusable
    /// arena buffers, avoiding the per-batch allocation churn of a fresh
    /// build. Pair with [`Planner::recycle_hg`] when done with the graph.
    fn build_hypergraph_in(&self, layout: &BatchLayout) -> Hypergraph {
        let b = {
            let mut arena = self.arena.lock().unwrap_or_else(|p| p.into_inner());
            arena.builder(layout.token_blocks.len() + layout.comp_blocks.len())
        };
        Self::fill_builder(b, layout)
    }

    /// Returns a hypergraph's buffers to the shared arena for the next build.
    fn recycle_hg(&self, hg: Hypergraph) {
        self.arena
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .recycle(hg);
    }

    fn fill_builder(mut b: HypergraphBuilder, layout: &BatchLayout) -> Hypergraph {
        let nt = layout.token_blocks.len();
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            b.set_vertex_weight(i, [0, tb.total_bytes()]);
        }
        for (i, cb) in layout.comp_blocks.iter().enumerate() {
            b.set_vertex_weight(nt + i, [cb.flops, 0]);
        }
        let mut pins: Vec<u32> = Vec::new();
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            // Q + O edge.
            pins.clear();
            pins.push(i as u32);
            pins.extend(layout.q_consumers[i].iter().map(|c| nt as u32 + c.0));
            if pins.len() > 1 {
                b.add_edge(tb.q_bytes + tb.o_bytes, &pins);
            }
            // KV edge.
            pins.clear();
            pins.push(i as u32);
            pins.extend(layout.kv_consumers[i].iter().map(|c| nt as u32 + c.0));
            if pins.len() > 1 {
                b.add_edge(tb.kv_bytes, &pins);
            }
        }
        b.build().expect("pins are in range by construction")
    }

    /// Total multi-pin hyperedge weight of `layout`'s placement hypergraph
    /// (single-pin edges never cost and are skipped, mirroring
    /// [`Planner::build_hypergraph`]). Used to scale a warm-start seed's
    /// cost bound to the new batch's volume without building the graph.
    fn total_edge_weight(layout: &BatchLayout) -> u64 {
        let mut t = 0u64;
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            if !layout.q_consumers[i].is_empty() {
                t += tb.q_bytes + tb.o_bytes;
            }
            if !layout.kv_consumers[i].is_empty() {
                t += tb.kv_bytes;
            }
        }
        t
    }

    /// Maps `layout`'s blocks onto the seeding placement's parts by block
    /// identity — token blocks by `(seq, head_block, start, len)`, comp
    /// blocks by `(seq, head_block, q_start, kv_start)`. Unmatched token
    /// blocks inherit the last matched part in block order (deterministic
    /// carry-forward keeps new blocks near their sequence neighbors);
    /// unmatched comp blocks colocate with their Q block. The returned flag
    /// is `true` when the mapping is a perfect bijection — every block
    /// matched and the entry has no leftover blocks — i.e. the blocked
    /// layouts are identical.
    fn warm_seed(layout: &BatchLayout, entry: &NearEntry) -> (Vec<u32>, bool) {
        let nt = layout.token_blocks.len();
        let mut seed = vec![0u32; nt + layout.comp_blocks.len()];
        let mut exact =
            nt == entry.token_parts.len() && layout.comp_blocks.len() == entry.comp_parts.len();
        let mut last = 0u32;
        for (i, tb) in layout.token_blocks.iter().enumerate() {
            match entry
                .token_parts
                .get(&(tb.seq, tb.head_block, tb.start, tb.len))
            {
                Some(&p) => last = p,
                None => exact = false,
            }
            seed[i] = last;
        }
        for (i, cb) in layout.comp_blocks.iter().enumerate() {
            let q = &layout.token_blocks[cb.q_block.0 as usize];
            let kv = &layout.token_blocks[cb.kv_block.0 as usize];
            match entry
                .comp_parts
                .get(&(cb.seq, cb.head_block, q.start, kv.start))
            {
                Some(&p) => seed[nt + i] = p,
                None => {
                    exact = false;
                    seed[nt + i] = seed[cb.q_block.0 as usize];
                }
            }
        }
        (seed, exact)
    }

    /// The warm-start seed entry describing a finished plan.
    fn near_entry_of(
        layout: &BatchLayout,
        placement: &Placement,
        plan: &ExecutionPlan,
        cost: u64,
    ) -> NearEntry {
        let token_parts = layout
            .token_blocks
            .iter()
            .zip(&placement.token_to_dev)
            .map(|(tb, &d)| ((tb.seq, tb.head_block, tb.start, tb.len), d))
            .collect();
        let comp_parts = layout
            .comp_blocks
            .iter()
            .zip(&placement.comp_to_dev)
            .map(|(cb, &d)| {
                let q = &layout.token_blocks[cb.q_block.0 as usize];
                let kv = &layout.token_blocks[cb.kv_block.0 as usize];
                ((cb.seq, cb.head_block, q.start, kv.start), d)
            })
            .collect();
        NearEntry {
            num_devices: placement.num_devices,
            token_parts,
            comp_parts,
            cost,
            edge_total: Self::total_edge_weight(layout),
            plan: plan.clone(),
        }
    }

    /// Per-device capacity weights derived from `cfg.fault_spec`:
    /// `[compute, bytes]` — compute ∝ 1/slowdown, bytes ∝ the rate factor of
    /// the device's worst incident link (flapping links contribute their
    /// duty-weighted mean). `None` when no spec is set or it changes nothing,
    /// so the healthy path is byte-identical to a fault-blind planner.
    fn fault_weights(&self, n: u32) -> Option<Vec<[f64; 2]>> {
        let spec = self.cfg.fault_spec.as_ref()?;
        let n = n as usize;
        let slow = spec.slowdowns(n);
        let mut net = vec![1.0f64; n];
        for (src, dst, factor) in spec.link_factors() {
            for d in [src, dst] {
                if (d as usize) < n {
                    net[d as usize] = net[d as usize].min(factor.max(MIN_NET_WEIGHT));
                }
            }
        }
        for (src, dst, _period, duty, factor) in spec.flapping_links() {
            let mean = duty * factor + (1.0 - duty);
            for d in [src, dst] {
                if (d as usize) < n {
                    net[d as usize] = net[d as usize].min(mean.max(MIN_NET_WEIGHT));
                }
            }
        }
        let w: Vec<[f64; 2]> = (0..n).map(|d| [1.0 / slow[d].max(1.0), net[d]]).collect();
        if w.iter().all(|x| x[0] >= 1.0 - 1e-12 && x[1] >= 1.0 - 1e-12) {
            return None;
        }
        Some(w)
    }

    /// Splits `totals` across parts proportionally to `weights` (per
    /// dimension, floored at 1 so downstream caps stay positive).
    fn targets_from_weights(totals: VertexWeight, weights: &[[f64; 2]]) -> Vec<VertexWeight> {
        let mut t = vec![[0u64; 2]; weights.len()];
        for dim in 0..2 {
            let sum: f64 = weights.iter().map(|w| w[dim]).sum();
            for (ti, w) in t.iter_mut().zip(weights) {
                ti[dim] = ((totals[dim] as f64 * w[dim] / sum).round() as u64).max(1);
            }
        }
        t
    }

    /// Warm-started placement: refines `seed` (a full vertex → device
    /// assignment) through the same hierarchy as [`Planner::place`] —
    /// machine level first, then the per-machine device level on induced
    /// subgraphs — but skipping coarsening and initial partitioning at every
    /// level. Returns the placement, whether every level met its balance
    /// caps, the merged stage stats, and the connectivity cost (== forward
    /// comm bytes, pinned by `hypergraph_cost_matches_plan_forward_comm`).
    fn place_warm(
        &self,
        layout: &BatchLayout,
        seed: &[u32],
    ) -> DcpResult<(Placement, bool, PartitionStats, u64)> {
        let hg = self.build_hypergraph_in(layout);
        let nt = layout.token_blocks.len();
        let n = self.cluster.num_devices();
        let levels = self.placement_levels();
        let result = self.place_warm_levels(&hg, &levels, self.cfg.seed, seed);
        let (assignment, balanced, stats) = match result {
            Ok(v) => v,
            Err(e) => {
                self.recycle_hg(hg);
                return Err(e);
            }
        };
        let cost = hg.connectivity_cost(&assignment, n);
        self.recycle_hg(hg);
        Ok((
            Placement {
                num_devices: n,
                token_to_dev: assignment[..nt].to_vec(),
                comp_to_dev: assignment[nt..].to_vec(),
            },
            balanced,
            stats,
            cost,
        ))
    }

    /// The partition hierarchy as `(parts, epsilon)` refinement levels,
    /// outermost first, mirroring the cluster's fabric tiers
    /// ([`ClusterSpec::hierarchy`]): spine groups, then leaves, then nodes,
    /// then devices — the flat model yields the classic machine/device
    /// split. The device level uses `eps_intra`, every switch level
    /// `eps_inter`; degenerate one-way levels are dropped. A non-hierarchical
    /// config collapses to a single flat level over all devices.
    fn placement_levels(&self) -> Vec<(u32, f64)> {
        let n = self.cluster.num_devices();
        if !self.cfg.hierarchical {
            return vec![(n, self.cfg.eps_intra)];
        }
        let h = self.cluster.hierarchy();
        let mut levels: Vec<(u32, f64)> = Vec::new();
        for (i, &k) in h.iter().enumerate() {
            if k == 1 {
                continue;
            }
            let eps = if i + 1 == h.len() {
                self.cfg.eps_intra
            } else {
                self.cfg.eps_inter
            };
            levels.push((k, eps));
        }
        if levels.is_empty() {
            levels.push((1, self.cfg.eps_intra));
        }
        levels
    }

    /// Warm-started placement through the level hierarchy: at each level the
    /// seeded assignment (divided down to that level's granularity) is
    /// refined without coarsening or initial partitioning, then each part
    /// recurses on its induced subgraph — the same subgraphs, epsilons and
    /// per-part seeds as the cold [`Planner::place_levels`], so a converged
    /// seed reproduces the cold placement exactly.
    fn place_warm_levels(
        &self,
        hg: &Hypergraph,
        levels: &[(u32, f64)],
        seed: u64,
        dev_seed: &[u32],
    ) -> DcpResult<(Vec<u32>, bool, PartitionStats)> {
        type LocalPartition = (Vec<u32>, Vec<u32>, bool, PartitionStats);
        let (parts, eps) = levels[0];
        let stride: u32 = levels[1..].iter().map(|l| l.0).product();
        let mut pc = PartitionConfig::new(parts)
            .with_epsilon(eps)
            .with_seed(seed);
        pc.refine_enabled = self.cfg.refine;
        if levels.len() == 1 {
            let (part, s) = partition_warm_with_stats(hg, &pc, dev_seed)?;
            return Ok((part.assignment, part.balanced, s));
        }
        // Warm-refine this level's assignment implied by the seeded devices
        // (part = device / stride).
        let level_seed: Vec<u32> = dev_seed.iter().map(|&d| d / stride).collect();
        let (part, s1) = partition_warm_with_stats(hg, &pc, &level_seed)?;
        let mut stats = s1;
        let mut balanced = part.balanced;
        use rayon::prelude::*;
        let locals: Vec<DcpResult<LocalPartition>> = (0..parts)
            .into_par_iter()
            .map(|p| {
                let verts: Vec<u32> = (0..hg.num_vertices() as u32)
                    .filter(|&v| part.assignment[v as usize] == p)
                    .collect();
                if verts.is_empty() {
                    return Ok((Vec::new(), Vec::new(), true, PartitionStats::default()));
                }
                let (sub, map) = hg.induced_subgraph(&verts);
                // Seeded sub-level index within the part; still valid when
                // this level's refinement moved the vertex to another part.
                let local_seed: Vec<u32> = map
                    .iter()
                    .map(|&orig| dev_seed[orig as usize] % stride)
                    .collect();
                let (local, lb, ls) = self.place_warm_levels(
                    &sub,
                    &levels[1..],
                    seed.wrapping_add(p as u64 + 1),
                    &local_seed,
                )?;
                Ok((map, local, lb, ls))
            })
            .collect();
        let mut assignment = vec![0u32; hg.num_vertices()];
        for (p, res) in locals.into_iter().enumerate() {
            let (map, local, local_balanced, ls) = res?;
            balanced &= local_balanced;
            stats.merge(&ls);
            for (i, &orig) in map.iter().enumerate() {
                assignment[orig as usize] = p as u32 * stride + local[i];
            }
        }
        Ok((assignment, balanced, stats))
    }

    fn place(&self, layout: &BatchLayout) -> DcpResult<(Placement, bool, PartitionStats)> {
        let hg = self.build_hypergraph_in(layout);
        let nt = layout.token_blocks.len();
        let n = self.cluster.num_devices();
        let fw = self.fault_weights(n);
        let levels = self.placement_levels();
        let result = self.place_levels(&hg, &levels, self.cfg.seed, fw.as_deref(), 0);
        self.recycle_hg(hg);
        let (assignment, balanced, stats) = result?;
        Ok((
            Placement {
                num_devices: n,
                token_to_dev: assignment[..nt].to_vec(),
                comp_to_dev: assignment[nt..].to_vec(),
            },
            balanced,
            stats,
        ))
    }

    /// Cold placement through the level hierarchy: partition this level's
    /// graph `parts` ways (minimizing the traffic that would cross this
    /// fabric boundary), then recurse per part on the induced subgraph with
    /// a per-part derived seed. `weights` are per-device fault capacities
    /// over the *global* device space; `base` is this subproblem's first
    /// global device. The per-part subproblems are independent — solved on
    /// the rayon pool (the paper parallelizes planning across CPU cores,
    /// Sec. 6.1) and merged in part order, so the result is
    /// thread-count-independent.
    fn place_levels(
        &self,
        hg: &Hypergraph,
        levels: &[(u32, f64)],
        seed: u64,
        weights: Option<&[[f64; 2]]>,
        base: usize,
    ) -> DcpResult<(Vec<u32>, bool, PartitionStats)> {
        type LocalPartition = (Vec<u32>, Vec<u32>, bool, PartitionStats);
        let (parts, eps) = levels[0];
        let stride: u32 = levels[1..].iter().map(|l| l.0).product();
        let mut pc = PartitionConfig::new(parts)
            .with_epsilon(eps)
            .with_seed(seed);
        pc.refine_enabled = self.cfg.refine;
        if let Some(w) = weights {
            // A part's capacity is the sum of its member devices', re-scaled
            // to the load actually present in this subgraph.
            let totals = hg.part_weights(&vec![0u32; hg.num_vertices()], 1)[0];
            let span = stride as usize;
            let pw: Vec<[f64; 2]> = (0..parts as usize)
                .map(|p| {
                    let mut s = [0.0f64; 2];
                    for j in 0..span {
                        s[0] += w[base + p * span + j][0];
                        s[1] += w[base + p * span + j][1];
                    }
                    s
                })
                .collect();
            pc = pc.with_part_targets(Self::targets_from_weights(totals, &pw));
        }
        let (part, s1) = partition_with_stats(hg, &pc)?;
        if levels.len() == 1 {
            return Ok((part.assignment, part.balanced, s1));
        }
        let mut stats = s1;
        let mut balanced = part.balanced;
        use rayon::prelude::*;
        let locals: Vec<DcpResult<LocalPartition>> = (0..parts)
            .into_par_iter()
            .map(|p| {
                let verts: Vec<u32> = (0..hg.num_vertices() as u32)
                    .filter(|&v| part.assignment[v as usize] == p)
                    .collect();
                if verts.is_empty() {
                    return Ok((Vec::new(), Vec::new(), true, PartitionStats::default()));
                }
                let (sub, map) = hg.induced_subgraph(&verts);
                let (local, lb, ls) = self.place_levels(
                    &sub,
                    &levels[1..],
                    seed.wrapping_add(p as u64 + 1),
                    weights,
                    base + p as usize * stride as usize,
                )?;
                Ok((map, local, lb, ls))
            })
            .collect();
        let mut assignment = vec![0u32; hg.num_vertices()];
        for (p, res) in locals.into_iter().enumerate() {
            let (map, local, local_balanced, ls) = res?;
            balanced &= local_balanced;
            stats.merge(&ls);
            for (i, &orig) in map.iter().enumerate() {
                assignment[orig as usize] = p as u32 * stride + local[i];
            }
        }
        Ok((assignment, balanced, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_sched::schedule::validate_plan;

    fn planner(nodes: u32) -> Planner {
        Planner::new(
            ClusterSpec::p4de(nodes),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
        )
    }

    #[test]
    fn plan_is_valid_and_deterministic() {
        let p = planner(1);
        let seqs = vec![
            (16384, MaskSpec::Causal),
            (4096, MaskSpec::Causal),
            (2048, MaskSpec::paper_lambda()),
        ];
        let a = p.plan(&seqs).unwrap();
        validate_plan(&a.layout, &a.placement, &a.plan).unwrap();
        let b = p.plan(&seqs).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn compute_is_balanced_within_tolerance() {
        let p = planner(1);
        let seqs = vec![(32768, MaskSpec::Causal), (32768, MaskSpec::Causal)];
        let out = p.plan(&seqs).unwrap();
        let loads = out.placement.comp_loads(&out.layout);
        let total: u64 = loads.iter().sum();
        let avg = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().unwrap() as f64;
        // eps_intra = 0.1 plus a block of granularity slack.
        let max_block = out
            .layout
            .comp_blocks
            .iter()
            .map(|c| c.flops)
            .max()
            .unwrap() as f64;
        assert!(
            max <= avg * 1.1 + max_block,
            "max {max} vs avg {avg} (+block {max_block})"
        );
    }

    #[test]
    fn short_sequences_avoid_communication() {
        // A batch of only short sequences (each smaller than a block)
        // should be placeable with zero communication (pure DP).
        let p = planner(1);
        let seqs: Vec<(u32, MaskSpec)> = (0..16).map(|_| (1024, MaskSpec::Causal)).collect();
        let out = p.plan(&seqs).unwrap();
        assert_eq!(
            out.plan.total_comm_bytes(),
            0,
            "every sequence fits on one device"
        );
    }

    #[test]
    fn hierarchical_reduces_inter_node_volume() {
        let seqs = vec![
            (65536, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (8192, MaskSpec::Causal),
        ];
        let cluster = ClusterSpec::p4de(2);
        let mk = |hier: bool| {
            Planner::new(
                cluster.clone(),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    hierarchical: hier,
                    ..Default::default()
                },
            )
        };
        let inter_bytes = |out: &PlanOutput| {
            let c = &cluster;
            out.plan.fwd.comm_bytes_where(|a, b| {
                c.node_of(dcp_types::DeviceId(a)) != c.node_of(dcp_types::DeviceId(b))
            })
        };
        let hier = mk(true).plan(&seqs).unwrap();
        let flat = mk(false).plan(&seqs).unwrap();
        assert!(
            inter_bytes(&hier) <= inter_bytes(&flat),
            "hier {} > flat {}",
            inter_bytes(&hier),
            inter_bytes(&flat)
        );
    }

    #[test]
    fn spine_topology_adds_a_leaf_level_and_cuts_cross_leaf_volume() {
        // 4 nodes, 2 per leaf: the planner should mirror the 3-tier fabric
        // with a [leaves, nodes, devices] refinement hierarchy and push
        // traffic off the oversubscribed spine.
        let seqs = vec![
            (65536, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (16384, MaskSpec::Causal),
            (8192, MaskSpec::Causal),
        ];
        let spine = ClusterSpec::p4de_spine(4, 2, 4.0);
        let mk = |cluster: ClusterSpec| {
            Planner::new(
                cluster,
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    ..Default::default()
                },
            )
        };
        let aware = mk(spine.clone());
        assert_eq!(
            aware.placement_levels(),
            vec![
                (2, aware.cfg.eps_inter),
                (2, aware.cfg.eps_inter),
                (8, aware.cfg.eps_intra)
            ]
        );
        let aware_out = aware.plan(&seqs).unwrap();
        validate_plan(&aware_out.layout, &aware_out.placement, &aware_out.plan).unwrap();
        let blind_out = mk(ClusterSpec::p4de(4)).plan(&seqs).unwrap();
        let cross_leaf = |out: &PlanOutput| out.plan.fwd.comm_bytes_by_tier(&spine)[2];
        assert!(
            cross_leaf(&aware_out) <= cross_leaf(&blind_out),
            "aware {} > blind {}",
            cross_leaf(&aware_out),
            cross_leaf(&blind_out)
        );
    }

    #[test]
    fn looser_epsilon_no_more_comm() {
        let seqs = vec![(32768, MaskSpec::Causal), (8192, MaskSpec::Causal)];
        let comm = |eps: f64| {
            let p = Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    eps_intra: eps,
                    ..Default::default()
                },
            );
            p.plan(&seqs).unwrap().plan.fwd.total_comm_bytes()
        };
        let tight = comm(0.02);
        let loose = comm(0.8);
        assert!(loose <= tight, "loose {loose} > tight {tight}");
    }

    #[test]
    fn sparse_masks_cut_comm_vs_causal() {
        let p = planner(2);
        let causal = p.plan(&[(131072, MaskSpec::Causal)]).unwrap();
        let lambda = p.plan(&[(131072, MaskSpec::paper_lambda())]).unwrap();
        assert!(
            lambda.plan.total_comm_bytes() < causal.plan.total_comm_bytes() / 2,
            "lambda {} vs causal {}",
            lambda.plan.total_comm_bytes(),
            causal.plan.total_comm_bytes()
        );
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(planner(1).plan(&[]).is_err());
    }

    #[test]
    fn zero_devices_is_an_error_not_a_panic() {
        let p = Planner::new(
            ClusterSpec::single_node(0),
            AttnSpec::paper_micro(),
            PlannerConfig::default(),
        );
        let err = p.plan(&[(4096, MaskSpec::Causal)]).unwrap_err();
        assert!(matches!(err, DcpError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn zero_divisions_is_an_error_not_a_panic() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                divisions: 0,
                ..Default::default()
            },
        );
        let err = p.plan(&[(4096, MaskSpec::Causal)]).unwrap_err();
        assert!(matches!(err, DcpError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn zero_block_size_is_an_error_not_a_panic() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 0,
                ..Default::default()
            },
        );
        assert!(p.plan(&[(4096, MaskSpec::Causal)]).is_err());
    }

    #[test]
    fn default_plans_use_the_partitioned_tier() {
        let p = planner(1);
        let out = p.plan(&[(16384, MaskSpec::Causal)]).unwrap();
        assert_eq!(out.tier, PlanTier::Partitioned);
        assert!(out.fallback_reason.is_none());
    }

    #[test]
    fn forced_greedy_and_static_tiers_produce_valid_plans() {
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        for tier in [PlanTier::Greedy, PlanTier::Static] {
            let p = Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    force_tier: Some(tier),
                    ..Default::default()
                },
            );
            let out = p.plan(&seqs).unwrap();
            assert_eq!(out.tier, tier);
            validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
            assert_eq!(out.num_devices(), 8);
        }
    }

    #[test]
    fn infeasible_epsilon_falls_back_instead_of_erroring() {
        // strict ε = 0 with coarse blocks cannot be met exactly (block
        // granularity), so the partitioned tier is ε-infeasible; with
        // fallback enabled the plan must still come back valid, from a
        // degraded tier, with the reason recorded.
        let seqs = vec![(16384, MaskSpec::Causal), (2048, MaskSpec::Causal)];
        let mk = |fallback: bool| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 4096,
                    eps_intra: 0.0,
                    strict_epsilon: true,
                    fallback,
                    ..Default::default()
                },
            )
        };
        let out = mk(true).plan(&seqs).unwrap();
        assert_ne!(out.tier, PlanTier::Partitioned, "ε = 0 must be infeasible");
        validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
        let reason = out.fallback_reason.expect("reason recorded");
        assert!(reason.contains("partitioned"), "{reason}");
        // Strict mode surfaces the infeasibility instead.
        let err = mk(false).plan(&seqs).unwrap_err();
        assert!(matches!(err, DcpError::Infeasible(_)), "{err}");
    }

    #[test]
    fn tiny_regression_limit_rejects_every_fallback_tier() {
        // Same ε-infeasible setup as `infeasible_epsilon_falls_back...`, but
        // with an absurdly tight quality gate: every fallback candidate
        // regresses past it, the chain exhausts, and the typed rejection
        // surfaces instead of a silently degraded plan.
        let seqs = vec![(16384, MaskSpec::Causal), (2048, MaskSpec::Causal)];
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 4096,
                eps_intra: 0.0,
                strict_epsilon: true,
                max_fallback_regression: 1e-6,
                ..Default::default()
            },
        );
        let err = p.plan(&seqs).unwrap_err();
        assert!(matches!(err, DcpError::FallbackRejected { .. }), "{err}");
    }

    #[test]
    fn force_tier_skips_the_fallback_gate() {
        // Pinning a tier is an explicit user decision; there is no
        // partitioned reference to compare against, so the gate must not
        // veto it even at an impossible limit.
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                force_tier: Some(PlanTier::Static),
                max_fallback_regression: 1e-6,
                ..Default::default()
            },
        );
        let out = p.plan(&[(16384, MaskSpec::Causal)]).unwrap();
        assert_eq!(out.tier, PlanTier::Static);
    }

    #[test]
    fn fault_aware_placement_shifts_load_off_straggler() {
        use dcp_sim::Fault;
        let seqs = vec![(32768, MaskSpec::Causal), (32768, MaskSpec::Causal)];
        let mk = |spec: Option<FaultSpec>| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    fault_spec: spec,
                    ..Default::default()
                },
            )
        };
        let healthy = mk(None).plan(&seqs).unwrap();
        let spec = FaultSpec {
            seed: 0,
            faults: vec![Fault::Straggler {
                device: 0,
                slowdown: 4.0,
            }],
        };
        let aware = mk(Some(spec)).plan(&seqs).unwrap();
        assert_eq!(
            aware.tier,
            PlanTier::Partitioned,
            "{:?}",
            aware.fallback_reason
        );
        let hl = healthy.placement.comp_loads(&healthy.layout);
        let al = aware.placement.comp_loads(&aware.layout);
        assert!(
            (al[0] as f64) < 0.6 * hl[0] as f64,
            "straggler kept its load: {} vs healthy {}",
            al[0],
            hl[0]
        );
    }

    #[test]
    fn empty_fault_spec_places_identically_to_none() {
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        let mk = |spec: Option<FaultSpec>| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    fault_spec: spec,
                    ..Default::default()
                },
            )
        };
        let a = mk(None).plan(&seqs).unwrap();
        let b = mk(Some(FaultSpec {
            seed: 0,
            faults: Vec::new(),
        }))
        .plan(&seqs)
        .unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn plan_output_roundtrips_through_json() {
        let p = planner(1);
        let out = p.plan(&[(8192, MaskSpec::Causal)]).unwrap();
        let j = serde_json::to_string(&out).unwrap();
        let back: PlanOutput = serde_json::from_str(&j).unwrap();
        assert_eq!(back.placement, out.placement);
        assert_eq!(back.plan, out.plan);
        assert_eq!(back.tier, out.tier);
    }

    #[test]
    fn greedy_fallback_balances_compute() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                force_tier: Some(PlanTier::Greedy),
                ..Default::default()
            },
        );
        let out = p.plan(&[(32768, MaskSpec::Causal)]).unwrap();
        let loads = out.placement.comp_loads(&out.layout);
        let avg = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        let max_block = out
            .layout
            .comp_blocks
            .iter()
            .map(|c| c.flops)
            .max()
            .unwrap();
        let max = *loads.iter().max().unwrap();
        assert!(
            (max as f64) <= avg + max_block as f64,
            "greedy LPT bound violated: max {max} avg {avg}"
        );
    }

    #[test]
    fn cache_hit_is_bitwise_equal_to_fresh_plan() {
        let p = planner(2);
        let seqs = vec![
            (16384, MaskSpec::Causal),
            (4096, MaskSpec::paper_lambda()),
            (2048, MaskSpec::Causal),
        ];
        let cold = p.plan(&seqs).unwrap();
        assert!(!cold.stats.cache_hit);
        let warm = p.plan(&seqs).unwrap();
        assert!(warm.stats.cache_hit);
        // A fresh planner (empty cache) must produce the identical plan.
        let fresh = planner(2).plan(&seqs).unwrap();
        for out in [&warm, &fresh] {
            assert_eq!(out.placement, cold.placement);
            assert_eq!(out.plan, cold.plan);
            assert_eq!(out.tier, cold.tier);
        }
        assert_eq!(p.cache_stats(), (1, 1));
    }

    #[test]
    fn differing_masks_or_configs_never_collide() {
        // Same lengths, different mask: must be a miss, not a false hit.
        let p = planner(1);
        let a = p.plan(&[(16384, MaskSpec::Causal)]).unwrap();
        let b = p.plan(&[(16384, MaskSpec::paper_lambda())]).unwrap();
        assert!(!a.stats.cache_hit && !b.stats.cache_hit);
        assert_eq!(p.cache_stats(), (0, 2));
        // Same batch, different config: separate planners share nothing,
        // but even the signature must differ.
        let mk = |seed: u64| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    seed,
                    ..Default::default()
                },
            )
        };
        let seqs = [(8192, MaskSpec::Causal)];
        assert_ne!(mk(1).signature(&seqs), mk(2).signature(&seqs));
        // Batch order is part of the signature (plans are order-sensitive).
        let fwd = [(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        let rev = [(4096, MaskSpec::Causal), (16384, MaskSpec::Causal)];
        assert_ne!(mk(1).signature(&fwd), mk(1).signature(&rev));
    }

    #[test]
    fn cache_is_shared_across_clones_and_lru_bounded() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                plan_cache: 2,
                ..Default::default()
            },
        );
        let s1 = [(8192, MaskSpec::Causal)];
        let s2 = [(12288, MaskSpec::Causal)];
        let s3 = [(16384, MaskSpec::Causal)];
        p.plan(&s1).unwrap();
        // A clone sees the entry (shared cache).
        assert!(p.clone().plan(&s1).unwrap().stats.cache_hit);
        // Fill past capacity: s3 evicts the least-recently-used entry (s1).
        p.plan(&s2).unwrap();
        p.plan(&s3).unwrap();
        assert!(p.plan(&s3).unwrap().stats.cache_hit);
        assert!(p.plan(&s2).unwrap().stats.cache_hit);
        assert!(!p.plan(&s1).unwrap().stats.cache_hit, "s1 was evicted");
    }

    #[test]
    fn plan_cache_zero_disables_caching() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                plan_cache: 0,
                ..Default::default()
            },
        );
        let seqs = [(8192, MaskSpec::Causal)];
        assert!(!p.plan(&seqs).unwrap().stats.cache_hit);
        assert!(!p.plan(&seqs).unwrap().stats.cache_hit);
        assert_eq!(p.cache_stats(), (0, 0));
    }

    #[test]
    fn stats_record_stage_times_on_miss() {
        let p = planner(2);
        let out = p.plan(&[(32768, MaskSpec::Causal)]).unwrap();
        let s = out.stats;
        assert!(!s.cache_hit);
        assert!(s.coarsen_s > 0.0, "coarsening must be timed: {s:?}");
        assert!(s.refine_s > 0.0, "refinement must be timed: {s:?}");
        assert!(s.total_s >= s.schedule_s, "{s:?}");
    }

    #[test]
    fn hypergraph_cost_matches_plan_forward_comm() {
        // The connectivity−1 objective is exactly the forward communication
        // volume the schedule realizes.
        let p = planner(1);
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::paper_lambda())];
        let out = p.plan(&seqs).unwrap();
        let hg = Planner::build_hypergraph(&out.layout);
        let nt = out.layout.token_blocks.len();
        let mut assignment = out.placement.token_to_dev.clone();
        assignment.extend_from_slice(&out.placement.comp_to_dev);
        let cost = hg.connectivity_cost(&assignment, out.placement.num_devices);
        assert_eq!(cost, out.plan.fwd.total_comm_bytes());
        let _ = nt;
    }

    #[test]
    fn poisoned_cache_lock_recovers_and_planner_still_works() {
        let p = planner(1);
        let seqs = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        p.plan(&seqs).unwrap();
        // Poison the shared cache mutex: a clone's thread panics while
        // holding the guard (what a panicking plan under catch_unwind does).
        let p2 = p.clone();
        std::thread::spawn(move || {
            let _guard = p2.cache.lock().unwrap();
            panic!("poisoned on purpose");
        })
        .join()
        .unwrap_err();
        // The planner must recover — clearing the cache, not deadlocking or
        // propagating the poison to every future plan() call.
        let out = p.plan(&seqs).unwrap();
        assert!(
            !out.stats.cache_hit,
            "recovery clears the cache, so this is a miss"
        );
        validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
        // And caching works again after recovery.
        assert!(p.plan(&seqs).unwrap().stats.cache_hit);
    }

    #[test]
    fn cache_capacity_is_not_part_of_signature() {
        // Changing only cache capacities must not change the signature: a
        // restarted planner with a retuned cache still warm-hits on plans
        // persisted under the old config.
        let mk = |cap: usize, near: usize| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    plan_cache: cap,
                    incremental: IncrementalConfig {
                        near_cache: near,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
        };
        let seqs = [(8192, MaskSpec::Causal), (4096, MaskSpec::paper_lambda())];
        assert_eq!(mk(16, 8).signature(&seqs), mk(64, 2).signature(&seqs));
        assert_eq!(
            mk(16, 8).near_signature(&seqs),
            mk(64, 2).near_signature(&seqs)
        );
        // Semantic incremental knobs DO key: the regression bound changes
        // which plans are acceptable, so it must split the cache space.
        let mk_bound = |max_regression: f64| {
            Planner::new(
                ClusterSpec::p4de(1),
                AttnSpec::paper_micro(),
                PlannerConfig {
                    block_size: 1024,
                    incremental: IncrementalConfig {
                        enabled: true,
                        max_regression,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
        };
        assert_ne!(
            mk_bound(1.25).signature(&seqs),
            mk_bound(2.0).signature(&seqs)
        );
    }

    fn incremental_planner(nodes: u32) -> Planner {
        Planner::new(
            ClusterSpec::p4de(nodes),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                // Exact cache off so the second plan() exercises the warm
                // path instead of returning the memoized output.
                plan_cache: 0,
                incremental: IncrementalConfig {
                    enabled: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn near_hit_on_identical_batch_is_bitwise_equal_to_cold() {
        // Warm-starting FM from its own converged placement is a fixed
        // point, so re-planning the identical batch through the near-hit
        // path must reproduce the cold plan bit for bit.
        for nodes in [1, 2] {
            let p = incremental_planner(nodes);
            let seqs = vec![
                (16384, MaskSpec::Causal),
                (4096, MaskSpec::paper_lambda()),
                (2048, MaskSpec::Causal),
            ];
            let cold = p.plan(&seqs).unwrap();
            assert!(!cold.stats.near_hit);
            let warm = p.plan(&seqs).unwrap();
            assert!(warm.stats.near_hit, "nodes={nodes}: expected a near hit");
            assert!(!warm.stats.cache_hit);
            assert_eq!(warm.placement, cold.placement, "nodes={nodes}");
            assert_eq!(warm.plan, cold.plan, "nodes={nodes}");
            assert_eq!(warm.tier, PlanTier::Partitioned);
            assert_eq!(p.near_cache_stats(), (1, 1));
        }
    }

    #[test]
    fn near_hit_on_similar_batch_yields_valid_verified_plan() {
        // Lengths off by a few tokens bucket to the same block counts, so
        // the second batch near-hits the first one's seed. The warm plan
        // must be a legal, verified plan regardless of whether the quality
        // bound accepted the warm placement.
        let p = incremental_planner(2);
        let a = vec![(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)];
        let b = vec![(16380, MaskSpec::Causal), (4090, MaskSpec::Causal)];
        assert_eq!(p.near_signature(&a), p.near_signature(&b));
        p.plan(&a).unwrap();
        let out = p.plan(&b).unwrap();
        assert_eq!(p.near_cache_stats().0, 1, "seed lookup must hit");
        validate_plan(&out.layout, &out.placement, &out.plan).unwrap();
    }

    #[test]
    fn near_hit_respects_incremental_disabled() {
        // Default config: incremental off — repeated batches with the exact
        // cache disabled must plan cold every time.
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                plan_cache: 0,
                ..Default::default()
            },
        );
        let seqs = vec![(8192, MaskSpec::Causal)];
        p.plan(&seqs).unwrap();
        let out = p.plan(&seqs).unwrap();
        assert!(!out.stats.near_hit);
        assert_eq!(p.near_cache_stats(), (0, 0));
    }

    #[test]
    fn near_cache_is_lru_bounded() {
        let p = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 1024,
                plan_cache: 0,
                incremental: IncrementalConfig {
                    enabled: true,
                    near_cache: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let s1 = vec![(8192, MaskSpec::Causal)];
        let s2 = vec![(12288, MaskSpec::Causal)];
        p.plan(&s1).unwrap();
        assert!(p.plan(&s1).unwrap().stats.near_hit, "s1's seed is live");
        p.plan(&s2).unwrap(); // evicts s1's seed (capacity 1)
                              // Cold again (the eviction check) — and this cold plan re-seeds s1.
        assert!(
            !p.plan(&s1).unwrap().stats.near_hit,
            "s1's seed was evicted"
        );
        assert!(p.plan(&s1).unwrap().stats.near_hit, "s1 was re-seeded");
    }
}
