//! Scaling DCP to larger batches with data-parallel groups (paper Sec. 8).
//!
//! The paper's discussion proposes handling batch-size scaling by "grouping
//! nodes, applying DCP within groups and traditional DP across groups".
//! This module implements that: sequences are split across `g` node groups
//! balanced by attention FLOPs (longest-processing-time greedy — quadratic
//! cost makes token-balancing wrong, Sec. 2.3), and each group plans its
//! own sub-batch independently on its slice of the cluster. Gradient
//! synchronization across groups is ordinary data parallelism and is
//! accounted by the end-to-end model.

use dcp_mask::MaskSpec;
use dcp_types::{AttnSpec, ClusterSpec, DcpError, DcpResult};

use crate::planner::{PlanOutput, Planner, PlannerConfig};

/// The result of grouped planning: per group, the sequences (by index into
/// the original batch) and the group's plan.
#[derive(Debug)]
pub struct GroupedPlan {
    /// For each group: indices of the batch's sequences assigned to it.
    pub groups: Vec<Vec<usize>>,
    /// Per-group plan outputs (same order).
    pub plans: Vec<PlanOutput>,
}

impl GroupedPlan {
    /// Per-group total attention FLOPs.
    pub fn group_flops(&self) -> Vec<u64> {
        self.plans.iter().map(|p| p.layout.total_flops()).collect()
    }

    /// Max/mean FLOPs imbalance across groups.
    pub fn imbalance(&self) -> f64 {
        let f = self.group_flops();
        let max = *f.iter().max().unwrap_or(&0) as f64;
        let mean = f.iter().sum::<u64>() as f64 / f.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Splits `seqs` across `groups` node groups (each `cluster.nodes / groups`
/// nodes) and runs the DCP planner inside each group.
///
/// Sequences are assigned by LPT greedy on their *attention FLOPs* (which
/// grow quadratically with length under causal masks — token-count
/// balancing would misbalance compute, the paper's Sec. 2.3 observation).
///
/// # Errors
///
/// Returns [`DcpError::InvalidArgument`] if `groups` does not divide the
/// node count or there are fewer sequences than groups.
pub fn plan_grouped(
    cluster: &ClusterSpec,
    attn: AttnSpec,
    cfg: &PlannerConfig,
    groups: u32,
    seqs: &[(u32, MaskSpec)],
) -> DcpResult<GroupedPlan> {
    if groups == 0 || !cluster.nodes.is_multiple_of(groups) {
        return Err(DcpError::invalid_argument(format!(
            "groups ({groups}) must divide the node count ({})",
            cluster.nodes
        )));
    }
    if seqs.len() < groups as usize {
        return Err(DcpError::invalid_argument(format!(
            "batch has {} sequences, fewer than {groups} groups",
            seqs.len()
        )));
    }

    // Attention FLOPs per sequence (mask-aware).
    let mut weighted: Vec<(usize, u64)> = Vec::with_capacity(seqs.len());
    for (i, (len, mask)) in seqs.iter().enumerate() {
        let m = mask.instantiate(*len)?;
        weighted.push((i, attn.pair_flops(m.total_pairs())));
    }
    weighted.sort_by_key(|&(_, f)| std::cmp::Reverse(f));

    // LPT greedy.
    let mut group_seqs: Vec<Vec<usize>> = vec![Vec::new(); groups as usize];
    let mut loads = vec![0u64; groups as usize];
    for (i, f) in weighted {
        let g = (0..groups as usize)
            .min_by_key(|&g| loads[g])
            .expect("groups > 0");
        group_seqs[g].push(i);
        loads[g] += f;
    }
    for g in &mut group_seqs {
        g.sort_unstable();
    }

    // Plan each group on its slice of the cluster.
    let sub_cluster = ClusterSpec {
        nodes: cluster.nodes / groups,
        ..cluster.clone()
    };
    let planner = Planner::new(sub_cluster, attn, cfg.clone());
    let mut plans = Vec::with_capacity(groups as usize);
    for g in &group_seqs {
        let sub: Vec<(u32, MaskSpec)> = g.iter().map(|&i| seqs[i].clone()).collect();
        plans.push(planner.plan(&sub)?);
    }
    Ok(GroupedPlan {
        groups: group_seqs,
        plans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(lens: &[u32]) -> Vec<(u32, MaskSpec)> {
        lens.iter().map(|&l| (l, MaskSpec::Causal)).collect()
    }

    #[test]
    fn partitions_every_sequence_exactly_once() {
        let cluster = ClusterSpec::p4de(4);
        let batch = seqs(&[30000, 4000, 8000, 12000, 2000, 6000, 1000, 900]);
        let gp = plan_grouped(
            &cluster,
            AttnSpec::paper_micro(),
            &PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
            2,
            &batch,
        )
        .unwrap();
        let mut all: Vec<usize> = gp.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..batch.len()).collect::<Vec<_>>());
        assert_eq!(gp.plans.len(), 2);
        // Each group plans on half the cluster.
        for p in &gp.plans {
            assert_eq!(p.num_devices(), 16);
        }
    }

    #[test]
    fn flops_balanced_better_than_token_balance_would_be() {
        // One quadratic monster plus many short sequences: LPT on FLOPs
        // puts the monster alone-ish.
        let cluster = ClusterSpec::p4de(2);
        let batch = seqs(&[65536, 4000, 4000, 4000, 4000, 4000, 4000, 4000]);
        let gp = plan_grouped(
            &cluster,
            AttnSpec::paper_micro(),
            &PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
            2,
            &batch,
        )
        .unwrap();
        // The monster's group contains only the monster.
        let monster_group = gp
            .groups
            .iter()
            .position(|g| g.contains(&0))
            .expect("assigned");
        assert_eq!(gp.groups[monster_group], vec![0]);
        // Imbalance is bounded by the monster's dominance, not worsened.
        assert!(gp.imbalance() < 2.0, "imbalance {}", gp.imbalance());
    }

    #[test]
    fn rejects_bad_configs() {
        let cluster = ClusterSpec::p4de(4);
        let batch = seqs(&[1000, 2000]);
        let cfg = PlannerConfig::default();
        let attn = AttnSpec::paper_micro();
        assert!(plan_grouped(&cluster, attn, &cfg, 3, &batch).is_err()); // 3 !| 4
        assert!(plan_grouped(&cluster, attn, &cfg, 4, &batch).is_err()); // 2 seqs < 4
        assert!(plan_grouped(&cluster, attn, &cfg, 0, &batch).is_err());
    }

    #[test]
    fn grouped_plans_are_individually_valid() {
        let cluster = ClusterSpec::p4de(2);
        let batch = seqs(&[16000, 9000, 5000, 3000]);
        let gp = plan_grouped(
            &cluster,
            AttnSpec::paper_micro(),
            &PlannerConfig {
                block_size: 1024,
                ..Default::default()
            },
            2,
            &batch,
        )
        .unwrap();
        for (g, p) in gp.groups.iter().zip(&gp.plans) {
            dcp_sched::schedule::validate_plan(&p.layout, &p.placement, &p.plan).unwrap();
            let tokens: u64 = g.iter().map(|&i| batch[i].0 as u64).sum();
            assert_eq!(p.layout.total_tokens(), tokens);
        }
    }
}
