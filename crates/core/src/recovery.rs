//! Elastic mid-iteration recovery: shrink-and-reshard a live plan onto the
//! surviving devices after a device loss.
//!
//! The planner (Sec. 4) assumes the device set is fixed for the whole
//! iteration. This module relaxes that: given a [`PlanOutput`] already in
//! flight, a per-device execution frontier (how many fused attention
//! divisions each device completed) and a [`FailureEvent`] naming the lost
//! device, [`RecoveryPlanner::plan_recovery`] produces a [`RecoveryPatch`]
//! that completes the batch on the survivors **without recomputing anything
//! the failed device already finished**:
//!
//! - the failed device's *un-executed* computation blocks and its ownership
//!   duties are grouped into per-Q-block **residual units** and re-sharded
//!   over the survivors by the same hypergraph partitioner the planner uses,
//!   with each survivor's *remaining* capacity (its own unfinished divisions)
//!   as the per-part target weight (via
//!   [`dcp_hypergraph::PartitionConfig::with_part_targets`]);
//! - partial outputs the failed device already reduced are **salvaged**: its
//!   raw online-softmax accumulators ship to the replacement shards over
//!   dedicated salvage comm ops, so the shards fold the residual blocks into
//!   them exactly where the failed device left off — the merged batch output
//!   is bitwise identical to an unfaulted run (see
//!   `dcp_exec::execute_forward_recovery`);
//! - survivor instruction streams are reused **verbatim**: shards deposit
//!   the failed device's outstanding partials under the original comm ids,
//!   so nothing downstream of the failure is regenerated. Only the failed
//!   device's stream (truncated at the frontier plus salvage launches) and
//!   the shard streams are new.
//!
//! The patch carries two phase plans: `fwd`, a *functional* plan over
//! `D + S` logical devices (shard `j` is logical device `D + j`) for the
//! numerical executor, and `timing`, the same work folded back onto the `D`
//! physical ranks (shard `j` on survivor `shard_hosts[j]`) for the cluster
//! simulator — the recovered-vs-clean makespan delta is the recovery cost
//! charged into the iteration breakdown. The backward phase has no partial
//! state to salvage, so it is re-planned from scratch on the survivors.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use dcp_blocks::{BatchLayout, CompBlockId, TokenBlockId};
use dcp_hypergraph::{partition, HypergraphBuilder, PartitionConfig, VertexWeight};
use dcp_obs::{Event, ObsHandle, Source as ObsSource};
use dcp_sched::{
    build_plan, verify_phase, verify_plan, verify_structure, BufferStats, CommId, CommOp,
    DeviceStream, ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan, Placement, ReduceItem,
    ScheduleConfig, Transfer, VerifyCtx,
};
use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

use crate::planner::PlanOutput;

/// A device loss at a division boundary of the forward phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// The lost device rank.
    pub device: u32,
    /// Fused attention divisions the device completed before failing (its
    /// execution frontier). `0` means it failed before computing anything;
    /// a value equal to its division count means only its ownership duties
    /// (output reduction) remain.
    pub divisions_done: u32,
}

/// Tuning knobs for the recovery planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Imbalance tolerance for the residual re-shard (both weight
    /// dimensions). The residual subproblem is small, so this is looser
    /// than the planner's placement epsilon.
    pub epsilon: f64,
    /// Partitioner seed.
    pub seed: u64,
    /// Divisions for the re-planned backward phase (match the original
    /// [`crate::PlannerConfig::divisions`]).
    pub divisions: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            epsilon: 0.4,
            seed: 0x5eed,
            divisions: 4,
        }
    }
}

/// Accounting for one recovery patch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Forward FLOPs the failed device was assigned in the original plan.
    pub failed_flops: u64,
    /// Forward FLOPs re-assigned to shards (the failed device's un-executed
    /// blocks). Everything it finished is salvaged, not redone.
    pub redone_flops: u64,
    /// Bytes of raw accumulators evacuated from the failed device.
    pub salvage_bytes: u64,
    /// Bytes of Q/KV inputs the shards re-fetch for residual blocks.
    pub refetch_bytes: u64,
    /// Residual units (Q-block groups) re-sharded over the survivors.
    pub residual_units: usize,
    /// Whether the hypergraph re-shard fell back to greedy waterfilling.
    pub greedy_fallback: bool,
    /// Wall time spent building this patch.
    pub plan_wall_s: f64,
}

/// The shrink-and-reshard patch for one [`FailureEvent`].
///
/// `fwd` is the functional plan: `D + shard_hosts.len()` logical devices,
/// executed with `dcp_exec::execute_forward_recovery` using a salvage
/// context built from `failed` / `salvage_comms` / `producer_of` /
/// `reowned`. `timing` folds the shard work onto the `D` physical ranks for
/// the simulator. The backward phase is re-planned: `bwd_placement` assigns
/// nothing to the failed device and `bwd` is its freshly built plan.
#[derive(Debug, Clone)]
pub struct RecoveryPatch {
    /// The failed device rank.
    pub failed: u32,
    /// Divisions the failed device completed (copied from the event).
    pub divisions_done: u32,
    /// Physical survivor hosting each shard: shard `j` (logical device
    /// `D + j`) runs on rank `shard_hosts[j]`.
    pub shard_hosts: Vec<u32>,
    /// Placement over the `D + S` logical devices of `fwd`.
    pub placement: Placement,
    /// Patched forward phase over `D + S` logical devices.
    pub fwd: PhasePlan,
    /// Comm ids in `fwd` carrying raw salvaged accumulators.
    pub salvage_comms: HashSet<u32>,
    /// Shard (logical device id) that deposits each token block's
    /// outstanding partial under the original comm ids.
    pub producer_of: HashMap<TokenBlockId, u32>,
    /// Token blocks whose ownership moved from the failed device to a shard.
    pub reowned: HashSet<TokenBlockId>,
    /// The patched forward phase folded onto the `D` physical ranks, for
    /// the cluster simulator.
    pub timing: PhasePlan,
    /// Backward placement over `D` devices with nothing on the failed rank.
    pub bwd_placement: Placement,
    /// Freshly built plan for `bwd_placement` (use its `bwd` phase).
    pub bwd: ExecutionPlan,
    /// Patch accounting.
    pub stats: RecoveryStats,
}

/// One residual unit: a Q block plus the failed device's un-executed
/// computation blocks targeting it, moved to a shard as a whole so the
/// salvaged accumulator, the residual folds and the ownership duties of the
/// block stay colocated.
#[derive(Debug)]
struct Unit {
    tb: TokenBlockId,
    items: Vec<CompBlockId>,
    flops: u64,
    owned: bool,
}

/// Builds [`RecoveryPatch`]es for failures against live [`PlanOutput`]s.
#[derive(Debug, Clone)]
pub struct RecoveryPlanner {
    cfg: RecoveryConfig,
    obs: ObsHandle,
}

impl RecoveryPlanner {
    /// A recovery planner with the given configuration and no observability.
    pub fn new(cfg: RecoveryConfig) -> Self {
        RecoveryPlanner {
            cfg,
            obs: ObsHandle::noop(),
        }
    }

    /// Attaches an observability sink: `plan_recovery` emits a
    /// `device_lost` instant, a `recovery_plan` span and salvage/redo
    /// counters under [`dcp_obs::Source::Planner`].
    #[must_use]
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Produces the shrink-and-reshard patch for `ev` against `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] if the failed device is out of
    /// range, there are no survivors, or `divisions_done` exceeds the
    /// device's division count; [`DcpError::InvalidPlan`] if the plan's
    /// streams are internally inconsistent.
    pub fn plan_recovery(&self, out: &PlanOutput, ev: &FailureEvent) -> DcpResult<RecoveryPatch> {
        let t0 = Instant::now();
        let d_total = out.plan.num_devices;
        let failed = ev.device;
        if failed >= d_total {
            return Err(DcpError::invalid_argument(format!(
                "failed device {failed} out of range for {d_total} devices"
            )));
        }
        if d_total < 2 {
            return Err(DcpError::invalid_argument(
                "cannot recover: no surviving devices",
            ));
        }
        let layout = &out.layout;
        let fwd = &out.plan.fwd;
        let fstream = &fwd.devices[failed as usize];

        // --- 1. Execution frontier: split the failed stream. -------------
        let (cut, executed, residual, failed_flops) =
            split_frontier(&fstream.instrs, ev.divisions_done)?;
        let redone_flops: u64 = residual
            .iter()
            .map(|&c| layout.comp_blocks[c.0 as usize].flops)
            .sum();

        // --- 2. Residual units: group by Q block, absorb ownership. ------
        let mut units: Vec<Unit> = Vec::new();
        let mut unit_of: HashMap<TokenBlockId, usize> = HashMap::new();
        for &c in &residual {
            let cb = layout.comp_blocks[c.0 as usize];
            let idx = *unit_of.entry(cb.q_block).or_insert_with(|| {
                units.push(Unit {
                    tb: cb.q_block,
                    items: Vec::new(),
                    flops: 0,
                    owned: false,
                });
                units.len() - 1
            });
            units[idx].items.push(c);
            units[idx].flops += cb.flops;
        }
        for (i, &owner) in out.placement.token_to_dev.iter().enumerate() {
            if owner == failed {
                let tb = TokenBlockId(i as u32);
                let idx = *unit_of.entry(tb).or_insert_with(|| {
                    units.push(Unit {
                        tb,
                        items: Vec::new(),
                        flops: 0,
                        owned: false,
                    });
                    units.len() - 1
                });
                units[idx].owned = true;
            }
        }

        // --- 3. Re-shard units onto survivors' remaining capacity. -------
        let survivors: Vec<u32> = (0..d_total).filter(|&x| x != failed).collect();
        let s_count = survivors.len();
        let shard_dev = |j: u32| d_total + j;
        let remaining: Vec<u64> = survivors
            .iter()
            .map(|&s| remaining_flops(&fwd.devices[s as usize].instrs, ev.divisions_done))
            .collect();
        let unit_bytes = |u: &Unit| {
            let tb = &layout.token_blocks[u.tb.0 as usize];
            tb.o_bytes + if u.owned { tb.total_bytes() } else { 0 }
        };
        let residual_total: u64 = units.iter().map(|u| u.flops).sum();
        let bytes_total: u64 = units.iter().map(unit_bytes).sum();
        // Waterfill: every survivor should end this phase with the same
        // total remaining work, so a shard's target is the shortfall between
        // the post-recovery ideal and what its host already has queued.
        let ideal = (remaining.iter().sum::<u64>() + residual_total) as f64 / s_count.max(1) as f64;
        let targets: Vec<VertexWeight> = remaining
            .iter()
            .map(|&r| {
                [
                    (ideal - r as f64).max(1.0).round() as u64,
                    (bytes_total / s_count as u64).max(1),
                ]
            })
            .collect();
        let mut greedy_fallback = false;
        let part_of: Vec<u32> = if units.is_empty() {
            Vec::new()
        } else if s_count == 1 {
            vec![0; units.len()]
        } else {
            let mut b = HypergraphBuilder::new(units.len());
            for (i, u) in units.iter().enumerate() {
                b.set_vertex_weight(i, [u.flops.max(1), unit_bytes(u)]);
            }
            // Units sharing a KV input want to land on the same shard so the
            // input is fetched once.
            let mut consumers: BTreeMap<TokenBlockId, Vec<u32>> = BTreeMap::new();
            for (i, u) in units.iter().enumerate() {
                for &c in &u.items {
                    let kb = layout.comp_blocks[c.0 as usize].kv_block;
                    consumers.entry(kb).or_default().push(i as u32);
                }
            }
            for (kb, pins) in consumers {
                if pins.len() > 1 {
                    b.add_edge(layout.token_blocks[kb.0 as usize].kv_bytes, &pins);
                }
            }
            let hg = b.build()?;
            let mut pc = PartitionConfig::new(s_count as u32)
                .with_epsilon(self.cfg.epsilon)
                .with_part_targets(targets.clone());
            pc.eps[1] = self.cfg.epsilon;
            pc.seed = self.cfg.seed;
            match partition(&hg, &pc) {
                Ok(p) if p.balanced => p.assignment,
                _ => {
                    greedy_fallback = true;
                    waterfill(&units, &targets)
                }
            }
        };

        // --- 4. Patched placement over D + S logical devices. ------------
        let mut token_to_dev = out.placement.token_to_dev.clone();
        let mut comp_to_dev = out.placement.comp_to_dev.clone();
        let mut reowned: HashSet<TokenBlockId> = HashSet::new();
        for (i, u) in units.iter().enumerate() {
            let dev = shard_dev(part_of[i]);
            if u.owned {
                token_to_dev[u.tb.0 as usize] = dev;
                reowned.insert(u.tb);
            }
            for &c in &u.items {
                comp_to_dev[c.0 as usize] = dev;
            }
        }
        let placement = Placement {
            num_devices: d_total + s_count as u32,
            token_to_dev,
            comp_to_dev,
        };

        // --- 5. Patched comm ops. ----------------------------------------
        let mut comms: Vec<CommOp> = fwd.comms.clone();
        // Partials bound for the failed owner now target its block's shard.
        for op in &mut comms {
            for tr in &mut op.transfers {
                if tr.to == failed {
                    if let Payload::PartialO(tb, _) = tr.payload {
                        let &u = unit_of.get(&tb).ok_or_else(|| {
                            DcpError::invalid_plan(format!(
                                "partial for {tb:?} targets failed device {failed} \
                                 but the block has no residual unit"
                            ))
                        })?;
                        tr.to = shard_dev(part_of[u]);
                    }
                }
            }
        }
        // The failed device's outstanding out-comms: launched after the
        // frontier, so a shard must deposit them under the original ids.
        let mut residual_out_cids: Vec<u32> = Vec::new();
        let mut producer_of: HashMap<TokenBlockId, u32> = HashMap::new();
        for ins in &fstream.instrs[cut..] {
            if let Instr::CommLaunch(cid) = ins {
                let op = &comms[cid.0 as usize];
                let mut is_out = false;
                for tr in &op.transfers {
                    if let Payload::PartialO(tb, p) = tr.payload {
                        if p == failed {
                            is_out = true;
                            let &u = unit_of.get(&tb).ok_or_else(|| {
                                DcpError::invalid_plan(format!(
                                    "outstanding partial for {tb:?} has no residual unit"
                                ))
                            })?;
                            producer_of.insert(tb, shard_dev(part_of[u]));
                        }
                    }
                }
                if is_out {
                    residual_out_cids.push(cid.0);
                }
            }
        }
        // Salvage ops: raw accumulators the failed device built before the
        // frontier that a shard still needs (residual folds, outstanding
        // partials, or final assembly of a re-owned block).
        let executed_q: HashSet<TokenBlockId> = executed
            .iter()
            .map(|&c| layout.comp_blocks[c.0 as usize].q_block)
            .collect();
        let mut salvage_comms: HashSet<u32> = HashSet::new();
        let mut salvage_cid: Vec<Option<CommId>> = vec![None; s_count];
        let mut salvage_bytes = 0u64;
        #[allow(clippy::needless_range_loop)]
        for j in 0..s_count {
            let transfers: Vec<Transfer> = units
                .iter()
                .enumerate()
                .filter(|&(i, u)| part_of[i] == j as u32 && executed_q.contains(&u.tb))
                .map(|(_, u)| {
                    let bytes = layout.token_blocks[u.tb.0 as usize].o_bytes;
                    salvage_bytes += bytes;
                    Transfer {
                        from: failed,
                        to: shard_dev(j as u32),
                        payload: Payload::PartialO(u.tb, failed),
                        bytes,
                    }
                })
                .collect();
            if !transfers.is_empty() {
                let cid = CommId(comms.len() as u32);
                salvage_cid[j] = Some(cid);
                salvage_comms.insert(cid.0);
                comms.push(CommOp { transfers });
            }
        }
        // Input re-fetch ops: Q/KV slices a shard's residual blocks read
        // that it does not own under the patched placement. `from` is the
        // device physically holding the data today (the original owner — the
        // failed device keeps serving its resident blocks while draining).
        let mut fetch_cid: Vec<Option<CommId>> = vec![None; s_count];
        let mut refetch_bytes = 0u64;
        #[allow(clippy::needless_range_loop)]
        for j in 0..s_count {
            let dev = shard_dev(j as u32);
            let mut seen: HashSet<Payload> = HashSet::new();
            let mut transfers: Vec<Transfer> = Vec::new();
            for (i, u) in units.iter().enumerate() {
                if part_of[i] != j as u32 {
                    continue;
                }
                for &c in &u.items {
                    let cb = layout.comp_blocks[c.0 as usize];
                    let qb = &layout.token_blocks[cb.q_block.0 as usize];
                    let kb = &layout.token_blocks[cb.kv_block.0 as usize];
                    for (payload, bytes) in [
                        (Payload::Q(cb.q_block), qb.q_bytes),
                        (Payload::Kv(cb.kv_block), kb.kv_bytes),
                    ] {
                        let tb = payload.token_block();
                        if placement.token_dev(tb) == dev || !seen.insert(payload) {
                            continue;
                        }
                        refetch_bytes += bytes;
                        transfers.push(Transfer {
                            from: out.placement.token_dev(tb),
                            to: dev,
                            payload,
                            bytes,
                        });
                    }
                }
            }
            if !transfers.is_empty() {
                let cid = CommId(comms.len() as u32);
                fetch_cid[j] = Some(cid);
                comms.push(CommOp { transfers });
            }
        }

        // --- 6. Streams: truncate the failed device, emit shards. --------
        let mut truncated: Vec<Instr> = fstream.instrs[..cut].to_vec();
        for cid in salvage_cid.iter().flatten() {
            truncated.push(Instr::CommLaunch(*cid));
        }
        // The failed stream's original tail: output waits and the reduce,
        // mirrored (filtered) onto the shards in the same order.
        let tail_waits: Vec<u32> = fstream.instrs[cut..]
            .iter()
            .filter_map(|ins| match ins {
                Instr::CommWait(cid) => Some(cid.0),
                _ => None,
            })
            .collect();
        let failed_reduce: Vec<ReduceItem> = fstream
            .instrs
            .iter()
            .find_map(|ins| match ins {
                Instr::Reduce { items, .. } => Some(items.clone()),
                _ => None,
            })
            .unwrap_or_default();

        let mut devices: Vec<DeviceStream> = fwd.devices.clone();
        devices[failed as usize] = DeviceStream {
            device: failed,
            instrs: truncated.clone(),
            buffer: fstream.buffer,
        };
        for j in 0..s_count {
            let dev = shard_dev(j as u32);
            let mut instrs: Vec<Instr> = Vec::new();
            if let Some(cid) = fetch_cid[j] {
                instrs.push(Instr::CommLaunch(cid));
            }
            if let Some(cid) = salvage_cid[j] {
                instrs.push(Instr::CommWait(cid));
            }
            if let Some(cid) = fetch_cid[j] {
                instrs.push(Instr::CommWait(cid));
            }
            let items: Vec<CompBlockId> = residual
                .iter()
                .copied()
                .filter(|&c| placement.comp_dev(c) == dev)
                .collect();
            if !items.is_empty() {
                let flops = items
                    .iter()
                    .map(|&c| layout.comp_blocks[c.0 as usize].flops)
                    .sum();
                instrs.push(Instr::Attn { items, flops });
            }
            for &cid in &residual_out_cids {
                let mine = comms[cid as usize].transfers.iter().any(|tr| {
                    matches!(tr.payload, Payload::PartialO(tb, p)
                        if p == failed && producer_of.get(&tb) == Some(&dev))
                });
                if mine {
                    instrs.push(Instr::CommLaunch(CommId(cid)));
                }
            }
            for &cid in &tail_waits {
                if comms[cid as usize].transfers.iter().any(|tr| tr.to == dev) {
                    instrs.push(Instr::CommWait(CommId(cid)));
                }
            }
            let ritems: Vec<ReduceItem> = failed_reduce
                .iter()
                .filter(|it| placement.token_dev(it.target) == dev)
                .cloned()
                .collect();
            if !ritems.is_empty() {
                let bytes = reduce_bytes(layout, &ritems);
                instrs.push(Instr::Reduce {
                    items: ritems,
                    bytes,
                });
            }
            devices.push(DeviceStream {
                device: dev,
                instrs,
                buffer: BufferStats::default(),
            });
        }
        let patch_fwd = PhasePlan {
            comms: comms.clone(),
            devices,
        };

        // --- 7. Timing plan: fold shards onto their physical hosts. ------
        let host = |x: u32| {
            if x >= d_total {
                survivors[(x - d_total) as usize]
            } else {
                x
            }
        };
        let tcomms: Vec<CommOp> = comms
            .iter()
            .enumerate()
            .map(|(cid, op)| CommOp {
                transfers: op
                    .transfers
                    .iter()
                    .map(|tr| {
                        // Outstanding partials are now produced by a shard,
                        // so the flow must originate from the shard's host
                        // for the spliced launch to start it. Salvage ops
                        // are genuine failed→shard evacuations and keep
                        // their source.
                        let from = match tr.payload {
                            Payload::PartialO(tb, _)
                                if tr.from == failed && !salvage_comms.contains(&(cid as u32)) =>
                            {
                                producer_of.get(&tb).copied().unwrap_or(tr.from)
                            }
                            _ => tr.from,
                        };
                        Transfer { from, ..*tr }
                    })
                    .filter(|tr| host(tr.from) != host(tr.to))
                    .map(|tr| Transfer {
                        from: host(tr.from),
                        to: host(tr.to),
                        ..tr
                    })
                    .collect(),
            })
            .collect();
        let mut tdevices: Vec<DeviceStream> = Vec::with_capacity(d_total as usize);
        for r in 0..d_total {
            if r == failed {
                tdevices.push(DeviceStream {
                    device: r,
                    instrs: truncated.clone(),
                    buffer: fstream.buffer,
                });
                continue;
            }
            let j = survivors.iter().position(|&s| s == r).expect("survivor");
            let orig = &fwd.devices[r as usize];
            let mut instrs = orig.instrs.clone();
            // Shard work slots in after the host's own compute, before its
            // trailing output waits and reduce.
            let mut tail = instrs.len();
            while tail > 0 && matches!(instrs[tail - 1], Instr::CommWait(_) | Instr::Reduce { .. })
            {
                tail -= 1;
            }
            let shard = patch_fwd.devices[d_total as usize + j].instrs.clone();
            instrs.splice(tail..tail, shard);
            tdevices.push(DeviceStream {
                device: r,
                instrs,
                buffer: orig.buffer,
            });
        }
        let timing = PhasePlan {
            comms: tcomms,
            devices: tdevices,
        };

        // --- 8. Backward: re-plan from scratch on the survivors. ---------
        let mut bwd_token = out.placement.token_to_dev.clone();
        let mut bwd_comp = out.placement.comp_to_dev.clone();
        for (i, u) in units.iter().enumerate() {
            let s = survivors[part_of[i] as usize];
            if u.owned {
                bwd_token[u.tb.0 as usize] = s;
            }
            for &c in &u.items {
                bwd_comp[c.0 as usize] = s;
            }
        }
        let mut load = vec![0u64; d_total as usize];
        for (c, &dev) in bwd_comp.iter().enumerate() {
            if dev != failed {
                load[dev as usize] += layout.comp_blocks[c].flops;
            }
        }
        // The failed device's *executed* blocks still need a backward home;
        // waterfill them over the survivors by total flop load.
        for (c, dev) in bwd_comp.iter_mut().enumerate() {
            if *dev == failed {
                let s = *survivors
                    .iter()
                    .min_by_key(|&&s| (load[s as usize], s))
                    .expect("nonempty survivors");
                *dev = s;
                load[s as usize] += layout.comp_blocks[c].flops;
            }
        }
        let bwd_placement = Placement {
            num_devices: d_total,
            token_to_dev: bwd_token,
            comp_to_dev: bwd_comp,
        };
        let bwd = build_plan(
            layout,
            &bwd_placement,
            &ScheduleConfig {
                divisions: self.cfg.divisions,
                ..Default::default()
            },
        )?;

        // Every rendered patch stream must satisfy the legal-stream contract
        // before it ships: the functional forward phase under the salvage
        // rules, the re-planned backward phase as an ordinary plan, and the
        // host-folded timing phase structurally (host folding legitimately
        // leaves some waits with no incoming transfers, so the full symbolic
        // check does not apply).
        let verify_ctx = VerifyCtx {
            failed: Some(failed),
            salvage_comms: salvage_comms.clone(),
            producer_of: producer_of.clone(),
            reowned: reowned.clone(),
        };
        verify_phase(layout, &placement, &patch_fwd, false, &verify_ctx)
            .map_err(|d| DcpError::invalid_plan(format!("recovery fwd patch: {d}")))?;
        verify_plan(layout, &bwd_placement, &bwd)
            .map_err(|d| DcpError::invalid_plan(format!("recovery bwd plan: {d}")))?;
        verify_structure(&timing)
            .map_err(|d| DcpError::invalid_plan(format!("recovery timing plan: {d}")))?;

        let stats = RecoveryStats {
            failed_flops,
            redone_flops,
            salvage_bytes,
            refetch_bytes,
            residual_units: units.len(),
            greedy_fallback,
            plan_wall_s: t0.elapsed().as_secs_f64(),
        };
        if self.obs.enabled() {
            self.obs.record(
                Event::instant(ObsSource::Planner, "device_lost")
                    .with_device(failed)
                    .with_division(ev.divisions_done),
            );
            self.obs.record(
                Event::span(ObsSource::Planner, "recovery_plan")
                    .with_device(failed)
                    .with_time(0.0, stats.plan_wall_s),
            );
            self.obs.record(
                Event::counter(
                    ObsSource::Planner,
                    "recovery_redone_flops",
                    redone_flops as f64,
                )
                .with_flops(redone_flops),
            );
            self.obs.record(
                Event::counter(
                    ObsSource::Planner,
                    "recovery_salvage_bytes",
                    salvage_bytes as f64,
                )
                .with_bytes(salvage_bytes),
            );
            if greedy_fallback {
                self.obs.record(Event::instant(
                    ObsSource::Planner,
                    "recovery_greedy_fallback",
                ));
            }
        }
        Ok(RecoveryPatch {
            failed,
            divisions_done: ev.divisions_done,
            shard_hosts: survivors,
            placement,
            fwd: patch_fwd,
            salvage_comms,
            producer_of,
            reowned,
            timing,
            bwd_placement,
            bwd,
            stats,
        })
    }
}

/// Splits a device stream at its execution frontier: the instruction just
/// past the `k`-th fused `Attn` call, extended through the comm launches
/// that immediately follow it (the completed division's out-comm and any
/// already-issued prefetch). Returns the cut index, the executed and
/// residual computation blocks (in stream order) and the stream's total
/// forward flops.
fn split_frontier(
    instrs: &[Instr],
    k: u32,
) -> DcpResult<(usize, Vec<CompBlockId>, Vec<CompBlockId>, u64)> {
    let mut cut = 0usize;
    if k > 0 {
        let mut seen = 0u32;
        let mut found = false;
        for (i, ins) in instrs.iter().enumerate() {
            if matches!(ins, Instr::Attn { .. }) {
                seen += 1;
                if seen == k {
                    cut = i + 1;
                    found = true;
                    break;
                }
            }
        }
        if !found {
            return Err(DcpError::invalid_argument(format!(
                "device has fewer than divisions_done = {k} attention divisions"
            )));
        }
    }
    while cut < instrs.len() && matches!(instrs[cut], Instr::CommLaunch(_)) {
        cut += 1;
    }
    let mut executed = Vec::new();
    let mut residual = Vec::new();
    let mut total = 0u64;
    for (i, ins) in instrs.iter().enumerate() {
        if let Instr::Attn { items, flops } = ins {
            total += flops;
            if i < cut {
                executed.extend_from_slice(items);
            } else {
                residual.extend_from_slice(items);
            }
        }
    }
    Ok((cut, executed, residual, total))
}

/// Forward flops a device has left after completing `k` fused divisions.
fn remaining_flops(instrs: &[Instr], k: u32) -> u64 {
    instrs
        .iter()
        .filter_map(|ins| match ins {
            Instr::Attn { flops, .. } => Some(*flops),
            _ => None,
        })
        .skip(k as usize)
        .sum()
}

/// Deterministic greedy fallback for the residual re-shard: heaviest unit
/// first into the shard with the most remaining flop capacity.
fn waterfill(units: &[Unit], targets: &[VertexWeight]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(units[i].flops), units[i].tb.0));
    let mut cap: Vec<i128> = targets.iter().map(|t| t[0] as i128).collect();
    let mut part = vec![0u32; units.len()];
    for i in order {
        let j = (0..cap.len())
            .max_by_key(|&j| (cap[j], std::cmp::Reverse(j)))
            .expect("nonempty targets");
        part[i] = j as u32;
        cap[j] -= units[i].flops.max(1) as i128;
    }
    part
}

/// The schedule's reduce byte model: read every partial plus the resident
/// accumulator, write the accumulator.
fn reduce_bytes(layout: &BatchLayout, items: &[ReduceItem]) -> u64 {
    items
        .iter()
        .map(|it| {
            let tb = &layout.token_blocks[it.target.0 as usize];
            let unit = match it.kind {
                PayloadKind::PartialO => tb.o_bytes,
                PayloadKind::PartialDq => tb.q_bytes,
                PayloadKind::PartialDkv => tb.kv_bytes,
                _ => 0,
            };
            unit * (it.sources.len() as u64 + 2)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerConfig};
    use dcp_mask::MaskSpec;
    use dcp_types::{AttnSpec, ClusterSpec};

    fn plan_8dev() -> PlanOutput {
        let planner = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 2048,
                divisions: 4,
                ..Default::default()
            },
        );
        planner
            .plan(&[
                (32768, MaskSpec::Causal),
                (16384, MaskSpec::Causal),
                (8192, MaskSpec::Causal),
                (8192, MaskSpec::Causal),
            ])
            .unwrap()
    }

    /// The device with the most fused divisions, and that count.
    fn busiest_device(out: &PlanOutput) -> (u32, u32) {
        out.plan
            .fwd
            .devices
            .iter()
            .map(|s| {
                s.instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::Attn { .. }))
                    .count() as u32
            })
            .enumerate()
            .max_by_key(|&(i, n)| (n, std::cmp::Reverse(i)))
            .map(|(i, n)| (i as u32, n))
            .unwrap()
    }

    #[test]
    fn patch_reassigns_only_unexecuted_blocks() {
        let out = plan_8dev();
        let (dev, nd) = busiest_device(&out);
        assert!(nd >= 2, "planner produced a single-division stream");
        let k = nd / 2;
        let ev = FailureEvent {
            device: dev,
            divisions_done: k,
        };
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(&out, &ev)
            .unwrap();
        assert!(patch.stats.redone_flops < patch.stats.failed_flops);
        // Every residual computation block moved to a shard; every executed
        // one stayed.
        let d = out.plan.num_devices;
        let (cut, executed, residual, _) =
            split_frontier(&out.plan.fwd.devices[dev as usize].instrs, k).unwrap();
        assert!(cut > 0);
        for &c in &residual {
            assert!(patch.placement.comp_dev(c) >= d, "residual block on {c:?}");
        }
        for &c in &executed {
            assert_eq!(patch.placement.comp_dev(c), dev);
        }
        // Logical device count covers the shards.
        assert_eq!(
            patch.fwd.devices.len() as u32,
            d + patch.shard_hosts.len() as u32
        );
        assert_eq!(patch.shard_hosts.len(), 7);
    }

    #[test]
    fn ownership_and_production_move_to_shards() {
        let out = plan_8dev();
        let (dev, nd) = busiest_device(&out);
        assert!(nd >= 1);
        let ev = FailureEvent {
            device: dev,
            divisions_done: 1,
        };
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(&out, &ev)
            .unwrap();
        let d = out.plan.num_devices;
        for (i, &owner) in out.placement.token_to_dev.iter().enumerate() {
            let tb = TokenBlockId(i as u32);
            if owner == dev {
                assert!(patch.placement.token_dev(tb) >= d);
                assert!(patch.reowned.contains(&tb));
            } else {
                assert_eq!(patch.placement.token_dev(tb), owner);
            }
        }
        for (&tb, &shard) in &patch.producer_of {
            assert!(shard >= d);
            assert_ne!(out.placement.token_dev(tb), dev, "owner partials self-sent");
        }
        // No transfer in the patch still targets the failed owner with a
        // partial.
        for op in &patch.fwd.comms {
            for tr in &op.transfers {
                if matches!(tr.payload, Payload::PartialO(..)) {
                    assert_ne!(tr.to, dev, "partial still bound for the failed device");
                }
            }
        }
        // The timing plan stays on the physical ranks.
        assert_eq!(patch.timing.devices.len() as u32, d);
        for op in &patch.timing.comms {
            for tr in &op.transfers {
                assert!(tr.from < d && tr.to < d);
                assert_ne!(tr.from, tr.to);
            }
        }
        // Backward placement has nothing left on the failed rank.
        assert!(patch.bwd_placement.comp_to_dev.iter().all(|&x| x != dev));
        assert!(patch.bwd_placement.token_to_dev.iter().all(|&x| x != dev));
        assert_eq!(patch.bwd.num_devices, d);
    }

    #[test]
    fn failure_after_all_divisions_salvages_without_redo() {
        let out = plan_8dev();
        let (dev, nd) = busiest_device(&out);
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(
                &out,
                &FailureEvent {
                    device: dev,
                    divisions_done: nd,
                },
            )
            .unwrap();
        assert_eq!(patch.stats.redone_flops, 0);
        assert!(patch.stats.salvage_bytes > 0);
    }

    #[test]
    fn out_of_range_inputs_error() {
        let out = plan_8dev();
        let rp = RecoveryPlanner::new(RecoveryConfig::default());
        assert!(rp
            .plan_recovery(
                &out,
                &FailureEvent {
                    device: 99,
                    divisions_done: 0
                }
            )
            .is_err());
        assert!(rp
            .plan_recovery(
                &out,
                &FailureEvent {
                    device: 1,
                    divisions_done: 1000
                }
            )
            .is_err());
    }
}
