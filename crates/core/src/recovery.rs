//! Elastic mid-iteration recovery: shrink-and-reshard a live plan onto the
//! surviving devices after a device loss.
//!
//! The planner (Sec. 4) assumes the device set is fixed for the whole
//! iteration. This module relaxes that: given a [`PlanOutput`] already in
//! flight, a per-device execution frontier (how many fused attention
//! divisions each device completed) and a [`FailureEvent`] naming the lost
//! device, [`RecoveryPlanner::plan_recovery`] produces a [`RecoveryPatch`]
//! that completes the batch on the survivors **without recomputing anything
//! the failed device already finished**:
//!
//! - the failed device's *un-executed* computation blocks and its ownership
//!   duties are grouped into per-Q-block **residual units** and re-sharded
//!   over the survivors by the same hypergraph partitioner the planner uses,
//!   with each survivor's *remaining* capacity (its own unfinished divisions)
//!   as the per-part target weight (via
//!   [`dcp_hypergraph::PartitionConfig::with_part_targets`]);
//! - partial outputs the failed device already reduced are **salvaged**: its
//!   raw online-softmax accumulators ship to the replacement shards over
//!   dedicated salvage comm ops, so the shards fold the residual blocks into
//!   them exactly where the failed device left off — the merged batch output
//!   is bitwise identical to an unfaulted run (see
//!   `dcp_exec::execute_forward_recovery`);
//! - survivor instruction streams are reused **verbatim**: shards deposit
//!   the failed device's outstanding partials under the original comm ids,
//!   so nothing downstream of the failure is regenerated. Only the failed
//!   device's stream (truncated at the frontier plus salvage launches) and
//!   the shard streams are new.
//!
//! The patch carries two phase plans: `fwd`, a *functional* plan over
//! `D + S` logical devices (shard `j` is logical device `D + j`) for the
//! numerical executor, and `timing`, the same work folded back onto the `D`
//! physical ranks (shard `j` on survivor `shard_hosts[j]`) for the cluster
//! simulator — the recovered-vs-clean makespan delta is the recovery cost
//! charged into the iteration breakdown.
//!
//! Recovery is **re-entrant**: a [`RecoveryPatch`] is itself a recoverable
//! plan. If a survivor dies while a patch is in flight —
//! including one hosting spliced shards — [`RecoveryPlanner::plan_recovery_onto`]
//! composes a second patch over the first. Every logical stream the new
//! failure kills (the rank's own stream plus any recovery shards it hosted)
//! is cut at its own frontier, and each dying stream's residual units are
//! re-sharded onto a fresh block of shard streams. Per-dying-stream shard
//! separation is what keeps the merged output bitwise identical at any
//! cascade depth: two dying streams may each hold a *distinct* accumulator
//! for the same token block (the owner's reduce state vs. another stream's
//! outstanding partial), and merging them would change the reduction tree.
//!
//! Failures during the **backward** phase do not throw the phase away:
//! [`RecoveryPlanner::plan_backward_recovery`] cuts the dead stream at its
//! reduction frontier, groups the surviving partial `dQ`/`dKV` accumulators
//! into connected components (an item contributes to one dQ and one dKV
//! accumulator, so co-contributing blocks must stay colocated), salvages
//! the raw running sums and water-fills the components over the survivors.
//! Gradient accumulators are plain sums, so the salvaged state folds in
//! bitwise exactly where the dead stream stopped.
//!
//! With [`RecoveryPlanner::with_fault_spec`] the re-shard targets are
//! scaled by estimated survivor health (straggler slowdowns shrink a
//! survivor's flop target, degraded links its byte target), closing the
//! detect → estimate → place loop inside recovery itself. A healthy or
//! absent spec leaves the targets byte-identical to the fault-blind path.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use dcp_blocks::{BatchLayout, CompBlockId, TokenBlockId};
use dcp_hypergraph::{partition, HypergraphBuilder, PartitionConfig, VertexWeight};
use dcp_obs::{Event, ObsHandle, Source as ObsSource};
use dcp_sched::{
    build_plan, verify_phase, verify_plan, verify_structure, BufferStats, CommId, CommOp,
    DeviceStream, ExecutionPlan, Instr, Payload, PayloadKind, PhasePlan, Placement, ReduceItem,
    ScheduleConfig, Transfer, VerifyCtx,
};
use dcp_sim::FaultSpec;
use dcp_types::{DcpError, DcpResult};
use serde::{Deserialize, Serialize};

use crate::planner::PlanOutput;

/// Floor for fault-adjusted capacity weights, mirroring the planner's
/// `MIN_NET_WEIGHT`: even a badly degraded survivor keeps a sliver of
/// capacity so targets stay positive.
const MIN_CAP_WEIGHT: f64 = 0.05;

/// A device loss at a division boundary of the forward phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// The lost device rank.
    pub device: u32,
    /// Fused attention divisions the device completed before failing (its
    /// execution frontier). `0` means it failed before computing anything;
    /// a value equal to its division count means only its ownership duties
    /// (output reduction) remain.
    pub divisions_done: u32,
}

/// Tuning knobs for the recovery planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Imbalance tolerance for the residual re-shard (both weight
    /// dimensions). The residual subproblem is small, so this is looser
    /// than the planner's placement epsilon.
    pub epsilon: f64,
    /// Partitioner seed.
    pub seed: u64,
    /// Divisions for the re-planned backward phase (match the original
    /// [`crate::PlannerConfig::divisions`]).
    pub divisions: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            epsilon: 0.4,
            seed: 0x5eed,
            divisions: 4,
        }
    }
}

/// Accounting for one recovery patch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Forward FLOPs the failed device was assigned in the original plan.
    pub failed_flops: u64,
    /// Forward FLOPs re-assigned to shards (the failed device's un-executed
    /// blocks). Everything it finished is salvaged, not redone.
    pub redone_flops: u64,
    /// Bytes of raw accumulators evacuated from the failed device.
    pub salvage_bytes: u64,
    /// Bytes of Q/KV inputs the shards re-fetch for residual blocks.
    pub refetch_bytes: u64,
    /// Residual units (Q-block groups) re-sharded over the survivors.
    pub residual_units: usize,
    /// Whether the hypergraph re-shard fell back to greedy waterfilling.
    pub greedy_fallback: bool,
    /// Wall time spent building this patch.
    pub plan_wall_s: f64,
    /// How many failures this patch composes over: `1` for a patch against
    /// a clean plan, `2` for a patch over a depth-1 patch, and so on.
    pub cascade_depth: u32,
}

/// The shrink-and-reshard patch for one [`FailureEvent`].
///
/// `fwd` is the functional plan: `D + shard_hosts.len()` logical devices,
/// executed with `dcp_exec::execute_forward_recovery` using a salvage
/// context built from `failed` / `salvage_comms` / `producer_of` /
/// `reowned`. `timing` folds the shard work onto the `D` physical ranks for
/// the simulator. The backward phase is re-planned: `bwd_placement` assigns
/// nothing to the failed device and `bwd` is its freshly built plan.
#[derive(Debug, Clone)]
pub struct RecoveryPatch {
    /// The most recently failed device rank (this patch's event).
    pub failed: u32,
    /// Divisions the failed device completed (copied from the event).
    pub divisions_done: u32,
    /// Every physical rank lost so far, in failure order. The last entry is
    /// `failed`; earlier entries come from the prior patch when composing.
    pub failed_devices: Vec<u32>,
    /// Every dead *logical* stream: lost ranks plus any shard streams that
    /// were hosted on them when they died. Their truncated prefixes remain
    /// in `fwd` and may still read re-owned blocks locally.
    pub failed_streams: HashSet<u32>,
    /// Physical survivor hosting each shard: shard `j` (logical device
    /// `D + j`) runs on rank `shard_hosts[j]`. Cumulative across cascade
    /// depths — earlier patches' shards keep their slots.
    pub shard_hosts: Vec<u32>,
    /// Placement over the `D + S` logical devices of `fwd`.
    pub placement: Placement,
    /// Patched forward phase over `D + S` logical devices.
    pub fwd: PhasePlan,
    /// Comm ids in `fwd` carrying raw salvaged accumulators (cumulative).
    pub salvage_comms: HashSet<u32>,
    /// Shard (logical device id) that deposits each outstanding partial
    /// under the original comm ids, keyed by `(token block, original
    /// producer)` — two dead streams may owe partials for the same block.
    pub producer_of: HashMap<(TokenBlockId, u32), u32>,
    /// Token blocks whose ownership moved off a dead stream (cumulative).
    pub reowned: HashSet<TokenBlockId>,
    /// The patched forward phase folded onto the `D` physical ranks, for
    /// the cluster simulator.
    pub timing: PhasePlan,
    /// Backward placement over `D` devices with nothing on any failed rank.
    pub bwd_placement: Placement,
    /// Freshly built plan for `bwd_placement` (use its `bwd` phase).
    pub bwd: ExecutionPlan,
    /// Patch accounting (for this event; sets `cascade_depth`).
    pub stats: RecoveryStats,
}

impl RecoveryPatch {
    /// The verifier context under which `fwd` passes
    /// [`dcp_sched::verify_phase`]; mirror it into
    /// `dcp_exec::SalvageCtx` to execute the patch.
    pub fn verify_ctx(&self) -> VerifyCtx {
        VerifyCtx {
            failed: self.failed_streams.clone(),
            salvage_comms: self.salvage_comms.clone(),
            producer_of: self.producer_of.clone(),
            producer_of_dq: HashMap::new(),
            producer_of_dkv: HashMap::new(),
            reowned: self.reowned.clone(),
        }
    }
}

/// A reduction-frontier salvage patch for a failure **during the backward
/// phase** (see [`RecoveryPlanner::plan_backward_recovery`]).
///
/// `bwd` is the functional patched backward phase over `D + S` logical
/// devices, executed with `dcp_exec::execute_backward_recovery` under a
/// salvage context mirroring [`BwdRecoveryPatch::verify_ctx`]. `timing`
/// folds the shard work onto the `D` physical ranks for the simulator.
#[derive(Debug, Clone)]
pub struct BwdRecoveryPatch {
    /// The failed device rank.
    pub failed: u32,
    /// Backward divisions the failed device completed before dying.
    pub divisions_done: u32,
    /// Physical survivor hosting each shard stream.
    pub shard_hosts: Vec<u32>,
    /// Placement over the `D + S` logical devices of `bwd`.
    pub placement: Placement,
    /// Patched backward phase over `D + S` logical devices.
    pub bwd: PhasePlan,
    /// Comm ids carrying raw salvaged `dQ`/`dKV` running sums.
    pub salvage_comms: HashSet<u32>,
    /// Shard that deposits each outstanding `dQ` partial, keyed by
    /// `(token block, original producer)`.
    pub producer_of_dq: HashMap<(TokenBlockId, u32), u32>,
    /// Shard that deposits each outstanding `dKV` partial.
    pub producer_of_dkv: HashMap<(TokenBlockId, u32), u32>,
    /// Token blocks whose gradient ownership moved to a shard.
    pub reowned: HashSet<TokenBlockId>,
    /// The patched backward phase folded onto the `D` physical ranks.
    pub timing: PhasePlan,
    /// Patch accounting.
    pub stats: RecoveryStats,
}

impl BwdRecoveryPatch {
    /// The verifier context under which `bwd` passes
    /// [`dcp_sched::verify_phase`].
    pub fn verify_ctx(&self) -> VerifyCtx {
        VerifyCtx {
            failed: HashSet::from([self.failed]),
            salvage_comms: self.salvage_comms.clone(),
            producer_of: HashMap::new(),
            producer_of_dq: self.producer_of_dq.clone(),
            producer_of_dkv: self.producer_of_dkv.clone(),
            reowned: self.reowned.clone(),
        }
    }
}

/// One residual unit: a Q block plus the failed device's un-executed
/// computation blocks targeting it, moved to a shard as a whole so the
/// salvaged accumulator, the residual folds and the ownership duties of the
/// block stay colocated.
#[derive(Debug)]
struct Unit {
    tb: TokenBlockId,
    items: Vec<CompBlockId>,
    flops: u64,
    owned: bool,
}

/// Builds [`RecoveryPatch`]es for failures against live [`PlanOutput`]s.
#[derive(Debug, Clone)]
pub struct RecoveryPlanner {
    cfg: RecoveryConfig,
    obs: ObsHandle,
    fault_spec: Option<FaultSpec>,
}

/// Per-dying-stream state derived from the execution frontier.
struct DyingView {
    /// The dying logical stream id.
    l: u32,
    /// Fused divisions this stream completed.
    k: u32,
    /// Instruction index of the frontier cut.
    cut: usize,
    /// Token blocks with a live output accumulator at the cut: Q blocks of
    /// executed items plus blocks installed by salvage waits in the prefix.
    executed_acc: HashSet<TokenBlockId>,
    /// Residual (un-executed) computation blocks, in stream order.
    residual: Vec<CompBlockId>,
    /// Comm ids waited *within* the kept prefix (these waits replay, so
    /// their incoming transfers must not be retargeted).
    kept_waits: HashSet<u32>,
    /// Comm ids waited in the dropped suffix, in stream order.
    tail_waits: Vec<u32>,
    /// Every reduce item of the dying stream, flattened in stream order.
    reduce_items: Vec<ReduceItem>,
    /// Suffix comm launches carrying partials this stream still owed.
    residual_out_cids: Vec<u32>,
    /// `(token block, original producer)` of each owed partial.
    outstanding: Vec<(TokenBlockId, u32)>,
}

impl RecoveryPlanner {
    /// A recovery planner with the given configuration and no observability.
    pub fn new(cfg: RecoveryConfig) -> Self {
        RecoveryPlanner {
            cfg,
            obs: ObsHandle::noop(),
            fault_spec: None,
        }
    }

    /// Attaches an observability sink: `plan_recovery` emits a
    /// `device_lost` instant, a `recovery_plan` span (whose value is the
    /// cascade depth) and salvage/redo counters under
    /// [`dcp_obs::Source::Planner`].
    #[must_use]
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a fault estimate (e.g. from
    /// [`crate::estimate_fault_spec`]): re-shard targets are scaled by each
    /// survivor's estimated health — straggler slowdowns shrink its flop
    /// target, degraded or flapping incident links its byte target. A
    /// healthy or empty spec leaves every target byte-identical to the
    /// fault-blind path.
    #[must_use]
    pub fn with_fault_spec(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = Some(spec);
        self
    }

    /// Per-physical-device capacity weights `[compute, bytes]` derived from
    /// the fault spec, or `None` when no spec is set or it changes nothing
    /// (so the healthy path stays byte-identical). Mirrors the planner's
    /// `fault_weights`.
    fn fault_caps(&self, n: u32) -> Option<Vec<[f64; 2]>> {
        let spec = self.fault_spec.as_ref()?;
        let n = n as usize;
        let slow = spec.slowdowns(n);
        let mut net = vec![1.0f64; n];
        for (src, dst, factor) in spec.link_factors() {
            for d in [src, dst] {
                if (d as usize) < n {
                    net[d as usize] = net[d as usize].min(factor.max(MIN_CAP_WEIGHT));
                }
            }
        }
        for (src, dst, _period, duty, factor) in spec.flapping_links() {
            let mean = duty * factor + (1.0 - duty);
            for d in [src, dst] {
                if (d as usize) < n {
                    net[d as usize] = net[d as usize].min(mean.max(MIN_CAP_WEIGHT));
                }
            }
        }
        let w: Vec<[f64; 2]> = (0..n)
            .map(|d| [(1.0 / slow[d].max(1.0)).max(MIN_CAP_WEIGHT), net[d]])
            .collect();
        if w.iter().all(|x| x[0] >= 1.0 - 1e-12 && x[1] >= 1.0 - 1e-12) {
            return None;
        }
        Some(w)
    }

    /// Produces the shrink-and-reshard patch for `ev` against a clean
    /// `out` (cascade depth 1).
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] if the failed device is out of
    /// range or there are no survivors;
    /// [`DcpError::InvalidFailureEvent`] (carrying the device and the
    /// offending frontier) if `divisions_done` exceeds the device's
    /// division count; [`DcpError::InvalidPlan`] if the plan's streams are
    /// internally inconsistent.
    pub fn plan_recovery(&self, out: &PlanOutput, ev: &FailureEvent) -> DcpResult<RecoveryPatch> {
        self.plan_patch(out, None, ev)
    }

    /// Composes a new patch **over a prior one**: `ev` kills a survivor of
    /// `prior` (possibly one hosting spliced recovery shards) and the
    /// result completes the batch on the remaining survivors, bitwise
    /// identical to the clean run.
    ///
    /// `ev.divisions_done` counts the fused divisions the dying rank
    /// completed across *all* the logical streams it was running, in splice
    /// order: its own truncated-or-original stream first, then each hosted
    /// shard stream in ascending logical id.
    ///
    /// # Errors
    ///
    /// As [`RecoveryPlanner::plan_recovery`]; additionally
    /// [`DcpError::InvalidArgument`] if `ev.device` already failed.
    pub fn plan_recovery_onto(
        &self,
        out: &PlanOutput,
        prior: &RecoveryPatch,
        ev: &FailureEvent,
    ) -> DcpResult<RecoveryPatch> {
        self.plan_patch(out, Some(prior), ev)
    }

    /// The shared re-entrant core behind [`RecoveryPlanner::plan_recovery`]
    /// and [`RecoveryPlanner::plan_recovery_onto`].
    fn plan_patch(
        &self,
        out: &PlanOutput,
        prior: Option<&RecoveryPatch>,
        ev: &FailureEvent,
    ) -> DcpResult<RecoveryPatch> {
        let t0 = Instant::now();
        let d_total = out.plan.num_devices;
        let failed = ev.device;
        let layout = &out.layout;
        // Views of the plan being patched: the clean plan at depth 1, the
        // prior patch's rendering when composing.
        let base_fwd: &PhasePlan = prior.map_or(&out.plan.fwd, |p| &p.fwd);
        let base_placement: &Placement = prior.map_or(&out.placement, |p| &p.placement);
        let base_hosts: &[u32] = prior.map_or(&[], |p| &p.shard_hosts);
        let prior_failed_devices: Vec<u32> =
            prior.map(|p| p.failed_devices.clone()).unwrap_or_default();
        let prior_failed_streams: HashSet<u32> =
            prior.map(|p| p.failed_streams.clone()).unwrap_or_default();
        let mut salvage_comms: HashSet<u32> =
            prior.map(|p| p.salvage_comms.clone()).unwrap_or_default();
        let mut producer_of: HashMap<(TokenBlockId, u32), u32> =
            prior.map(|p| p.producer_of.clone()).unwrap_or_default();
        let mut reowned: HashSet<TokenBlockId> =
            prior.map(|p| p.reowned.clone()).unwrap_or_default();
        let (bwd_token0, bwd_comp0) = match prior {
            Some(p) => (
                p.bwd_placement.token_to_dev.clone(),
                p.bwd_placement.comp_to_dev.clone(),
            ),
            None => (
                out.placement.token_to_dev.clone(),
                out.placement.comp_to_dev.clone(),
            ),
        };
        let cascade_depth = prior.map_or(0, |p| p.stats.cascade_depth) + 1;

        if failed >= d_total {
            return Err(DcpError::invalid_argument(format!(
                "failed device {failed} out of range for {d_total} devices"
            )));
        }
        if prior_failed_devices.contains(&failed) {
            return Err(DcpError::invalid_argument(format!(
                "device {failed} already failed in the prior patch"
            )));
        }
        let survivors: Vec<u32> = (0..d_total)
            .filter(|x| *x != failed && !prior_failed_devices.contains(x))
            .collect();
        if survivors.is_empty() {
            return Err(DcpError::invalid_argument(
                "cannot recover: no surviving devices",
            ));
        }
        let s_count = survivors.len();
        let l_total = base_fwd.devices.len() as u32;
        debug_assert_eq!(l_total, d_total + base_hosts.len() as u32);

        // --- 1. Dying logical streams, in splice order. ------------------
        // The rank's own stream first, then any live shard streams it was
        // hosting (ascending logical id). `ev.divisions_done` distributes
        // across them in that order.
        let dying: Vec<u32> = std::iter::once(failed)
            .chain((d_total..l_total).filter(|&l| {
                base_hosts[(l - d_total) as usize] == failed && !prior_failed_streams.contains(&l)
            }))
            .collect();
        let dying_set: HashSet<u32> = dying.iter().copied().collect();

        // --- 2. Frontier split per dying stream. -------------------------
        let mut budget = ev.divisions_done;
        let mut views: Vec<DyingView> = Vec::new();
        let mut failed_flops = 0u64;
        for &l in &dying {
            let instrs = &base_fwd.devices[l as usize].instrs;
            let na = instrs
                .iter()
                .filter(|i| matches!(i, Instr::Attn { .. } | Instr::AttnBwd { .. }))
                .count() as u32;
            let k = budget.min(na);
            budget -= k;
            let (cut, executed, residual, total) = split_frontier(instrs, k, failed)?;
            failed_flops += total;
            let mut executed_acc: HashSet<TokenBlockId> = executed
                .iter()
                .map(|&c| layout.comp_blocks[c.0 as usize].q_block)
                .collect();
            let mut kept_waits: HashSet<u32> = HashSet::new();
            for ins in &instrs[..cut] {
                if let Instr::CommWait(cid) = ins {
                    kept_waits.insert(cid.0);
                    if salvage_comms.contains(&cid.0) {
                        // A replayed salvage wait re-installs an inherited
                        // accumulator — live state this stream can re-ship.
                        for tr in &base_fwd.comms[cid.0 as usize].transfers {
                            if tr.to == l {
                                if let Payload::PartialO(tb, _) = tr.payload {
                                    executed_acc.insert(tb);
                                }
                            }
                        }
                    }
                }
            }
            let tail_waits: Vec<u32> = instrs[cut..]
                .iter()
                .filter_map(|ins| match ins {
                    Instr::CommWait(cid) if !salvage_comms.contains(&cid.0) => Some(cid.0),
                    _ => None,
                })
                .collect();
            let reduce_items: Vec<ReduceItem> = instrs
                .iter()
                .flat_map(|ins| match ins {
                    Instr::Reduce { items, .. } => items.clone(),
                    _ => Vec::new(),
                })
                .collect();
            views.push(DyingView {
                l,
                k,
                cut,
                executed_acc,
                residual,
                kept_waits,
                tail_waits,
                reduce_items,
                residual_out_cids: Vec::new(),
                outstanding: Vec::new(),
            });
        }
        if budget > 0 {
            return Err(DcpError::invalid_failure_event(failed, ev.divisions_done));
        }
        let redone_flops: u64 = views
            .iter()
            .flat_map(|v| v.residual.iter())
            .map(|&c| layout.comp_blocks[c.0 as usize].flops)
            .sum();

        // --- 3. Residual units per dying stream. -------------------------
        // Units from different dying streams must NOT merge: two dying
        // streams can each hold a distinct accumulator for the same token
        // block (owner reduce state vs. an inherited outstanding partial),
        // and merging them would change the reduction tree — breaking
        // bitwise equality with the clean run.
        let view_of_stream: HashMap<u32, usize> =
            dying.iter().enumerate().map(|(v, &l)| (l, v)).collect();
        let mut view_units: Vec<Vec<Unit>> = Vec::with_capacity(views.len());
        let mut unit_idx: HashMap<(u32, TokenBlockId), usize> = HashMap::new();
        for view in &views {
            let mut units: Vec<Unit> = Vec::new();
            for &c in &view.residual {
                let cb = layout.comp_blocks[c.0 as usize];
                let idx = *unit_idx.entry((view.l, cb.q_block)).or_insert_with(|| {
                    units.push(Unit {
                        tb: cb.q_block,
                        items: Vec::new(),
                        flops: 0,
                        owned: false,
                    });
                    units.len() - 1
                });
                units[idx].items.push(c);
                units[idx].flops += cb.flops;
            }
            view_units.push(units);
        }
        for (i, &owner) in base_placement.token_to_dev.iter().enumerate() {
            if let Some(&v) = view_of_stream.get(&owner) {
                let tb = TokenBlockId(i as u32);
                let units = &mut view_units[v];
                let idx = *unit_idx.entry((owner, tb)).or_insert_with(|| {
                    units.push(Unit {
                        tb,
                        items: Vec::new(),
                        flops: 0,
                        owned: false,
                    });
                    units.len() - 1
                });
                units[idx].owned = true;
            }
        }
        // Outstanding out-comms: partials launched after a dying stream's
        // frontier. A zero-item unit keeps an executed-but-unsent block's
        // salvaged accumulator attached to a shard that re-deposits it.
        for (v, view) in views.iter_mut().enumerate() {
            let instrs = &base_fwd.devices[view.l as usize].instrs;
            for ins in &instrs[view.cut..] {
                if let Instr::CommLaunch(cid) = ins {
                    let mut is_out = false;
                    for tr in &base_fwd.comms[cid.0 as usize].transfers {
                        if let Payload::PartialO(tb, p) = tr.payload {
                            let mine = p == view.l || producer_of.get(&(tb, p)) == Some(&view.l);
                            if mine {
                                is_out = true;
                                view.outstanding.push((tb, p));
                                let units = &mut view_units[v];
                                unit_idx.entry((view.l, tb)).or_insert_with(|| {
                                    units.push(Unit {
                                        tb,
                                        items: Vec::new(),
                                        flops: 0,
                                        owned: false,
                                    });
                                    units.len() - 1
                                });
                            }
                        }
                    }
                    if is_out {
                        view.residual_out_cids.push(cid.0);
                    }
                }
            }
        }

        // --- 4. Re-shard each dying stream onto survivor capacity. -------
        // Each dying stream with units gets its own block of fresh shard
        // streams (one per survivor). Targets water-fill the shortfall
        // between the post-recovery ideal and what each survivor already
        // has queued — scaled by estimated survivor health when a fault
        // spec is attached.
        let caps = self.fault_caps(d_total);
        let k_own = views[0].k;
        let mut queued: Vec<u64> = survivors
            .iter()
            .map(|&s| {
                let mut q = remaining_flops(&base_fwd.devices[s as usize].instrs, k_own);
                for l in d_total..l_total {
                    if base_hosts[(l - d_total) as usize] == s && !prior_failed_streams.contains(&l)
                    {
                        q += remaining_flops(&base_fwd.devices[l as usize].instrs, 0);
                    }
                }
                q
            })
            .collect();
        let unit_bytes = |u: &Unit| {
            let tb = &layout.token_blocks[u.tb.0 as usize];
            tb.o_bytes + if u.owned { tb.total_bytes() } else { 0 }
        };
        let mut shard_hosts: Vec<u32> = base_hosts.to_vec();
        let mut view_base: Vec<Option<u32>> = vec![None; views.len()];
        let mut part_of: Vec<Vec<u32>> = Vec::with_capacity(views.len());
        let mut greedy_fallback = false;
        for units in &view_units {
            if units.is_empty() {
                part_of.push(Vec::new());
                continue;
            }
            let v = part_of.len();
            view_base[v] = Some(d_total + shard_hosts.len() as u32);
            shard_hosts.extend(survivors.iter().copied());
            let residual_total: u64 = units.iter().map(|u| u.flops).sum();
            let bytes_total: u64 = units.iter().map(unit_bytes).sum();
            let targets = recovery_targets(
                &queued,
                &survivors,
                residual_total,
                bytes_total,
                caps.as_deref(),
            );
            let assignment: Vec<u32> = if s_count == 1 {
                vec![0; units.len()]
            } else {
                let mut b = HypergraphBuilder::new(units.len());
                for (i, u) in units.iter().enumerate() {
                    b.set_vertex_weight(i, [u.flops.max(1), unit_bytes(u)]);
                }
                // Units sharing a KV input want to land on the same shard
                // so the input is fetched once.
                let mut consumers: BTreeMap<TokenBlockId, Vec<u32>> = BTreeMap::new();
                for (i, u) in units.iter().enumerate() {
                    for &c in &u.items {
                        let kb = layout.comp_blocks[c.0 as usize].kv_block;
                        consumers.entry(kb).or_default().push(i as u32);
                    }
                }
                for (kb, pins) in consumers {
                    if pins.len() > 1 {
                        b.add_edge(layout.token_blocks[kb.0 as usize].kv_bytes, &pins);
                    }
                }
                let hg = b.build()?;
                let mut pc = PartitionConfig::new(s_count as u32)
                    .with_epsilon(self.cfg.epsilon)
                    .with_part_targets(targets.clone());
                pc.eps[1] = self.cfg.epsilon;
                pc.seed = self.cfg.seed;
                match partition(&hg, &pc) {
                    Ok(p) if p.balanced => p.assignment,
                    _ => {
                        greedy_fallback = true;
                        waterfill(units, &targets)
                    }
                }
            };
            for (i, u) in units.iter().enumerate() {
                queued[assignment[i] as usize] += u.flops;
            }
            part_of.push(assignment);
        }

        // --- 5. Patched placement over the grown logical device set. -----
        let mut token_to_dev = base_placement.token_to_dev.clone();
        let mut comp_to_dev = base_placement.comp_to_dev.clone();
        let mut unit_dev: HashMap<(u32, TokenBlockId), u32> = HashMap::new();
        for (v, units) in view_units.iter().enumerate() {
            let Some(base) = view_base[v] else { continue };
            for (i, u) in units.iter().enumerate() {
                let dev = base + part_of[v][i];
                unit_dev.insert((views[v].l, u.tb), dev);
                if u.owned {
                    token_to_dev[u.tb.0 as usize] = dev;
                    reowned.insert(u.tb);
                }
                for &c in &u.items {
                    comp_to_dev[c.0 as usize] = dev;
                }
            }
        }
        let placement = Placement {
            num_devices: d_total + shard_hosts.len() as u32,
            token_to_dev,
            comp_to_dev,
        };

        // --- 6. Patched comm ops. ----------------------------------------
        let mut comms: Vec<CommOp> = base_fwd.comms.clone();
        // Partials bound for a dying stream move with the block — unless
        // the receiving wait sits in the kept prefix, which replays it.
        // Non-salvage partials target the block's owner, so they follow
        // ownership; a prior patch's salvage evacuation follows the unit
        // that was going to consume it.
        for (cid, op) in comms.iter_mut().enumerate() {
            for tr in &mut op.transfers {
                if !dying_set.contains(&tr.to) {
                    continue;
                }
                if let Payload::PartialO(tb, _) = tr.payload {
                    let v = view_of_stream[&tr.to];
                    if views[v].kept_waits.contains(&(cid as u32)) {
                        continue;
                    }
                    if salvage_comms.contains(&(cid as u32)) {
                        tr.to = *unit_dev.get(&(tr.to, tb)).ok_or_else(|| {
                            DcpError::invalid_plan(format!(
                                "inherited salvage for {tb:?} targets dying stream {} \
                                 but the block has no residual unit",
                                tr.to
                            ))
                        })?;
                    } else {
                        let dev = placement.token_dev(tb);
                        debug_assert!(dev >= d_total, "partial retarget must land on a shard");
                        tr.to = dev;
                    }
                }
            }
        }
        // Outstanding partials now deposit from each unit's new shard.
        for (v, view) in views.iter().enumerate() {
            let _ = v;
            for &(tb, p) in &view.outstanding {
                producer_of.insert((tb, p), unit_dev[&(view.l, tb)]);
            }
        }
        // Salvage ops: live accumulators a dying stream built (or had
        // re-installed) before its frontier that a shard still needs —
        // residual folds, outstanding partials, or final assembly of a
        // re-owned block. One op per (dying stream, shard) pair.
        let mut salvage_bytes = 0u64;
        let mut view_salvage_cid: Vec<Vec<Option<CommId>>> = Vec::with_capacity(views.len());
        for (v, view) in views.iter().enumerate() {
            let mut cids: Vec<Option<CommId>> = vec![None; s_count];
            if let Some(base) = view_base[v] {
                #[allow(clippy::needless_range_loop)]
                for j in 0..s_count {
                    let transfers: Vec<Transfer> = view_units[v]
                        .iter()
                        .enumerate()
                        .filter(|&(i, u)| {
                            part_of[v][i] == j as u32 && view.executed_acc.contains(&u.tb)
                        })
                        .map(|(_, u)| {
                            let bytes = layout.token_blocks[u.tb.0 as usize].o_bytes;
                            salvage_bytes += bytes;
                            Transfer {
                                from: view.l,
                                to: base + j as u32,
                                payload: Payload::PartialO(u.tb, view.l),
                                bytes,
                            }
                        })
                        .collect();
                    if !transfers.is_empty() {
                        let cid = CommId(comms.len() as u32);
                        cids[j] = Some(cid);
                        salvage_comms.insert(cid.0);
                        comms.push(CommOp { transfers });
                    }
                }
            }
            view_salvage_cid.push(cids);
        }
        // Input re-fetch ops: Q/KV slices a shard's residual blocks read
        // that it does not own under the patched placement. `from` is the
        // original owner — the device physically holding the data (dead
        // devices keep serving resident blocks while draining, which the
        // verifier admits via the re-owned set).
        let mut refetch_bytes = 0u64;
        let mut view_fetch_cid: Vec<Vec<Option<CommId>>> = Vec::with_capacity(views.len());
        for (v, view) in views.iter().enumerate() {
            let _ = view;
            let mut cids: Vec<Option<CommId>> = vec![None; s_count];
            if let Some(base) = view_base[v] {
                #[allow(clippy::needless_range_loop)]
                for j in 0..s_count {
                    let dev = base + j as u32;
                    let mut seen: HashSet<Payload> = HashSet::new();
                    let mut transfers: Vec<Transfer> = Vec::new();
                    for (i, u) in view_units[v].iter().enumerate() {
                        if part_of[v][i] != j as u32 {
                            continue;
                        }
                        for &c in &u.items {
                            let cb = layout.comp_blocks[c.0 as usize];
                            let qb = &layout.token_blocks[cb.q_block.0 as usize];
                            let kb = &layout.token_blocks[cb.kv_block.0 as usize];
                            for (payload, bytes) in [
                                (Payload::Q(cb.q_block), qb.q_bytes),
                                (Payload::Kv(cb.kv_block), kb.kv_bytes),
                            ] {
                                let tb = payload.token_block();
                                if placement.token_dev(tb) == dev || !seen.insert(payload) {
                                    continue;
                                }
                                refetch_bytes += bytes;
                                transfers.push(Transfer {
                                    from: out.placement.token_dev(tb),
                                    to: dev,
                                    payload,
                                    bytes,
                                });
                            }
                        }
                    }
                    if !transfers.is_empty() {
                        let cid = CommId(comms.len() as u32);
                        cids[j] = Some(cid);
                        comms.push(CommOp { transfers });
                    }
                }
            }
            view_fetch_cid.push(cids);
        }

        // --- 7. Streams: truncate the dying streams, emit shards. --------
        let failed_devices: Vec<u32> = prior_failed_devices
            .iter()
            .copied()
            .chain(std::iter::once(failed))
            .collect();
        let mut failed_streams = prior_failed_streams;
        failed_streams.extend(dying.iter().copied());

        let mut devices: Vec<DeviceStream> = base_fwd.devices.clone();
        for (v, view) in views.iter().enumerate() {
            let orig = &base_fwd.devices[view.l as usize];
            let mut truncated: Vec<Instr> = orig.instrs[..view.cut].to_vec();
            for cid in view_salvage_cid[v].iter().flatten() {
                truncated.push(Instr::CommLaunch(*cid));
            }
            devices[view.l as usize] = DeviceStream {
                device: view.l,
                instrs: truncated,
                buffer: orig.buffer,
            };
        }
        // Old salvage evacuations whose receiving wait was truncated now
        // land on new shards; those shards must wait on them before any
        // residual fold touches the installed accumulator.
        let base_ncomms = base_fwd.comms.len();
        for (v, view) in views.iter().enumerate() {
            let Some(base) = view_base[v] else { continue };
            for j in 0..s_count {
                let dev = base + j as u32;
                let mut instrs: Vec<Instr> = Vec::new();
                if let Some(cid) = view_fetch_cid[v][j] {
                    instrs.push(Instr::CommLaunch(cid));
                }
                for cid in 0..base_ncomms as u32 {
                    if salvage_comms.contains(&cid)
                        && comms[cid as usize].transfers.iter().any(|tr| tr.to == dev)
                    {
                        instrs.push(Instr::CommWait(CommId(cid)));
                    }
                }
                if let Some(cid) = view_salvage_cid[v][j] {
                    instrs.push(Instr::CommWait(cid));
                }
                if let Some(cid) = view_fetch_cid[v][j] {
                    instrs.push(Instr::CommWait(cid));
                }
                let items: Vec<CompBlockId> = view
                    .residual
                    .iter()
                    .copied()
                    .filter(|&c| placement.comp_dev(c) == dev)
                    .collect();
                if !items.is_empty() {
                    let flops = items
                        .iter()
                        .map(|&c| layout.comp_blocks[c.0 as usize].flops)
                        .sum();
                    instrs.push(Instr::Attn { items, flops });
                }
                for &cid in &view.residual_out_cids {
                    let mine = comms[cid as usize].transfers.iter().any(|tr| {
                        matches!(tr.payload, Payload::PartialO(tb, p)
                            if producer_of.get(&(tb, p)) == Some(&dev))
                    });
                    if mine {
                        instrs.push(Instr::CommLaunch(CommId(cid)));
                    }
                }
                for &cid in &view.tail_waits {
                    if comms[cid as usize].transfers.iter().any(|tr| tr.to == dev) {
                        instrs.push(Instr::CommWait(CommId(cid)));
                    }
                }
                let ritems: Vec<ReduceItem> = view
                    .reduce_items
                    .iter()
                    .filter(|it| placement.token_dev(it.target) == dev)
                    .cloned()
                    .collect();
                if !ritems.is_empty() {
                    let bytes = reduce_bytes(layout, &ritems);
                    instrs.push(Instr::Reduce {
                        items: ritems,
                        bytes,
                    });
                }
                devices.push(DeviceStream {
                    device: dev,
                    instrs,
                    buffer: BufferStats::default(),
                });
            }
        }
        let patch_fwd = PhasePlan {
            comms: comms.clone(),
            devices,
        };

        // --- 8. Timing plan: fold shards onto their physical hosts. ------
        let host = |x: u32| {
            if x >= d_total {
                shard_hosts[(x - d_total) as usize]
            } else {
                x
            }
        };
        let tcomms: Vec<CommOp> = comms
            .iter()
            .enumerate()
            .map(|(cid, op)| CommOp {
                transfers: op
                    .transfers
                    .iter()
                    .map(|tr| {
                        // Outstanding partials are now produced by a shard,
                        // so the flow must originate from the shard's host
                        // for the spliced launch to start it. Salvage ops
                        // are genuine dead→shard evacuations and keep
                        // their source.
                        let from = match tr.payload {
                            Payload::PartialO(tb, p)
                                if failed_streams.contains(&tr.from)
                                    && !salvage_comms.contains(&(cid as u32)) =>
                            {
                                producer_of.get(&(tb, p)).copied().unwrap_or(tr.from)
                            }
                            _ => tr.from,
                        };
                        Transfer { from, ..*tr }
                    })
                    .filter(|tr| host(tr.from) != host(tr.to))
                    .map(|tr| Transfer {
                        from: host(tr.from),
                        to: host(tr.to),
                        ..tr
                    })
                    .collect(),
            })
            .collect();
        let l_new = d_total + shard_hosts.len() as u32;
        let mut tdevices: Vec<DeviceStream> = Vec::with_capacity(d_total as usize);
        for r in 0..d_total {
            if failed_devices.contains(&r) {
                // A dead rank replays the truncated prefixes of every
                // logical stream it was running, in splice order.
                let mut instrs: Vec<Instr> = patch_fwd.devices[r as usize].instrs.clone();
                for l in d_total..l_new {
                    if shard_hosts[(l - d_total) as usize] == r && failed_streams.contains(&l) {
                        instrs.extend(patch_fwd.devices[l as usize].instrs.iter().cloned());
                    }
                }
                tdevices.push(DeviceStream {
                    device: r,
                    instrs,
                    buffer: base_fwd.devices[r as usize].buffer,
                });
                continue;
            }
            let orig = &base_fwd.devices[r as usize];
            let mut instrs = orig.instrs.clone();
            // Shard work slots in after the host's own compute, before its
            // trailing output waits and reduce. Every live shard hosted on
            // this rank splices here, in ascending logical id.
            let mut tail = instrs.len();
            while tail > 0 && matches!(instrs[tail - 1], Instr::CommWait(_) | Instr::Reduce { .. })
            {
                tail -= 1;
            }
            let mut spliced: Vec<Instr> = Vec::new();
            for l in d_total..l_new {
                if shard_hosts[(l - d_total) as usize] == r && !failed_streams.contains(&l) {
                    spliced.extend(patch_fwd.devices[l as usize].instrs.iter().cloned());
                }
            }
            instrs.splice(tail..tail, spliced);
            tdevices.push(DeviceStream {
                device: r,
                instrs,
                buffer: orig.buffer,
            });
        }
        let timing = PhasePlan {
            comms: tcomms,
            devices: tdevices,
        };

        // --- 9. Backward: re-plan from scratch on the survivors. ---------
        let mut bwd_token = bwd_token0;
        let mut bwd_comp = bwd_comp0;
        for (v, units) in view_units.iter().enumerate() {
            for (i, u) in units.iter().enumerate() {
                let s = survivors[part_of[v][i] as usize];
                if u.owned {
                    bwd_token[u.tb.0 as usize] = s;
                }
                for &c in &u.items {
                    bwd_comp[c.0 as usize] = s;
                }
            }
        }
        let mut load = vec![0u64; d_total as usize];
        for (c, &dev) in bwd_comp.iter().enumerate() {
            if dev != failed {
                load[dev as usize] += layout.comp_blocks[c].flops;
            }
        }
        // The dead rank's *executed* blocks still need a backward home;
        // waterfill them over the survivors by total flop load (effective
        // time when a fault spec scales survivor speed).
        for (c, dev) in bwd_comp.iter_mut().enumerate() {
            if *dev == failed {
                let s = pick_least_loaded(&survivors, &load, caps.as_deref());
                *dev = s;
                load[s as usize] += layout.comp_blocks[c].flops;
            }
        }
        // Defensive: any token still owned by the dead rank (cannot happen
        // when every owned block formed a unit, but cheap to guarantee).
        for t in bwd_token.iter_mut() {
            if *t == failed {
                *t = pick_least_loaded(&survivors, &load, caps.as_deref());
            }
        }
        let bwd_placement = Placement {
            num_devices: d_total,
            token_to_dev: bwd_token,
            comp_to_dev: bwd_comp,
        };
        let bwd = build_plan(
            layout,
            &bwd_placement,
            &ScheduleConfig {
                divisions: self.cfg.divisions,
                ..Default::default()
            },
        )?;

        // Every rendered patch stream must satisfy the legal-stream contract
        // before it ships: the functional forward phase under the salvage
        // rules, the re-planned backward phase as an ordinary plan, and the
        // host-folded timing phase structurally (host folding legitimately
        // leaves some waits with no incoming transfers, so the full symbolic
        // check does not apply).
        let verify_ctx = VerifyCtx {
            failed: failed_streams.clone(),
            salvage_comms: salvage_comms.clone(),
            producer_of: producer_of.clone(),
            producer_of_dq: HashMap::new(),
            producer_of_dkv: HashMap::new(),
            reowned: reowned.clone(),
        };
        verify_phase(layout, &placement, &patch_fwd, false, &verify_ctx)
            .map_err(|d| DcpError::invalid_plan(format!("recovery fwd patch: {d}")))?;
        verify_plan(layout, &bwd_placement, &bwd)
            .map_err(|d| DcpError::invalid_plan(format!("recovery bwd plan: {d}")))?;
        verify_structure(&timing)
            .map_err(|d| DcpError::invalid_plan(format!("recovery timing plan: {d}")))?;

        let stats = RecoveryStats {
            failed_flops,
            redone_flops,
            salvage_bytes,
            refetch_bytes,
            residual_units: view_units.iter().map(Vec::len).sum(),
            greedy_fallback,
            plan_wall_s: t0.elapsed().as_secs_f64(),
            cascade_depth,
        };
        self.emit_obs(failed, ev.divisions_done, &stats);
        Ok(RecoveryPatch {
            failed,
            divisions_done: ev.divisions_done,
            failed_devices,
            failed_streams,
            shard_hosts,
            placement,
            fwd: patch_fwd,
            salvage_comms,
            producer_of,
            reowned,
            timing,
            bwd_placement,
            bwd,
            stats,
        })
    }

    /// Produces a reduction-frontier salvage patch for a failure **during
    /// the backward phase**.
    ///
    /// Instead of re-planning the whole backward from scratch, the dead
    /// stream is cut at its `ev.divisions_done`-th fused `AttnBwd` division
    /// and its partial `dQ`/`dKV` running sums are salvaged. Accumulators
    /// are grouped into connected components of the bipartite contribution
    /// graph (each residual item links its Q block's `dQ` accumulator to
    /// its KV block's `dKV` accumulator; a block the dead rank owned links
    /// its own pair), because a component's accumulators must stay
    /// colocated for residual folds to extend the salvaged sums in clean
    /// stream order. Components water-fill over the survivors by remaining
    /// backward capacity (fault-adjusted under
    /// [`RecoveryPlanner::with_fault_spec`]).
    ///
    /// # Errors
    ///
    /// Returns [`DcpError::InvalidArgument`] if the failed device is out of
    /// range or there are no survivors;
    /// [`DcpError::InvalidFailureEvent`] if `divisions_done` exceeds the
    /// stream's backward division count; [`DcpError::InvalidPlan`] if a
    /// rendering fails verification.
    pub fn plan_backward_recovery(
        &self,
        out: &PlanOutput,
        ev: &FailureEvent,
    ) -> DcpResult<BwdRecoveryPatch> {
        let t0 = Instant::now();
        let d_total = out.plan.num_devices;
        let failed = ev.device;
        let layout = &out.layout;
        if failed >= d_total {
            return Err(DcpError::invalid_argument(format!(
                "failed device {failed} out of range for {d_total} devices"
            )));
        }
        if d_total < 2 {
            return Err(DcpError::invalid_argument(
                "cannot recover: no surviving devices",
            ));
        }
        let survivors: Vec<u32> = (0..d_total).filter(|&x| x != failed).collect();
        let s_count = survivors.len();
        let bwd = &out.plan.bwd;
        let bstream = &bwd.devices[failed as usize];

        // --- 1. Reduction frontier: split the dead backward stream. ------
        let (cut, executed, residual, failed_flops) =
            split_frontier(&bstream.instrs, ev.divisions_done, failed)?;
        let redone_flops: u64 = residual
            .iter()
            .map(|&c| layout.comp_blocks[c.0 as usize].flops)
            .sum();
        let executed_dq: HashSet<TokenBlockId> = executed
            .iter()
            .map(|&c| layout.comp_blocks[c.0 as usize].q_block)
            .collect();
        let executed_dkv: HashSet<TokenBlockId> = executed
            .iter()
            .map(|&c| layout.comp_blocks[c.0 as usize].kv_block)
            .collect();
        let kept_waits: HashSet<u32> = bstream.instrs[..cut]
            .iter()
            .filter_map(|ins| match ins {
                Instr::CommWait(cid) => Some(cid.0),
                _ => None,
            })
            .collect();

        // --- 2. Components of the accumulator contribution graph. --------
        // Node = one surviving accumulator (dQ or dKV of a token block).
        let mut nodes: Vec<(bool, TokenBlockId)> = Vec::new();
        let mut node_id: HashMap<(bool, TokenBlockId), usize> = HashMap::new();
        let mut parent: Vec<usize> = Vec::new();
        let mut node = |is_dkv: bool, tb: TokenBlockId, parent: &mut Vec<usize>| -> usize {
            *node_id.entry((is_dkv, tb)).or_insert_with(|| {
                nodes.push((is_dkv, tb));
                parent.push(parent.len());
                parent.len() - 1
            })
        };
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let union = |a: usize, b: usize, parent: &mut Vec<usize>| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[rb.max(ra)] = ra.min(rb);
            }
        };
        for &c in &residual {
            let cb = layout.comp_blocks[c.0 as usize];
            let a = node(false, cb.q_block, &mut parent);
            let b = node(true, cb.kv_block, &mut parent);
            union(a, b, &mut parent);
        }
        let mut owned_tbs: Vec<TokenBlockId> = Vec::new();
        for (i, &owner) in out.placement.token_to_dev.iter().enumerate() {
            if owner == failed {
                let tb = TokenBlockId(i as u32);
                owned_tbs.push(tb);
                let a = node(false, tb, &mut parent);
                let b = node(true, tb, &mut parent);
                union(a, b, &mut parent);
            }
        }
        // Outstanding gradient partials launched after the frontier.
        let mut residual_out_cids: Vec<u32> = Vec::new();
        let mut outstanding: Vec<(bool, TokenBlockId)> = Vec::new();
        for ins in &bstream.instrs[cut..] {
            if let Instr::CommLaunch(cid) = ins {
                let mut is_out = false;
                for tr in &bwd.comms[cid.0 as usize].transfers {
                    match tr.payload {
                        Payload::PartialDq(tb, p) if p == failed => {
                            is_out = true;
                            outstanding.push((false, tb));
                            node(false, tb, &mut parent);
                        }
                        Payload::PartialDkv(tb, p) if p == failed => {
                            is_out = true;
                            outstanding.push((true, tb));
                            node(true, tb, &mut parent);
                        }
                        _ => {}
                    }
                }
                if is_out {
                    residual_out_cids.push(cid.0);
                }
            }
        }
        // Group nodes into components, in node insertion order.
        #[derive(Default)]
        struct BwdComponent {
            flops: u64,
            key: u32,
            items: Vec<CompBlockId>,
            dq: Vec<TokenBlockId>,
            dkv: Vec<TokenBlockId>,
        }
        let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
        let mut comps: Vec<BwdComponent> = Vec::new();
        let mut comp_of_node = vec![0usize; nodes.len()];
        for i in 0..nodes.len() {
            let r = find(&mut parent, i);
            let ci = *comp_of_root.entry(r).or_insert_with(|| {
                comps.push(BwdComponent {
                    key: nodes[i].1 .0,
                    ..Default::default()
                });
                comps.len() - 1
            });
            comp_of_node[i] = ci;
            let (is_dkv, tb) = nodes[i];
            if is_dkv {
                comps[ci].dkv.push(tb);
            } else {
                comps[ci].dq.push(tb);
            }
        }
        for &c in &residual {
            let cb = layout.comp_blocks[c.0 as usize];
            let ci = comp_of_node[node_id[&(false, cb.q_block)]];
            comps[ci].items.push(c);
            comps[ci].flops += cb.flops;
        }

        // --- 3. Water-fill components over survivor backward capacity. ---
        let caps = self.fault_caps(d_total);
        let queued: Vec<u64> = survivors
            .iter()
            .map(|&s| remaining_flops(&bwd.devices[s as usize].instrs, ev.divisions_done))
            .collect();
        let residual_total: u64 = comps.iter().map(|c| c.flops).sum();
        let bytes_total: u64 = comps
            .iter()
            .flat_map(|c| c.dq.iter().chain(&c.dkv))
            .map(|&tb| layout.token_blocks[tb.0 as usize].o_bytes)
            .sum();
        let targets = recovery_targets(
            &queued,
            &survivors,
            residual_total,
            bytes_total,
            caps.as_deref(),
        );
        let keyed: Vec<(u64, u32)> = comps.iter().map(|c| (c.flops, c.key)).collect();
        let part_of = waterfill_by(&keyed, &targets);

        // --- 4. Placement over D + S logical devices. --------------------
        let shard_dev = |j: u32| d_total + j;
        let mut token_to_dev = out.placement.token_to_dev.clone();
        let mut comp_to_dev = out.placement.comp_to_dev.clone();
        let mut reowned: HashSet<TokenBlockId> = HashSet::new();
        for &tb in &owned_tbs {
            let ci = comp_of_node[node_id[&(false, tb)]];
            token_to_dev[tb.0 as usize] = shard_dev(part_of[ci]);
            reowned.insert(tb);
        }
        for (ci, comp) in comps.iter().enumerate() {
            for &c in &comp.items {
                comp_to_dev[c.0 as usize] = shard_dev(part_of[ci]);
            }
        }
        let placement = Placement {
            num_devices: d_total + s_count as u32,
            token_to_dev,
            comp_to_dev,
        };

        // --- 5. Patched comm ops. ----------------------------------------
        let mut comms: Vec<CommOp> = bwd.comms.clone();
        for (cid, op) in comms.iter_mut().enumerate() {
            for tr in &mut op.transfers {
                if tr.to != failed || kept_waits.contains(&(cid as u32)) {
                    continue;
                }
                if let Payload::PartialDq(tb, _) | Payload::PartialDkv(tb, _) = tr.payload {
                    let dev = placement.token_dev(tb);
                    debug_assert!(dev >= d_total, "gradient partial must follow ownership");
                    tr.to = dev;
                }
            }
        }
        let mut producer_of_dq: HashMap<(TokenBlockId, u32), u32> = HashMap::new();
        let mut producer_of_dkv: HashMap<(TokenBlockId, u32), u32> = HashMap::new();
        for &(is_dkv, tb) in &outstanding {
            let dev = shard_dev(part_of[comp_of_node[node_id[&(is_dkv, tb)]]]);
            if is_dkv {
                producer_of_dkv.insert((tb, failed), dev);
            } else {
                producer_of_dq.insert((tb, failed), dev);
            }
        }
        // Salvage ops: the dead stream's raw dQ/dKV running sums for
        // accumulators with executed contributions, shipped to the shard
        // hosting their component.
        let mut salvage_comms: HashSet<u32> = HashSet::new();
        let mut salvage_cid: Vec<Option<CommId>> = vec![None; s_count];
        let mut salvage_bytes = 0u64;
        #[allow(clippy::needless_range_loop)]
        for j in 0..s_count {
            let mut transfers: Vec<Transfer> = Vec::new();
            for (ci, comp) in comps.iter().enumerate() {
                if part_of[ci] != j as u32 {
                    continue;
                }
                for &tb in &comp.dq {
                    if executed_dq.contains(&tb) {
                        let bytes = layout.token_blocks[tb.0 as usize].q_bytes;
                        salvage_bytes += bytes;
                        transfers.push(Transfer {
                            from: failed,
                            to: shard_dev(j as u32),
                            payload: Payload::PartialDq(tb, failed),
                            bytes,
                        });
                    }
                }
                for &tb in &comp.dkv {
                    if executed_dkv.contains(&tb) {
                        let bytes = layout.token_blocks[tb.0 as usize].kv_bytes;
                        salvage_bytes += bytes;
                        transfers.push(Transfer {
                            from: failed,
                            to: shard_dev(j as u32),
                            payload: Payload::PartialDkv(tb, failed),
                            bytes,
                        });
                    }
                }
            }
            if !transfers.is_empty() {
                let cid = CommId(comms.len() as u32);
                salvage_cid[j] = Some(cid);
                salvage_comms.insert(cid.0);
                comms.push(CommOp { transfers });
            }
        }
        // Input re-fetch: Q/KV/dO slices the shard's residual items read.
        let mut fetch_cid: Vec<Option<CommId>> = vec![None; s_count];
        let mut refetch_bytes = 0u64;
        #[allow(clippy::needless_range_loop)]
        for j in 0..s_count {
            let dev = shard_dev(j as u32);
            let mut seen: HashSet<Payload> = HashSet::new();
            let mut transfers: Vec<Transfer> = Vec::new();
            for (ci, comp) in comps.iter().enumerate() {
                if part_of[ci] != j as u32 {
                    continue;
                }
                for &c in &comp.items {
                    let cb = layout.comp_blocks[c.0 as usize];
                    let qb = &layout.token_blocks[cb.q_block.0 as usize];
                    let kb = &layout.token_blocks[cb.kv_block.0 as usize];
                    for (payload, bytes) in [
                        (Payload::Q(cb.q_block), qb.q_bytes),
                        (Payload::Kv(cb.kv_block), kb.kv_bytes),
                        (Payload::DO(cb.q_block), qb.o_bytes),
                    ] {
                        let tb = payload.token_block();
                        if placement.token_dev(tb) == dev || !seen.insert(payload) {
                            continue;
                        }
                        refetch_bytes += bytes;
                        transfers.push(Transfer {
                            from: out.placement.token_dev(tb),
                            to: dev,
                            payload,
                            bytes,
                        });
                    }
                }
            }
            if !transfers.is_empty() {
                let cid = CommId(comms.len() as u32);
                fetch_cid[j] = Some(cid);
                comms.push(CommOp { transfers });
            }
        }

        // --- 6. Streams. --------------------------------------------------
        let mut truncated: Vec<Instr> = bstream.instrs[..cut].to_vec();
        for cid in salvage_cid.iter().flatten() {
            truncated.push(Instr::CommLaunch(*cid));
        }
        let tail_waits: Vec<u32> = bstream.instrs[cut..]
            .iter()
            .filter_map(|ins| match ins {
                Instr::CommWait(cid) => Some(cid.0),
                _ => None,
            })
            .collect();
        let failed_reduce: Vec<ReduceItem> = bstream
            .instrs
            .iter()
            .flat_map(|ins| match ins {
                Instr::Reduce { items, .. } => items.clone(),
                _ => Vec::new(),
            })
            .collect();
        let mut devices: Vec<DeviceStream> = bwd.devices.clone();
        devices[failed as usize] = DeviceStream {
            device: failed,
            instrs: truncated.clone(),
            buffer: bstream.buffer,
        };
        for j in 0..s_count {
            let dev = shard_dev(j as u32);
            let mut instrs: Vec<Instr> = Vec::new();
            if let Some(cid) = fetch_cid[j] {
                instrs.push(Instr::CommLaunch(cid));
            }
            if let Some(cid) = salvage_cid[j] {
                instrs.push(Instr::CommWait(cid));
            }
            if let Some(cid) = fetch_cid[j] {
                instrs.push(Instr::CommWait(cid));
            }
            let items: Vec<CompBlockId> = residual
                .iter()
                .copied()
                .filter(|&c| placement.comp_dev(c) == dev)
                .collect();
            if !items.is_empty() {
                let flops = items
                    .iter()
                    .map(|&c| layout.comp_blocks[c.0 as usize].flops)
                    .sum();
                instrs.push(Instr::AttnBwd { items, flops });
            }
            for &cid in &residual_out_cids {
                let mine = comms[cid as usize]
                    .transfers
                    .iter()
                    .any(|tr| match tr.payload {
                        Payload::PartialDq(tb, p) => producer_of_dq.get(&(tb, p)) == Some(&dev),
                        Payload::PartialDkv(tb, p) => producer_of_dkv.get(&(tb, p)) == Some(&dev),
                        _ => false,
                    });
                if mine {
                    instrs.push(Instr::CommLaunch(CommId(cid)));
                }
            }
            for &cid in &tail_waits {
                if comms[cid as usize].transfers.iter().any(|tr| tr.to == dev) {
                    instrs.push(Instr::CommWait(CommId(cid)));
                }
            }
            let ritems: Vec<ReduceItem> = failed_reduce
                .iter()
                .filter(|it| placement.token_dev(it.target) == dev)
                .cloned()
                .collect();
            if !ritems.is_empty() {
                let bytes = reduce_bytes(layout, &ritems);
                instrs.push(Instr::Reduce {
                    items: ritems,
                    bytes,
                });
            }
            devices.push(DeviceStream {
                device: dev,
                instrs,
                buffer: BufferStats::default(),
            });
        }
        let patch_bwd = PhasePlan {
            comms: comms.clone(),
            devices,
        };

        // --- 7. Timing plan. ----------------------------------------------
        let host = |x: u32| {
            if x >= d_total {
                survivors[(x - d_total) as usize]
            } else {
                x
            }
        };
        let tcomms: Vec<CommOp> = comms
            .iter()
            .enumerate()
            .map(|(cid, op)| CommOp {
                transfers: op
                    .transfers
                    .iter()
                    .map(|tr| {
                        let from = match tr.payload {
                            Payload::PartialDq(tb, p)
                                if tr.from == failed && !salvage_comms.contains(&(cid as u32)) =>
                            {
                                producer_of_dq.get(&(tb, p)).copied().unwrap_or(tr.from)
                            }
                            Payload::PartialDkv(tb, p)
                                if tr.from == failed && !salvage_comms.contains(&(cid as u32)) =>
                            {
                                producer_of_dkv.get(&(tb, p)).copied().unwrap_or(tr.from)
                            }
                            _ => tr.from,
                        };
                        Transfer { from, ..*tr }
                    })
                    .filter(|tr| host(tr.from) != host(tr.to))
                    .map(|tr| Transfer {
                        from: host(tr.from),
                        to: host(tr.to),
                        ..tr
                    })
                    .collect(),
            })
            .collect();
        let mut tdevices: Vec<DeviceStream> = Vec::with_capacity(d_total as usize);
        for r in 0..d_total {
            if r == failed {
                tdevices.push(DeviceStream {
                    device: r,
                    instrs: truncated.clone(),
                    buffer: bstream.buffer,
                });
                continue;
            }
            let j = survivors.iter().position(|&s| s == r).expect("survivor");
            let orig = &bwd.devices[r as usize];
            let mut instrs = orig.instrs.clone();
            let mut tail = instrs.len();
            while tail > 0 && matches!(instrs[tail - 1], Instr::CommWait(_) | Instr::Reduce { .. })
            {
                tail -= 1;
            }
            let shard = patch_bwd.devices[d_total as usize + j].instrs.clone();
            instrs.splice(tail..tail, shard);
            tdevices.push(DeviceStream {
                device: r,
                instrs,
                buffer: orig.buffer,
            });
        }
        let timing = PhasePlan {
            comms: tcomms,
            devices: tdevices,
        };

        // --- 8. Verify both renderings. -----------------------------------
        let verify_ctx = VerifyCtx {
            failed: HashSet::from([failed]),
            salvage_comms: salvage_comms.clone(),
            producer_of: HashMap::new(),
            producer_of_dq: producer_of_dq.clone(),
            producer_of_dkv: producer_of_dkv.clone(),
            reowned: reowned.clone(),
        };
        verify_phase(layout, &placement, &patch_bwd, true, &verify_ctx)
            .map_err(|d| DcpError::invalid_plan(format!("recovery bwd patch: {d}")))?;
        verify_structure(&timing)
            .map_err(|d| DcpError::invalid_plan(format!("recovery bwd timing plan: {d}")))?;

        let stats = RecoveryStats {
            failed_flops,
            redone_flops,
            salvage_bytes,
            refetch_bytes,
            residual_units: comps.len(),
            greedy_fallback: false,
            plan_wall_s: t0.elapsed().as_secs_f64(),
            cascade_depth: 1,
        };
        self.emit_obs(failed, ev.divisions_done, &stats);
        Ok(BwdRecoveryPatch {
            failed,
            divisions_done: ev.divisions_done,
            shard_hosts: survivors,
            placement,
            bwd: patch_bwd,
            salvage_comms,
            producer_of_dq,
            producer_of_dkv,
            reowned,
            timing,
            stats,
        })
    }

    /// Shared obs emission for forward and backward patches.
    fn emit_obs(&self, failed: u32, divisions_done: u32, stats: &RecoveryStats) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.record(
            Event::instant(ObsSource::Planner, "device_lost")
                .with_device(failed)
                .with_division(divisions_done),
        );
        self.obs.record(
            Event::span(ObsSource::Planner, "recovery_plan")
                .with_device(failed)
                .with_time(0.0, stats.plan_wall_s)
                .with_value(stats.cascade_depth as f64),
        );
        self.obs.record(
            Event::counter(
                ObsSource::Planner,
                "recovery_redone_flops",
                stats.redone_flops as f64,
            )
            .with_flops(stats.redone_flops),
        );
        self.obs.record(
            Event::counter(
                ObsSource::Planner,
                "recovery_salvage_bytes",
                stats.salvage_bytes as f64,
            )
            .with_bytes(stats.salvage_bytes),
        );
        if stats.greedy_fallback {
            self.obs.record(Event::instant(
                ObsSource::Planner,
                "recovery_greedy_fallback",
            ));
        }
    }
}

/// Splits a device stream at its execution frontier: the instruction just
/// past the `k`-th fused attention call (`Attn` in forward streams,
/// `AttnBwd` in backward streams), extended through the comm launches that
/// immediately follow it (the completed division's out-comm and any
/// already-issued prefetch). Returns the cut index, the executed and
/// residual computation blocks (in stream order) and the stream's total
/// attention flops.
///
/// `device` is the physical rank the stream belongs to, used only to build
/// the typed [`DcpError::InvalidFailureEvent`] when `k` exceeds the
/// stream's division count.
fn split_frontier(
    instrs: &[Instr],
    k: u32,
    device: u32,
) -> DcpResult<(usize, Vec<CompBlockId>, Vec<CompBlockId>, u64)> {
    let mut cut = 0usize;
    if k > 0 {
        let mut seen = 0u32;
        let mut found = false;
        for (i, ins) in instrs.iter().enumerate() {
            if matches!(ins, Instr::Attn { .. } | Instr::AttnBwd { .. }) {
                seen += 1;
                if seen == k {
                    cut = i + 1;
                    found = true;
                    break;
                }
            }
        }
        if !found {
            return Err(DcpError::invalid_failure_event(device, k));
        }
    }
    while cut < instrs.len() && matches!(instrs[cut], Instr::CommLaunch(_)) {
        cut += 1;
    }
    let mut executed = Vec::new();
    let mut residual = Vec::new();
    let mut total = 0u64;
    for (i, ins) in instrs.iter().enumerate() {
        if let Instr::Attn { items, flops } | Instr::AttnBwd { items, flops } = ins {
            total += flops;
            if i < cut {
                executed.extend_from_slice(items);
            } else {
                residual.extend_from_slice(items);
            }
        }
    }
    Ok((cut, executed, residual, total))
}

/// Attention flops a device has left after completing `k` fused divisions
/// (forward `Attn` or backward `AttnBwd`, whichever the stream carries).
fn remaining_flops(instrs: &[Instr], k: u32) -> u64 {
    instrs
        .iter()
        .filter_map(|ins| match ins {
            Instr::Attn { flops, .. } | Instr::AttnBwd { flops, .. } => Some(*flops),
            _ => None,
        })
        .skip(k as usize)
        .sum()
}

/// Per-shard `[flops, bytes]` targets for the residual re-shard.
///
/// Without a fault spec (`caps == None`) each survivor's flop target is its
/// shortfall against the water level — the clean planner's equal-finish
/// heuristic — and bytes split evenly. With a fault spec, shortfalls are
/// scaled by each survivor's effective compute rate (straggler-slowed ranks
/// absorb less residual work) and bytes follow the survivors' effective
/// link weights, mirroring [`Planner::plan`]'s fault-aware targets.
fn recovery_targets(
    queued: &[u64],
    survivors: &[u32],
    residual_total: u64,
    bytes_total: u64,
    caps: Option<&[[f64; 2]]>,
) -> Vec<VertexWeight> {
    let s_count = survivors.len();
    let total_queued: u64 = queued.iter().sum();
    let ideal = (total_queued + residual_total) as f64 / s_count as f64;
    match caps {
        None => queued
            .iter()
            .map(|&r| {
                [
                    (ideal - r as f64).max(1.0).round() as u64,
                    (bytes_total / s_count as u64).max(1),
                ]
            })
            .collect(),
        Some(caps) => {
            // Effective finish-together water level: each survivor should
            // end up with work proportional to its compute rate.
            let wsum: f64 = survivors.iter().map(|&s| caps[s as usize][0]).sum();
            let raw: Vec<f64> = survivors
                .iter()
                .zip(queued)
                .map(|(&s, &r)| {
                    let w = caps[s as usize][0];
                    ((total_queued + residual_total) as f64 * w / wsum - r as f64).max(0.0)
                })
                .collect();
            let rsum: f64 = raw.iter().sum();
            let flops: Vec<f64> = if rsum > 0.0 {
                raw.iter()
                    .map(|&x| x * residual_total as f64 / rsum)
                    .collect()
            } else {
                survivors
                    .iter()
                    .map(|&s| residual_total as f64 * caps[s as usize][0] / wsum)
                    .collect()
            };
            let nsum: f64 = survivors.iter().map(|&s| caps[s as usize][1]).sum();
            survivors
                .iter()
                .zip(&flops)
                .map(|(&s, &fl)| {
                    let net = caps[s as usize][1] / nsum;
                    [
                        fl.max(1.0).round() as u64,
                        (bytes_total as f64 * net).max(1.0).round() as u64,
                    ]
                })
                .collect()
        }
    }
}

/// Picks the survivor with the least effective load: raw flops when no
/// fault spec is active, flops divided by the survivor's compute rate when
/// one is (a straggler at half speed counts double). Ties break toward the
/// lowest rank for determinism.
fn pick_least_loaded(survivors: &[u32], load: &[u64], caps: Option<&[[f64; 2]]>) -> u32 {
    match caps {
        None => *survivors
            .iter()
            .min_by_key(|&&s| (load[s as usize], s))
            .expect("nonempty survivors"),
        Some(caps) => *survivors
            .iter()
            .min_by(|&&a, &&b| {
                let ta = load[a as usize] as f64 / caps[a as usize][0];
                let tb = load[b as usize] as f64 / caps[b as usize][0];
                ta.partial_cmp(&tb).unwrap().then(a.cmp(&b))
            })
            .expect("nonempty survivors"),
    }
}

/// Deterministic greedy fallback for the residual re-shard: heaviest unit
/// first into the shard with the most remaining flop capacity. `keyed` is
/// `(flops, tiebreak key)` per unit.
fn waterfill_by(keyed: &[(u64, u32)], targets: &[VertexWeight]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..keyed.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(keyed[i].0), keyed[i].1));
    let mut cap: Vec<i128> = targets.iter().map(|t| t[0] as i128).collect();
    let mut part = vec![0u32; keyed.len()];
    for i in order {
        let j = (0..cap.len())
            .max_by_key(|&j| (cap[j], std::cmp::Reverse(j)))
            .expect("nonempty targets");
        part[i] = j as u32;
        cap[j] -= keyed[i].0.max(1) as i128;
    }
    part
}

/// [`waterfill_by`] over residual re-shard units.
fn waterfill(units: &[Unit], targets: &[VertexWeight]) -> Vec<u32> {
    let keyed: Vec<(u64, u32)> = units.iter().map(|u| (u.flops, u.tb.0)).collect();
    waterfill_by(&keyed, targets)
}

/// The schedule's reduce byte model: read every partial plus the resident
/// accumulator, write the accumulator.
fn reduce_bytes(layout: &BatchLayout, items: &[ReduceItem]) -> u64 {
    items
        .iter()
        .map(|it| {
            let tb = &layout.token_blocks[it.target.0 as usize];
            let unit = match it.kind {
                PayloadKind::PartialO => tb.o_bytes,
                PayloadKind::PartialDq => tb.q_bytes,
                PayloadKind::PartialDkv => tb.kv_bytes,
                _ => 0,
            };
            unit * (it.sources.len() as u64 + 2)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerConfig};
    use dcp_mask::MaskSpec;
    use dcp_types::{AttnSpec, ClusterSpec};

    fn plan_8dev() -> PlanOutput {
        let planner = Planner::new(
            ClusterSpec::p4de(1),
            AttnSpec::paper_micro(),
            PlannerConfig {
                block_size: 2048,
                divisions: 4,
                ..Default::default()
            },
        );
        planner
            .plan(&[
                (32768, MaskSpec::Causal),
                (16384, MaskSpec::Causal),
                (8192, MaskSpec::Causal),
                (8192, MaskSpec::Causal),
            ])
            .unwrap()
    }

    /// The device with the most fused divisions, and that count.
    fn busiest_device(out: &PlanOutput) -> (u32, u32) {
        out.plan
            .fwd
            .devices
            .iter()
            .map(|s| {
                s.instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::Attn { .. }))
                    .count() as u32
            })
            .enumerate()
            .max_by_key(|&(i, n)| (n, std::cmp::Reverse(i)))
            .map(|(i, n)| (i as u32, n))
            .unwrap()
    }

    #[test]
    fn patch_reassigns_only_unexecuted_blocks() {
        let out = plan_8dev();
        let (dev, nd) = busiest_device(&out);
        assert!(nd >= 2, "planner produced a single-division stream");
        let k = nd / 2;
        let ev = FailureEvent {
            device: dev,
            divisions_done: k,
        };
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(&out, &ev)
            .unwrap();
        assert!(patch.stats.redone_flops < patch.stats.failed_flops);
        // Every residual computation block moved to a shard; every executed
        // one stayed.
        let d = out.plan.num_devices;
        let (cut, executed, residual, _) =
            split_frontier(&out.plan.fwd.devices[dev as usize].instrs, k, dev).unwrap();
        assert!(cut > 0);
        for &c in &residual {
            assert!(patch.placement.comp_dev(c) >= d, "residual block on {c:?}");
        }
        for &c in &executed {
            assert_eq!(patch.placement.comp_dev(c), dev);
        }
        // Logical device count covers the shards.
        assert_eq!(
            patch.fwd.devices.len() as u32,
            d + patch.shard_hosts.len() as u32
        );
        assert_eq!(patch.shard_hosts.len(), 7);
    }

    #[test]
    fn ownership_and_production_move_to_shards() {
        let out = plan_8dev();
        let (dev, nd) = busiest_device(&out);
        assert!(nd >= 1);
        let ev = FailureEvent {
            device: dev,
            divisions_done: 1,
        };
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(&out, &ev)
            .unwrap();
        let d = out.plan.num_devices;
        for (i, &owner) in out.placement.token_to_dev.iter().enumerate() {
            let tb = TokenBlockId(i as u32);
            if owner == dev {
                assert!(patch.placement.token_dev(tb) >= d);
                assert!(patch.reowned.contains(&tb));
            } else {
                assert_eq!(patch.placement.token_dev(tb), owner);
            }
        }
        for (&(tb, _p), &shard) in &patch.producer_of {
            assert!(shard >= d);
            assert_ne!(out.placement.token_dev(tb), dev, "owner partials self-sent");
        }
        // No transfer in the patch still targets the failed owner with a
        // partial.
        for op in &patch.fwd.comms {
            for tr in &op.transfers {
                if matches!(tr.payload, Payload::PartialO(..)) {
                    assert_ne!(tr.to, dev, "partial still bound for the failed device");
                }
            }
        }
        // The timing plan stays on the physical ranks.
        assert_eq!(patch.timing.devices.len() as u32, d);
        for op in &patch.timing.comms {
            for tr in &op.transfers {
                assert!(tr.from < d && tr.to < d);
                assert_ne!(tr.from, tr.to);
            }
        }
        // Backward placement has nothing left on the failed rank.
        assert!(patch.bwd_placement.comp_to_dev.iter().all(|&x| x != dev));
        assert!(patch.bwd_placement.token_to_dev.iter().all(|&x| x != dev));
        assert_eq!(patch.bwd.num_devices, d);
    }

    #[test]
    fn failure_after_all_divisions_salvages_without_redo() {
        let out = plan_8dev();
        let (dev, nd) = busiest_device(&out);
        let patch = RecoveryPlanner::new(RecoveryConfig::default())
            .plan_recovery(
                &out,
                &FailureEvent {
                    device: dev,
                    divisions_done: nd,
                },
            )
            .unwrap();
        assert_eq!(patch.stats.redone_flops, 0);
        assert!(patch.stats.salvage_bytes > 0);
    }

    #[test]
    fn out_of_range_inputs_error() {
        let out = plan_8dev();
        let rp = RecoveryPlanner::new(RecoveryConfig::default());
        assert!(rp
            .plan_recovery(
                &out,
                &FailureEvent {
                    device: 99,
                    divisions_done: 0
                }
            )
            .is_err());
        assert!(rp
            .plan_recovery(
                &out,
                &FailureEvent {
                    device: 1,
                    divisions_done: 1000
                }
            )
            .is_err());
    }
}
