//! The DCP planner, dataloader and end-to-end iteration model.
//!
//! This crate ties the stack together (paper Fig. 8):
//!
//! - [`planner`]: per-batch planning — block generation (`dcp-blocks`),
//!   hierarchical hypergraph placement (`dcp-hypergraph`; machines first
//!   with ε = 0.4, then devices within each machine with ε = 0.1), and
//!   division scheduling (`dcp-sched`) — producing a ready-to-execute
//!   [`dcp_sched::ExecutionPlan`].
//! - [`dataloader`]: the look-ahead dataloader of Sec. 6.1 — plans for the
//!   next κ batches are computed in parallel on CPU cores (rayon) while the
//!   current iteration "executes", hiding planning latency.
//! - [`e2e`]: the end-to-end iteration model for the paper's 8B-GPT
//!   experiments — attention time comes from the plan simulator, while
//!   context-independent operators, gradient synchronization and the
//!   optimizer are charged identically for DCP and the baselines (which is
//!   the paper's own explanation for why end-to-end speedups are smaller
//!   than micro-benchmark speedups).

pub mod dataloader;
pub mod e2e;
pub mod groups;
pub mod planner;
pub mod recovery;

pub use dataloader::{
    DataloaderSnapshot, DcpDataloader, FailureClass, PlanFn, ReplanEvent, RetryConfig,
};
pub use e2e::{
    cp_cluster, simulate_iteration, simulate_iteration_with_recovery, E2eConfig, IterationBreakdown,
};
pub use groups::{plan_grouped, GroupedPlan};
pub use planner::{
    IncrementalConfig, PlanOutput, PlanStats, Planner, PlannerConfig, PlanningTimes,
};
pub use recovery::{
    BwdRecoveryPatch, FailureEvent, RecoveryConfig, RecoveryPatch, RecoveryPlanner, RecoveryStats,
};
