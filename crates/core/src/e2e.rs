//! End-to-end iteration time model for the paper's 8B-GPT experiments.
//!
//! An iteration is decomposed exactly as the paper's Fig. 22:
//!
//! - **attention**: the simulated makespan of the context-parallel
//!   attention plan, once per layer (forward + backward) — this is the only
//!   part that differs between DCP and the baselines;
//! - **context-independent operators**: the dense matmuls of every layer
//!   plus the LM head, charged for the *most loaded* device (token balance
//!   matters) and divided across tensor-parallel ranks;
//! - **gradient synchronization**: a ring all-reduce of the tensor-parallel
//!   gradient shard across the context/data-parallel ranks;
//! - **other**: the optimizer update (Adam-style state read/write through
//!   device memory bandwidth).
//!
//! The identical treatment of the non-attention parts for every system is
//! deliberate and mirrors the paper's argument for why end-to-end speedups
//! (0.94x–1.46x) are smaller than attention micro-benchmark speedups
//! (1.19x–3.77x).

use dcp_sim::PlanSim;
use dcp_types::{ClusterSpec, ModelSpec};
use serde::{Deserialize, Serialize};

/// End-to-end model configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2eConfig {
    /// The transformer being trained.
    pub model: ModelSpec,
    /// Tensor-parallel degree (within a node).
    pub tp: u32,
    /// The full physical cluster (TP ranks included).
    pub cluster: ClusterSpec,
}

impl E2eConfig {
    /// The paper's end-to-end setup: 8 p4de nodes (64 GPUs), 8B GPT,
    /// TP = 4, leaving 16-way context parallelism.
    pub fn paper() -> Self {
        E2eConfig {
            model: ModelSpec::gpt_8b(),
            tp: 4,
            cluster: ClusterSpec::p4de(8),
        }
    }

    /// Number of context-parallel ranks (`devices / tp`).
    pub fn cp_ranks(&self) -> u32 {
        self.cluster.num_devices() / self.tp
    }
}

/// The cluster as seen by the context-parallel ranks after `tp`-way tensor
/// parallelism claims adjacent ranks inside each node: same per-link
/// bandwidths, but only `devices_per_node / tp` CP ranks per node sharing
/// the node NIC.
///
/// # Panics
///
/// Panics if `tp` does not divide the node size.
pub fn cp_cluster(cluster: &ClusterSpec, tp: u32) -> ClusterSpec {
    assert!(
        tp > 0 && cluster.devices_per_node.is_multiple_of(tp),
        "tp must divide devices per node"
    );
    let mut c = cluster.clone();
    c.devices_per_node = cluster.devices_per_node / tp;
    c
}

/// One iteration's time decomposition (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Attention kernel time across all layers (compute only).
    pub attn_compute: f64,
    /// Communication exposed on the critical path (not overlapped).
    pub exposed_comm: f64,
    /// Communication successfully overlapped with attention compute.
    pub overlap_comm: f64,
    /// Context-independent operator time (fwd + bwd, most-loaded device).
    pub ctx_independent: f64,
    /// Gradient all-reduce time.
    pub grad_sync: f64,
    /// Optimizer and miscellaneous per-iteration time.
    pub other: f64,
    /// Dataloader recovery wall time charged to this iteration (planning
    /// retries after a worker died, timed out, or errored — see
    /// [`crate::ReplanEvent::recovery_wall_s`]). Zero for the fault-free
    /// path. A recovered re-plan is synchronous, so nothing hides it: it
    /// lands on the critical path and is charged into [`Self::total`].
    pub recovery: f64,
    /// End-to-end iteration seconds (including `recovery`).
    pub total: f64,
}

/// Computes the iteration breakdown from a simulated attention plan.
///
/// `attn_sim` must be the simulation of **one layer's** attention plan on
/// the CP cluster; `max_device_tokens` is the token count of the most
/// loaded CP rank (for context-independent work); `total_tokens` is the
/// batch's token count.
pub fn simulate_iteration(
    cfg: &E2eConfig,
    attn_sim: &PlanSim,
    max_device_tokens: u64,
    total_tokens: u64,
) -> IterationBreakdown {
    simulate_iteration_with_recovery(cfg, attn_sim, max_device_tokens, total_tokens, 0.0)
}

/// [`simulate_iteration`] with dataloader recovery time charged to the
/// timeline. `recovery_s` is the wall time the loader spent synchronously
/// re-planning this batch (the sum of [`crate::ReplanEvent::recovery_wall_s`]
/// for its incidents); a synchronous re-plan stalls the training step — the
/// look-ahead window cannot hide it — so it is added to
/// [`IterationBreakdown::total`] rather than only reported on the side.
pub fn simulate_iteration_with_recovery(
    cfg: &E2eConfig,
    attn_sim: &PlanSim,
    max_device_tokens: u64,
    total_tokens: u64,
    recovery_s: f64,
) -> IterationBreakdown {
    let m = &cfg.model;
    let layers = m.layers as f64;
    let eff = cfg.cluster.effective_flops();

    // Attention: one plan per layer, forward + backward. Split the
    // simulated makespan into compute and exposed-comm using the slowest
    // device's breakdown.
    let slowest = |p: &dcp_sim::PhaseSim| {
        p.devices
            .iter()
            .cloned()
            .max_by(|a, b| a.finish.partial_cmp(&b.finish).expect("no NaN"))
            .unwrap_or_default()
    };
    let f = slowest(&attn_sim.fwd);
    let b = slowest(&attn_sim.bwd);
    let attn_compute = layers * (f.compute() + b.compute());
    let exposed_comm = layers * (f.exposed_wait + b.exposed_wait)
        + layers * ((attn_sim.fwd.makespan - f.finish) + (attn_sim.bwd.makespan - b.finish));
    let overlap_comm = layers * (f.overlap + b.overlap);

    // Context-independent: whole-model dense flops for the busiest rank's
    // tokens, divided across TP, forward (1x) + backward (2x).
    let ctx_flops = m.ctx_independent_fwd_flops(max_device_tokens) as f64 / cfg.tp as f64;
    let ctx_independent = 3.0 * ctx_flops / eff;

    // Gradient all-reduce across CP ranks (weights are replicated there).
    let r = cfg.cp_ranks() as f64;
    let grad_bytes = m.grad_bytes(cfg.tp) as f64;
    let grad_sync = if cfg.cluster.nodes > 1 {
        let x = cfg.cluster.nodes as f64;
        // Each node's NIC carries the ring segments of its resident ranks.
        2.0 * (x - 1.0) / x * grad_bytes / cfg.cluster.inter_bw
    } else {
        2.0 * (r - 1.0) / r * grad_bytes / cfg.cluster.intra_bw
    };

    // Optimizer: Adam reads/writes ~16 bytes of state per parameter shard.
    let other = (m.param_count() / cfg.tp as u64) as f64 * 16.0 / cfg.cluster.mem_bw;

    let recovery = recovery_s.max(0.0);
    let total = layers * attn_sim.total() + ctx_independent + grad_sync + other + recovery;
    let _ = total_tokens;
    IterationBreakdown {
        attn_compute,
        exposed_comm,
        overlap_comm,
        ctx_independent,
        grad_sync,
        other,
        recovery,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerConfig};
    use dcp_mask::MaskSpec;
    use dcp_sim::simulate_plan;
    use dcp_types::AttnSpec;

    #[test]
    fn cp_cluster_divides_node() {
        let c = ClusterSpec::p4de(8);
        let cp = cp_cluster(&c, 4);
        assert_eq!(cp.devices_per_node, 2);
        assert_eq!(cp.num_devices(), 16);
        assert_eq!(cp.inter_bw, c.inter_bw);
    }

    #[test]
    #[should_panic(expected = "tp must divide")]
    fn cp_cluster_rejects_bad_tp() {
        let _ = cp_cluster(&ClusterSpec::p4de(1), 3);
    }

    #[test]
    fn breakdown_sums_plausibly() {
        let cfg = E2eConfig::paper();
        let cp = cp_cluster(&cfg.cluster, cfg.tp);
        let planner = Planner::new(
            cp.clone(),
            cfg.model.attn_spec(cfg.tp),
            PlannerConfig::default(),
        );
        let out = planner
            .plan(&[(65536, MaskSpec::Causal), (32768, MaskSpec::Causal)])
            .unwrap();
        let sim = simulate_plan(&cp, &out.plan).unwrap();
        let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
        let it = simulate_iteration(&cfg, &sim, max_tokens, out.layout.total_tokens());
        assert!(it.total > 0.0);
        // Attention + exposed should not exceed the total.
        assert!(it.attn_compute + it.exposed_comm <= it.total * 1.01);
        // The non-attention parts are nonzero.
        assert!(it.ctx_independent > 0.0);
        assert!(it.grad_sync > 0.0);
        assert!(it.other > 0.0);
        // An 8B model at 128k tokens: iteration should land in a sane range
        // (hundreds of ms to tens of seconds).
        assert!(it.total > 0.05 && it.total < 60.0, "total = {}", it.total);
    }

    #[test]
    fn recovery_is_charged_into_the_total() {
        let cfg = E2eConfig::paper();
        let cp = cp_cluster(&cfg.cluster, cfg.tp);
        let planner = Planner::new(
            cp.clone(),
            cfg.model.attn_spec(cfg.tp),
            PlannerConfig::default(),
        );
        let out = planner.plan(&[(65536, MaskSpec::Causal)]).unwrap();
        let sim = simulate_plan(&cp, &out.plan).unwrap();
        let max_tokens = *out.placement.token_loads(&out.layout).iter().max().unwrap();
        let tokens = out.layout.total_tokens();
        let clean = simulate_iteration(&cfg, &sim, max_tokens, tokens);
        assert_eq!(clean.recovery, 0.0);
        let faulted = simulate_iteration_with_recovery(&cfg, &sim, max_tokens, tokens, 0.25);
        assert_eq!(faulted.recovery, 0.25);
        assert!((faulted.total - (clean.total + 0.25)).abs() < 1e-12);
        // Everything else is unchanged.
        assert_eq!(faulted.attn_compute, clean.attn_compute);
        assert_eq!(faulted.grad_sync, clean.grad_sync);
        // A negative input is clamped, not subtracted.
        let neg = simulate_iteration_with_recovery(&cfg, &sim, max_tokens, tokens, -1.0);
        assert_eq!(neg.recovery, 0.0);
        assert_eq!(neg.total, clean.total);
    }

    #[test]
    fn paper_config_shape() {
        let cfg = E2eConfig::paper();
        assert_eq!(cfg.cp_ranks(), 16);
        assert_eq!(cfg.model.attn_spec(cfg.tp), AttnSpec::paper_micro());
    }
}
