//! The generic ring-attention plan builder behind all three baselines.

use dcp_blocks::{BatchLayout, BlockConfig, CompBlockId, TokenBlockId};
use dcp_mask::MaskSpec;
use dcp_sched::{
    CommId, CommOp, DeviceStream, ExecutionPlan, Instr, Payload, PhasePlan, Placement, Transfer,
};
use dcp_types::{AttnSpec, DcpError, DcpResult};

/// Configuration of a ring baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Total devices `n = head_groups * ring_size`.
    pub devices: u32,
    /// Head-parallel degree (must divide both head counts and `devices`).
    pub head_groups: u32,
    /// ZigZag placement (2 chunks per ring position) vs contiguous Ring.
    pub zigzag: bool,
    /// Double-ring inner size `w` (1 = plain ring). Every `w`-th hop is an
    /// outer (typically inter-node) hop; the rest stay within the inner
    /// ring.
    pub inner_ring: u32,
    /// Pad every sequence to the longest in the batch (LoongTrain).
    pub pad_to_max: bool,
    /// Sequence-dimension block size used for the underlying layout.
    pub block_size: u32,
    /// Emit the head/sequence-layout reorder copy at phase start (TE/LT).
    pub reorder_copy: bool,
}

/// A baseline's layout, placement and plan.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// Display name (e.g. `rfa-zigzag`).
    pub name: String,
    /// The block layout the plan refers to. For LoongTrain this includes
    /// padding (longer sequences than the real workload).
    pub layout: BatchLayout,
    /// Token/computation placement.
    pub placement: Placement,
    /// Forward + backward instruction streams.
    pub plan: ExecutionPlan,
}

/// Builds a ring-attention baseline plan.
///
/// # Errors
///
/// Returns [`DcpError::InvalidArgument`] if `head_groups` does not divide
/// the device count or the attention head counts.
pub fn build_ring_baseline(
    name: &str,
    attn: AttnSpec,
    cfg: &RingConfig,
    seqs: &[(u32, MaskSpec)],
) -> DcpResult<BaselineOutput> {
    if cfg.devices == 0 || cfg.head_groups == 0 || !cfg.devices.is_multiple_of(cfg.head_groups) {
        return Err(DcpError::invalid_argument(format!(
            "head_groups {} must divide devices {}",
            cfg.head_groups, cfg.devices
        )));
    }
    if !attn.q_heads.is_multiple_of(cfg.head_groups)
        || !attn.kv_heads.is_multiple_of(cfg.head_groups)
    {
        return Err(DcpError::invalid_argument(
            "head_groups must divide the attention head counts",
        ));
    }
    let rp = cfg.devices / cfg.head_groups;
    if cfg.inner_ring == 0 || (cfg.inner_ring > 1 && !rp.is_multiple_of(cfg.inner_ring)) {
        return Err(DcpError::invalid_argument(
            "inner_ring must divide the ring size",
        ));
    }

    let layout = build_ring_layout(attn, cfg, seqs)?;
    build_ring_baseline_with_layout(name, cfg, layout)
}

/// Builds the (possibly padded) block layout a ring baseline runs on.
/// Useful to share one layout across LoongTrain's inner-ring sweep.
///
/// # Errors
///
/// Propagates layout-construction failures.
pub fn build_ring_layout(
    attn: AttnSpec,
    cfg: &RingConfig,
    seqs: &[(u32, MaskSpec)],
) -> DcpResult<BatchLayout> {
    // Padded workload for LoongTrain.
    let max_len = seqs.iter().map(|(l, _)| *l).max().unwrap_or(0);
    let effective: Vec<(u32, MaskSpec)> = if cfg.pad_to_max {
        seqs.iter().map(|(_, m)| (max_len, m.clone())).collect()
    } else {
        seqs.to_vec()
    };
    BatchLayout::build(
        attn,
        BlockConfig {
            block_size: cfg.block_size,
            head_blocks: cfg.head_groups,
        },
        &effective,
    )
}

/// Like [`build_ring_baseline`] but reusing a prebuilt layout (which must
/// come from [`build_ring_layout`] with an equivalent config).
///
/// # Errors
///
/// Never fails today; kept fallible for symmetry and future validation.
pub fn build_ring_baseline_with_layout(
    name: &str,
    cfg: &RingConfig,
    layout: BatchLayout,
) -> DcpResult<BaselineOutput> {
    let rp = cfg.devices / cfg.head_groups;
    // Ring position of every token block.
    let nchunks = if cfg.zigzag { 2 * rp } else { rp };
    let pos_of = |tb: &dcp_blocks::TokenBlock| -> u32 {
        let len = layout.seq_lens[tb.seq as usize];
        // Chunk length rounded up to a block multiple so blocks never
        // straddle chunks.
        let chunk_len = len.div_ceil(nchunks).div_ceil(cfg.block_size).max(1) * cfg.block_size;
        let c = (tb.start / chunk_len).min(nchunks - 1);
        if cfg.zigzag {
            if c < rp {
                c
            } else {
                2 * rp - 1 - c
            }
        } else {
            c
        }
    };
    // Rank layout: head groups are adjacent ranks, ring positions stride by
    // `head_groups` (so head-parallel partners share a node and the ring
    // spans the cluster, as in LoongTrain/TE).
    let rank_of = |pos: u32, h: u32| -> u32 { pos * cfg.head_groups + h };

    let token_to_dev: Vec<u32> = layout
        .token_blocks
        .iter()
        .map(|tb| rank_of(pos_of(tb), tb.head_block))
        .collect();
    let comp_to_dev: Vec<u32> = layout
        .comp_blocks
        .iter()
        .map(|c| token_to_dev[c.q_block.0 as usize])
        .collect();
    let placement = Placement {
        num_devices: cfg.devices,
        token_to_dev,
        comp_to_dev,
    };

    // Per (head group, ring pos): owned token blocks; per device: comp
    // blocks grouped by the ring position owning their KV.
    let n = cfg.devices as usize;
    let mut owned: Vec<Vec<TokenBlockId>> = vec![Vec::new(); n];
    for (i, _) in layout.token_blocks.iter().enumerate() {
        owned[placement.token_to_dev[i] as usize].push(TokenBlockId(i as u32));
    }
    // comp_by_step[dev][kv_pos] -> comp block ids.
    let mut comp_by_kvpos: Vec<Vec<Vec<CompBlockId>>> = vec![vec![Vec::new(); rp as usize]; n];
    for (i, cb) in layout.comp_blocks.iter().enumerate() {
        let dev = placement.comp_to_dev[i] as usize;
        let kv_pos = pos_of(&layout.token_blocks[cb.kv_block.0 as usize]);
        comp_by_kvpos[dev][kv_pos as usize].push(CompBlockId(i as u32));
    }

    let fwd = build_phase(&layout, cfg, rp, &owned, &comp_by_kvpos, false);
    let bwd = build_phase(&layout, cfg, rp, &owned, &comp_by_kvpos, true);

    Ok(BaselineOutput {
        name: name.to_string(),
        layout,
        placement,
        plan: ExecutionPlan {
            num_devices: cfg.devices,
            fwd,
            bwd,
        },
    })
}

/// A static zigzag/ring placement of an ordinary DCP [`BatchLayout`], for
/// use as the planner's last-resort fallback tier: each sequence is split
/// into `devices` (ring) or `2 * devices` (zigzag) contiguous chunks and
/// chunks map to devices exactly like RingFlashAttention input placement;
/// computation blocks run where their Q lives. Unlike
/// [`build_ring_baseline`], no relay plan is emitted — the DCP scheduler
/// turns this placement into owner-based transfers — so it composes with
/// `dcp_sched::build_plan` and is always feasible for any non-empty layout.
///
/// # Errors
///
/// Returns [`DcpError::InvalidArgument`] if `devices == 0`.
pub fn static_placement(layout: &BatchLayout, devices: u32, zigzag: bool) -> DcpResult<Placement> {
    if devices == 0 {
        return Err(DcpError::invalid_argument(
            "static placement needs at least one device",
        ));
    }
    let block_size = layout.config.block_size.max(1);
    let nchunks = if zigzag { 2 * devices } else { devices };
    let token_to_dev: Vec<u32> = layout
        .token_blocks
        .iter()
        .map(|tb| {
            let len = layout.seq_lens[tb.seq as usize];
            let chunk_len = len.div_ceil(nchunks).div_ceil(block_size).max(1) * block_size;
            let c = (tb.start / chunk_len).min(nchunks - 1);
            if zigzag && c >= devices {
                2 * devices - 1 - c
            } else {
                c
            }
        })
        .collect();
    let comp_to_dev: Vec<u32> = layout
        .comp_blocks
        .iter()
        .map(|c| token_to_dev[c.q_block.0 as usize])
        .collect();
    Ok(Placement {
        num_devices: devices,
        token_to_dev,
        comp_to_dev,
    })
}

/// The physical sender's ring position for the hop delivering step `s`'s
/// chunk to position `r`: the inner neighbor normally, the outer neighbor
/// (`w` positions back) on every `w`-th step.
fn sender_pos(r: u32, s: u32, rp: u32, w: u32) -> u32 {
    if w <= 1 || !s.is_multiple_of(w) {
        (r + rp - 1) % rp
    } else {
        (r + rp - w) % rp
    }
}

#[allow(clippy::too_many_arguments)]
fn build_phase(
    layout: &BatchLayout,
    cfg: &RingConfig,
    rp: u32,
    owned: &[Vec<TokenBlockId>],
    comp_by_kvpos: &[Vec<Vec<CompBlockId>>],
    backward: bool,
) -> PhasePlan {
    let n = cfg.devices as usize;
    let hp = cfg.head_groups;
    let mut comms: Vec<CommOp> = Vec::new();
    let mut devices: Vec<DeviceStream> = Vec::new();

    // Ring backward sends k, v, dk, dv each step: twice the bytes.
    let comm_scale: u64 = if backward { 2 } else { 1 };
    let flops_scale = |f: u64| if backward { f * 5 / 2 } else { f };

    for dev in 0..n as u32 {
        let h = dev % hp;
        let r = dev / hp;
        let mut instrs: Vec<Instr> = Vec::new();

        if cfg.reorder_copy {
            let bytes: u64 = owned[dev as usize]
                .iter()
                .map(|&t| layout.token_blocks[t.0 as usize].total_bytes())
                .sum();
            if bytes > 0 {
                instrs.push(Instr::Copy { bytes });
            }
        }

        // Per step: the comm op receiving the *next* step's chunk, plus the
        // attention over the current chunk.
        let mut step_ops: Vec<Option<CommId>> = vec![None; rp as usize];
        for s in 1..rp {
            let src_pos = sender_pos(r, s, rp, cfg.inner_ring);
            let from = src_pos * hp + h;
            // The chunk arriving at step s is the one owned by pos (r - s).
            let chunk_pos = (r + rp - s) % rp;
            let chunk_owner = chunk_pos * hp + h;
            let transfers: Vec<Transfer> = owned[chunk_owner as usize]
                .iter()
                .map(|&tb| Transfer {
                    from,
                    to: dev,
                    payload: Payload::Kv(tb),
                    bytes: layout.token_blocks[tb.0 as usize].kv_bytes * comm_scale,
                })
                .filter(|t| t.bytes > 0)
                .collect();
            if !transfers.is_empty() {
                step_ops[s as usize] = Some(CommId(comms.len() as u32));
                comms.push(CommOp { transfers });
            }
        }

        for s in 0..rp {
            if let Some(cid) = step_ops[s as usize] {
                instrs.push(Instr::CommWait(cid));
            }
            if s + 1 < rp {
                if let Some(cid) = step_ops[s as usize + 1] {
                    instrs.push(Instr::CommLaunch(cid));
                }
            }
            let chunk_pos = (r + rp - s) % rp;
            let items = &comp_by_kvpos[dev as usize][chunk_pos as usize];
            if !items.is_empty() {
                let flops: u64 = items
                    .iter()
                    .map(|&c| flops_scale(layout.comp_blocks[c.0 as usize].flops))
                    .sum();
                if backward {
                    instrs.push(Instr::AttnBwd {
                        items: items.clone(),
                        flops,
                    });
                } else {
                    instrs.push(Instr::Attn {
                        items: items.clone(),
                        flops,
                    });
                }
            }
        }

        // Backward: fold the circulated dKV into the local gradients.
        if backward {
            let bytes: u64 = owned[dev as usize]
                .iter()
                .map(|&t| layout.token_blocks[t.0 as usize].kv_bytes * 2)
                .sum();
            if bytes > 0 {
                instrs.push(Instr::Reduce {
                    items: vec![],
                    bytes,
                });
            }
        }

        // Fix up launch ordering: waits reference ops launched by this
        // device one step earlier; step 1's op must be launched during step
        // 0. The loop above already interleaves launches, but step 1's
        // launch happens at s = 0 — verify the first wait has a prior
        // launch, else insert one at the stream head.
        let mut launched = std::collections::HashSet::new();
        let mut fixed: Vec<Instr> = Vec::new();
        for ins in instrs {
            if let Instr::CommWait(cid) = ins {
                if !launched.contains(&cid) {
                    launched.insert(cid);
                    fixed.push(Instr::CommLaunch(cid));
                }
            }
            if let Instr::CommLaunch(cid) = ins {
                launched.insert(cid);
            }
            fixed.push(ins);
        }

        let owned_u32: Vec<u32> = owned[dev as usize].iter().map(|t| t.0).collect();
        let buffer = dcp_sched::buffer::compute_stats(layout, &comms, dev, &fixed, &owned_u32);
        devices.push(DeviceStream {
            device: dev,
            instrs: fixed,
            buffer,
        });
    }

    PhasePlan { comms, devices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Baseline;
    use dcp_sched::PayloadKind;

    fn micro() -> AttnSpec {
        AttnSpec::paper_micro()
    }

    #[test]
    fn ring_comm_volume_matches_closed_form() {
        // One sequence of 8192 tokens, 4 devices, plain ring: every device
        // receives (rp - 1) chunks of kv bytes.
        let out = Baseline::RfaRing
            .build(micro(), 4, 512, &[(8192, MaskSpec::Causal)])
            .unwrap();
        let kv_total: u64 = out.layout.token_blocks.iter().map(|t| t.kv_bytes).sum();
        // Each of the 4 chunks is relayed to 3 other devices.
        let expect = kv_total * 3;
        assert_eq!(out.plan.fwd.total_comm_bytes(), expect);
        // Backward doubles it (kv + dkv).
        assert_eq!(out.plan.bwd.total_comm_bytes(), expect * 2);
    }

    #[test]
    fn ring_comm_is_mask_independent() {
        let causal = Baseline::RfaZigzag
            .build(micro(), 4, 512, &[(16384, MaskSpec::Causal)])
            .unwrap();
        let lambda = Baseline::RfaZigzag
            .build(micro(), 4, 512, &[(16384, MaskSpec::paper_lambda())])
            .unwrap();
        assert_eq!(
            causal.plan.fwd.total_comm_bytes(),
            lambda.plan.fwd.total_comm_bytes(),
            "ring relays regardless of the mask"
        );
        // But computation does drop.
        let fc: Vec<u64> = causal.plan.fwd.comp_loads();
        let fl: Vec<u64> = lambda.plan.fwd.comp_loads();
        assert!(fl.iter().sum::<u64>() < fc.iter().sum::<u64>());
    }

    #[test]
    fn zigzag_balances_causal_compute() {
        let ring = Baseline::RfaRing
            .build(micro(), 4, 512, &[(32768, MaskSpec::Causal)])
            .unwrap();
        let zz = Baseline::RfaZigzag
            .build(micro(), 4, 512, &[(32768, MaskSpec::Causal)])
            .unwrap();
        let imbalance = |loads: &[u64]| {
            let max = *loads.iter().max().unwrap() as f64;
            let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
            max / mean
        };
        let ring_im = imbalance(&ring.plan.fwd.comp_loads());
        let zz_im = imbalance(&zz.plan.fwd.comp_loads());
        assert!(
            zz_im < ring_im,
            "zigzag {zz_im:.3} should be more balanced than ring {ring_im:.3}"
        );
        assert!(zz_im < 1.1, "zigzag nearly balanced: {zz_im:.3}");
    }

    #[test]
    fn loongtrain_pads_and_computes_padding() {
        let seqs = [(8192, MaskSpec::Causal), (1024, MaskSpec::Causal)];
        let lt = Baseline::LoongTrain {
            head_groups: 2,
            inner_ring: 2,
        }
        .build(micro(), 8, 512, &seqs)
        .unwrap();
        let te = Baseline::TransformerEngine { head_groups: 2 }
            .build(micro(), 8, 512, &seqs)
            .unwrap();
        // LT pads the short sequence to 8192: more tokens, more flops.
        assert_eq!(lt.layout.total_tokens(), 2 * 8192);
        assert_eq!(te.layout.total_tokens(), 8192 + 1024);
        assert!(lt.layout.total_flops() > te.layout.total_flops());
    }

    #[test]
    fn loongtrain_rejects_sparse_masks() {
        let r = Baseline::LoongTrain {
            head_groups: 2,
            inner_ring: 1,
        }
        .build(micro(), 8, 512, &[(4096, MaskSpec::paper_lambda())]);
        assert!(r.is_err());
    }

    #[test]
    fn head_parallel_reduces_kv_relay_volume() {
        // TE (hp=2, rp=2) vs RFA-zigzag (hp=1, rp=4) on the same 4 devices:
        // head parallelism halves the ring length and each ring carries
        // half the KV heads.
        let seqs = [(16384, MaskSpec::Causal)];
        let rfa = Baseline::RfaZigzag.build(micro(), 4, 512, &seqs).unwrap();
        let te = Baseline::TransformerEngine { head_groups: 2 }
            .build(micro(), 4, 512, &seqs)
            .unwrap();
        assert!(
            te.plan.fwd.total_comm_bytes() < rfa.plan.fwd.total_comm_bytes(),
            "te {} < rfa {}",
            te.plan.fwd.total_comm_bytes(),
            rfa.plan.fwd.total_comm_bytes()
        );
    }

    #[test]
    fn double_ring_changes_senders_not_volume() {
        let seqs = [(32768, MaskSpec::Causal)];
        let w1 = Baseline::LoongTrain {
            head_groups: 2,
            inner_ring: 1,
        }
        .build(micro(), 16, 512, &seqs)
        .unwrap();
        let w4 = Baseline::LoongTrain {
            head_groups: 2,
            inner_ring: 4,
        }
        .build(micro(), 16, 512, &seqs)
        .unwrap();
        assert_eq!(
            w1.plan.fwd.total_comm_bytes(),
            w4.plan.fwd.total_comm_bytes()
        );
        // Sender sets differ.
        let senders = |o: &BaselineOutput| -> Vec<(u32, u32)> {
            o.plan
                .fwd
                .comms
                .iter()
                .flat_map(|c| c.transfers.iter().map(|t| (t.from, t.to)))
                .collect()
        };
        assert_ne!(senders(&w1), senders(&w4));
    }

    #[test]
    fn every_comp_block_scheduled_exactly_once() {
        for b in [
            Baseline::RfaRing,
            Baseline::RfaZigzag,
            Baseline::TransformerEngine { head_groups: 2 },
        ] {
            let out = b
                .build(
                    micro(),
                    8,
                    512,
                    &[(4096, MaskSpec::Causal), (9000, MaskSpec::Causal)],
                )
                .unwrap();
            let mut seen = vec![0u32; out.layout.comp_blocks.len()];
            for stream in &out.plan.fwd.devices {
                for ins in &stream.instrs {
                    if let Instr::Attn { items, .. } = ins {
                        for c in items {
                            seen[c.0 as usize] += 1;
                            assert_eq!(
                                out.placement.comp_dev(*c),
                                stream.device,
                                "comp on wrong device"
                            );
                        }
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s == 1),
                "{}: every comp block exactly once",
                b.name()
            );
        }
    }

    #[test]
    fn waits_are_launched_or_first_fixed() {
        let out = Baseline::RfaZigzag
            .build(micro(), 4, 512, &[(8192, MaskSpec::Causal)])
            .unwrap();
        for phase in [&out.plan.fwd, &out.plan.bwd] {
            for stream in &phase.devices {
                let mut launched = std::collections::HashSet::new();
                for ins in &stream.instrs {
                    match ins {
                        Instr::CommLaunch(c) => {
                            launched.insert(*c);
                        }
                        Instr::CommWait(c) => {
                            assert!(launched.contains(c), "wait before launch");
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn payloads_are_kv_only() {
        let out = Baseline::RfaRing
            .build(micro(), 4, 512, &[(4096, MaskSpec::Causal)])
            .unwrap();
        for op in out.plan.fwd.comms.iter().chain(out.plan.bwd.comms.iter()) {
            for t in &op.transfers {
                assert_eq!(t.payload.kind(), PayloadKind::Kv);
            }
        }
    }

    #[test]
    fn static_placement_is_valid_and_covers_devices() {
        let layout = BatchLayout::build(
            micro(),
            BlockConfig {
                block_size: 512,
                head_blocks: 1,
            },
            &[(16384, MaskSpec::Causal), (4096, MaskSpec::Causal)],
        )
        .unwrap();
        for zigzag in [false, true] {
            let p = static_placement(&layout, 4, zigzag).unwrap();
            p.validate(&layout).unwrap();
            // Every computation block runs where its Q lives (no Q motion).
            for (i, cb) in layout.comp_blocks.iter().enumerate() {
                assert_eq!(
                    p.comp_to_dev[i], p.token_to_dev[cb.q_block.0 as usize],
                    "comp block {i} strays from its Q owner"
                );
            }
            // The long sequence touches every device.
            let used: std::collections::HashSet<u32> = p.token_to_dev.iter().copied().collect();
            assert_eq!(used.len(), 4, "zigzag={zigzag}: {used:?}");
        }
        assert!(static_placement(&layout, 0, true).is_err());
        // It schedules: the DCP scheduler accepts the placement directly.
        let p = static_placement(&layout, 4, true).unwrap();
        let plan =
            dcp_sched::build_plan(&layout, &p, &dcp_sched::ScheduleConfig::default()).unwrap();
        assert_eq!(plan.num_devices, 4);
    }

    #[test]
    fn short_sequences_still_fully_communicated() {
        // The motivating observation (Sec. 2.3): a sequence much shorter
        // than the ring still pays ring communication.
        let out = Baseline::RfaZigzag
            .build(micro(), 8, 128, &[(1024, MaskSpec::Causal)])
            .unwrap();
        assert!(out.plan.fwd.total_comm_bytes() > 0);
        // Its KV travels to 7 other devices even though one device could
        // have held it whole.
        let kv_total: u64 = out.layout.token_blocks.iter().map(|t| t.kv_bytes).sum();
        assert_eq!(out.plan.fwd.total_comm_bytes(), kv_total * 7);
    }
}
