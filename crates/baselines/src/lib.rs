//! Static context-parallel baselines, expressed in the DCP plan IR.
//!
//! The paper compares DCP against three systems (Sec. 7.1):
//!
//! - **RingFlashAttention (RFA)** — sequence-dimension-only parallelism with
//!   `Ring` or `ZigZag` input placement. KV *relays* around the ring: every
//!   device forwards every chunk at every step, so communication volume is
//!   independent of masks and of sequence length skew — exactly the
//!   redundancy DCP removes.
//! - **LoongTrain (LT)** — head × sequence parallelism with a *double ring*
//!   (inner rings stay intra-node to improve NIC utilization) and **no
//!   variable-length support**: every sequence is padded to the longest in
//!   the batch, and the padding is computed.
//! - **TransformerEngine (TE)** — head × zigzag-sequence parallelism,
//!   extended (as the paper does) with variable-length support and masked
//!   local attention steps. Masked-out steps skip computation but the
//!   KV relay still runs in full.
//!
//! All builders emit ordinary [`dcp_sched::ExecutionPlan`]s: ring steps
//! become divisions whose `CommLaunch` overlaps the previous step's
//! compute, so the simulator and (for the forward pass) the numerical
//! executor run baselines and DCP through identical machinery.
//!
//! Modelling notes, for honesty about fidelity:
//!
//! - Ring relays are carried by `Kv` payload transfers whose `from` is the
//!   relaying neighbor (not the block's owner); plan-level ownership
//!   validation does not apply to baseline plans.
//! - Ring backward carries KV and the circulating dKV together, modelled as
//!   `Kv` transfers of twice the bytes (as ring-flash-attention sends
//!   k/v/dk/dv each step), plus a final local reduction.
//! - The head-parallel tensor reorder of TE/LT (all-to-all between the head
//!   and sequence layouts) is modelled as an on-device `Copy` of the local
//!   blocks at the start of each phase.

pub mod ring;

pub use ring::{
    build_ring_baseline, build_ring_baseline_with_layout, build_ring_layout, static_placement,
    BaselineOutput, RingConfig,
};

use dcp_mask::MaskSpec;
use dcp_types::{AttnSpec, DcpResult};

/// Which baseline to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// RingFlashAttention with contiguous `Ring` placement.
    RfaRing,
    /// RingFlashAttention with `ZigZag` placement.
    RfaZigzag,
    /// LoongTrain with the given head-parallel degree and inner-ring size.
    LoongTrain {
        /// Head-parallel degree (the paper uses the number of KV groups).
        head_groups: u32,
        /// Double-ring inner size (the paper searches {1, 2, 4, 8}).
        inner_ring: u32,
    },
    /// TransformerEngine-style head x zigzag with varlen and mask support.
    TransformerEngine {
        /// Head-parallel degree.
        head_groups: u32,
    },
}

impl Baseline {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            Baseline::RfaRing => "rfa-ring".into(),
            Baseline::RfaZigzag => "rfa-zigzag".into(),
            Baseline::LoongTrain { inner_ring, .. } => format!("loongtrain-w{inner_ring}"),
            Baseline::TransformerEngine { .. } => "te".into(),
        }
    }

    /// Builds the baseline's plan for `seqs` on `devices` devices.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported combinations (LoongTrain with
    /// non-causal masks) or degenerate configurations.
    pub fn build(
        &self,
        attn: AttnSpec,
        devices: u32,
        block_size: u32,
        seqs: &[(u32, MaskSpec)],
    ) -> DcpResult<BaselineOutput> {
        let cfg = match *self {
            Baseline::RfaRing => RingConfig {
                devices,
                head_groups: 1,
                zigzag: false,
                inner_ring: 1,
                pad_to_max: false,
                block_size,
                reorder_copy: false,
            },
            Baseline::RfaZigzag => RingConfig {
                devices,
                head_groups: 1,
                zigzag: true,
                inner_ring: 1,
                pad_to_max: false,
                block_size,
                reorder_copy: false,
            },
            Baseline::LoongTrain {
                head_groups,
                inner_ring,
            } => {
                if seqs.iter().any(|(_, m)| !matches!(m, MaskSpec::Causal)) {
                    return Err(dcp_types::DcpError::invalid_argument(
                        "LoongTrain supports only the causal mask",
                    ));
                }
                RingConfig {
                    devices,
                    head_groups,
                    zigzag: true,
                    inner_ring,
                    pad_to_max: true,
                    block_size,
                    reorder_copy: true,
                }
            }
            Baseline::TransformerEngine { head_groups } => RingConfig {
                devices,
                head_groups,
                zigzag: true,
                inner_ring: 1,
                pad_to_max: false,
                block_size,
                reorder_copy: true,
            },
        };
        build_ring_baseline(&self.name(), attn, &cfg, seqs)
    }
}
